"""Setuptools shim.

All metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e . --no-use-pep517`` works on environments without the
``wheel`` package (legacy editable installs go through
``setup.py develop``, which does not build a wheel).
"""

from setuptools import setup

setup()
