#!/usr/bin/env python
"""Gate: the semi-naive strategy must beat naive by >= MIN_SPEEDUP at
the largest fixpoint-depth benchmark size.

Usage: python scripts/check_seminaive_speedup.py BENCH_pr2.json

Reads a pytest-benchmark JSON payload, pairs naive/seminaive runs of
the ``fixpoint-depth`` experiment by depth, and fails (exit 1) unless
the ratio naive/seminaive at the largest depth clears the bar.  The bar
is deliberately far below the measured ~20-70x so that only a real
regression of the incremental engine trips it.
"""

from __future__ import annotations

import json
import os
import sys

MIN_SPEEDUP = float(os.environ.get("SEMINAIVE_MIN_SPEEDUP", "2.0"))


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(__doc__)
        return 2
    with open(argv[1]) as handle:
        payload = json.load(handle)

    by_depth: dict[int, dict[str, float]] = {}
    for bench in payload["benchmarks"]:
        info = bench.get("extra_info", {})
        if info.get("experiment") != "fixpoint-depth":
            continue
        depth = int(info["depth"])
        strategy = info["strategy"]
        by_depth.setdefault(depth, {})[strategy] = bench["stats"]["mean"]

    if not by_depth:
        print("no fixpoint-depth benchmarks found in payload")
        return 1

    failures = 0
    largest = max(by_depth)
    for depth in sorted(by_depth):
        times = by_depth[depth]
        if "naive" not in times or "seminaive" not in times:
            print(f"depth={depth}: missing a strategy ({sorted(times)})")
            failures += 1
            continue
        speedup = times["naive"] / times["seminaive"]
        required = MIN_SPEEDUP if depth == largest else None
        verdict = ""
        if required is not None:
            ok = speedup >= required
            verdict = f" [gate >= {required}x: {'ok' if ok else 'FAIL'}]"
            if not ok:
                failures += 1
        print(
            f"depth={depth}: naive={times['naive'] * 1e3:.3f}ms "
            f"seminaive={times['seminaive'] * 1e3:.3f}ms "
            f"speedup={speedup:.1f}x{verdict}"
        )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
