#!/usr/bin/env python
"""Gate: a contender strategy must beat a baseline strategy by at least
MIN_SPEEDUP at the largest benchmark size of one experiment.

Usage:
    python scripts/check_seminaive_speedup.py BENCH.json
    python scripts/check_seminaive_speedup.py BENCH.json \\
        --experiment maintenance-session --baseline rebuild \\
        --contender delta --size-key size --min-speedup 5

Reads a pytest-benchmark JSON payload, pairs baseline/contender runs of
the selected experiment by the size key in ``extra_info``, and fails
(exit 1) unless the ratio baseline/contender at the largest size clears
the bar.  Defaults reproduce the original semi-naive gate: experiment
``fixpoint-depth``, strategies ``naive`` vs ``seminaive``, size key
``depth``, bar from ``SEMINAIVE_MIN_SPEEDUP`` (2.0).  The bars are
deliberately far below the measured ratios so that only a real
regression of the incremental machinery trips them.
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description="pairwise strategy speedup gate over a benchmark payload"
    )
    parser.add_argument("payload", help="pytest-benchmark JSON file")
    parser.add_argument("--experiment", default="fixpoint-depth")
    parser.add_argument("--baseline", default="naive")
    parser.add_argument("--contender", default="seminaive")
    parser.add_argument(
        "--size-key",
        default="depth",
        help="extra_info key that orders the benchmark sizes",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=float(os.environ.get("SEMINAIVE_MIN_SPEEDUP", "2.0")),
        help="required baseline/contender ratio at the largest size",
    )
    parser.add_argument(
        "--summary",
        default=None,
        metavar="PATH",
        help="append the comparison as a markdown table (e.g. to "
        "$GITHUB_STEP_SUMMARY in the bench-compare job)",
    )
    args = parser.parse_args(argv[1:])

    with open(args.payload) as handle:
        payload = json.load(handle)

    by_size: dict[int, dict[str, float]] = {}
    for bench in payload["benchmarks"]:
        info = bench.get("extra_info", {})
        if info.get("experiment") != args.experiment:
            continue
        size = int(info[args.size_key])
        strategy = info["strategy"]
        by_size.setdefault(size, {})[strategy] = bench["stats"]["mean"]

    if not by_size:
        print(f"no {args.experiment!r} benchmarks found in payload")
        return 1

    failures = 0
    largest = max(by_size)
    rows: list[tuple[str, str, str, str, str]] = []
    for size in sorted(by_size):
        times = by_size[size]
        if args.baseline not in times or args.contender not in times:
            print(
                f"{args.size_key}={size}: missing a strategy "
                f"({sorted(times)})"
            )
            failures += 1
            continue
        speedup = times[args.baseline] / times[args.contender]
        verdict = ""
        gate_cell = "—"
        if size == largest:
            ok = speedup >= args.min_speedup
            verdict = f" [gate >= {args.min_speedup}x: {'ok' if ok else 'FAIL'}]"
            gate_cell = f"≥{args.min_speedup:g}x: {'ok' if ok else '**FAIL**'}"
            if not ok:
                failures += 1
        print(
            f"{args.size_key}={size}: "
            f"{args.baseline}={times[args.baseline] * 1e3:.3f}ms "
            f"{args.contender}={times[args.contender] * 1e3:.3f}ms "
            f"speedup={speedup:.1f}x{verdict}"
        )
        rows.append(
            (
                str(size),
                f"{times[args.baseline] * 1e3:.3f}",
                f"{times[args.contender] * 1e3:.3f}",
                f"{speedup:.1f}x",
                gate_cell,
            )
        )
    if args.summary:
        write_summary(args, rows, failures)
    return 1 if failures else 0


def write_summary(
    args, rows: list[tuple[str, str, str, str, str]], failures: int
) -> None:
    """Append the comparison as a GitHub-flavoured markdown table."""
    lines = [
        f"### {args.experiment}: {args.baseline} vs {args.contender}",
        "",
        f"| {args.size_key} | {args.baseline} (ms) "
        f"| {args.contender} (ms) | speedup | gate |",
        "|---:|---:|---:|---:|:---|",
    ]
    lines += [f"| {' | '.join(row)} |" for row in rows]
    lines.append("")
    lines.append(
        "All gates passed." if not failures else f"**{failures} failure(s).**"
    )
    lines.append("")
    with open(args.summary, "a") as handle:
        handle.write("\n".join(lines) + "\n")


if __name__ == "__main__":
    sys.exit(main(sys.argv))
