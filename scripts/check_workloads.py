#!/usr/bin/env python
"""Gate: the built-in workloads must stay warning-clean under the
static analyzer.

Usage: PYTHONPATH=src python scripts/check_workloads.py

Runs ``repro.analysis.static.analyze_program`` over every curated
built-in workload (paper figures and examples, their scaled variants,
the hierarchy/expert generators and the reduction outputs) and fails
when any of them reports a warning-or-worse diagnostic.  Informational
notes (potential defeats, stratification labels) are expected and do
not fail the gate.

Deliberately excluded, with the diagnostic each one legitimately
triggers:

* ``paper.example3`` / ``paper.example4`` — abstract propositional
  sketches whose bodies mention predicates with no rules
  (undefined-predicate).
* ``paper.example9_colored`` — its choice rule binds a variable only in
  a negative literal, exactly the unsafe-rule pattern the paper uses to
  motivate the extended semantics.
"""

from __future__ import annotations

import sys

from repro.analysis.static import Severity, analyze_program
from repro.reductions import ordered_version, three_level_version
from repro.workloads import experts, hierarchies, paper, sessions


def workloads():
    yield "paper.figure1", paper.figure1()
    yield "paper.figure1_flat", paper.figure1_flat()
    yield "paper.figure2", paper.figure2()
    yield "paper.figure3(19,16)", paper.figure3(
        ("inflation(19).", "loan_rate(16).")
    )
    yield "paper.figure3(12,16)", paper.figure3(
        ("inflation(12).", "loan_rate(16).")
    )
    yield "paper.example4_extended", paper.example4_extended()
    yield "paper.example5", paper.example5()
    yield "ordered(paper.example6_ancestor)", ordered_version(
        paper.example6_ancestor()
    ).program
    yield "ordered(paper.example7)", ordered_version(paper.example7()).program
    yield "three_level(paper.example8_birds)", three_level_version(
        paper.example8_birds()
    ).program
    yield "paper.scaled_figure1(8,3)", paper.scaled_figure1(8, 3)
    yield "paper.scaled_figure2(6,2)", paper.scaled_figure2(6, 2)
    for name, program in sorted(
        paper.scaled_figure3({"boom": (12, 10), "bust": (9, 16)}).items()
    ):
        yield f"paper.scaled_figure3[{name}]", program
    yield "hierarchies.override_chain(4)", hierarchies.override_chain(4)
    yield "hierarchies.diamond(2)", hierarchies.diamond(2)
    yield "hierarchies.taxonomy(6,2)", hierarchies.taxonomy(6, 2)
    yield "hierarchies.release_chain(3)", hierarchies.release_chain(3)
    yield "experts.expert_panel(3,3)", experts.expert_panel(3, 3)
    yield "experts.contradicting_panel(3)", experts.contradicting_panel(3)
    yield "sessions.interactive_session(4,6)", sessions.interactive_session(4, 6)


def main() -> int:
    failures = 0
    total = 0
    for name, program in workloads():
        total += 1
        report = analyze_program(program)
        gating = report.gating(Severity.INFO)
        notes = len(report.diagnostics) - len(gating)
        if gating:
            failures += 1
            print(f"{name}: FAIL ({len(gating)} warning(s)+)")
            for diagnostic in gating:
                print(f"  {diagnostic}")
        else:
            print(f"{name}: ok ({notes} informational note(s))")
    if failures:
        print(f"{failures}/{total} workload(s) have warning-level diagnostics")
        return 1
    print(f"all {total} workloads warning-clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
