#!/usr/bin/env python
"""Gate: the built-in workloads must stay warning-clean under the
static analyzer.

Usage: PYTHONPATH=src python scripts/check_workloads.py [--abstract]

Runs ``repro.analysis.static.analyze_program`` over every curated
built-in workload (paper figures and examples, their scaled variants,
the hierarchy/expert generators and the reduction outputs) and fails
when any of them reports a warning-or-worse diagnostic.  Informational
notes (potential defeats, stratification labels) are expected and do
not fail the gate.

With ``--abstract`` the script additionally checks the abstract
interpreter's claims against the concrete semantics of every component
view: a predicate inferred underivable must have no literals in the
view's least model, every cardinality interval must contain the true
relation size, every inferred sort must admit the derived terms, and
grounding with domain pruning must produce a bit-identical least model.

Deliberately excluded, with the diagnostic each one legitimately
triggers:

* ``paper.example3`` / ``paper.example4`` — abstract propositional
  sketches whose bodies mention predicates with no rules
  (undefined-predicate).
* ``paper.example9_colored`` — its choice rule binds a variable only in
  a negative literal, exactly the unsafe-rule pattern the paper uses to
  motivate the extended semantics.
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter

from repro.analysis.abstract import analyze_view, signed_name
from repro.analysis.static import Severity, analyze_program
from repro.core.semantics import OrderedSemantics
from repro.grounding.grounder import GroundingOptions
from repro.lang.program import Component, OrderedProgram
from repro.reductions import ordered_version, three_level_version
from repro.workloads import classic, experts, hierarchies, paper, sessions

#: Term-depth cap shared by the abstract and the concrete side of the
#: ``--abstract`` gate, so both describe the same ground program.
MAX_DEPTH = 3


def workloads():
    yield "paper.figure1", paper.figure1()
    yield "paper.figure1_flat", paper.figure1_flat()
    yield "paper.figure2", paper.figure2()
    yield "paper.figure3(19,16)", paper.figure3(
        ("inflation(19).", "loan_rate(16).")
    )
    yield "paper.figure3(12,16)", paper.figure3(
        ("inflation(12).", "loan_rate(16).")
    )
    yield "paper.example4_extended", paper.example4_extended()
    yield "paper.example5", paper.example5()
    yield "ordered(paper.example6_ancestor)", ordered_version(
        paper.example6_ancestor()
    ).program
    yield "ordered(paper.example7)", ordered_version(paper.example7()).program
    yield "three_level(paper.example8_birds)", three_level_version(
        paper.example8_birds()
    ).program
    yield "paper.scaled_figure1(8,3)", paper.scaled_figure1(8, 3)
    yield "paper.scaled_figure2(6,2)", paper.scaled_figure2(6, 2)
    for name, program in sorted(
        paper.scaled_figure3({"boom": (12, 10), "bust": (9, 16)}).items()
    ):
        yield f"paper.scaled_figure3[{name}]", program
    yield "hierarchies.override_chain(4)", hierarchies.override_chain(4)
    yield "hierarchies.diamond(2)", hierarchies.diamond(2)
    yield "hierarchies.taxonomy(6,2)", hierarchies.taxonomy(6, 2)
    yield "hierarchies.release_chain(3)", hierarchies.release_chain(3)
    yield "experts.expert_panel(3,3)", experts.expert_panel(3, 3)
    yield "experts.contradicting_panel(3)", experts.contradicting_panel(3)
    yield "sessions.interactive_session(4,6)", sessions.interactive_session(4, 6)
    yield "classic.sparse_pairs(24,3)", OrderedProgram(
        [Component("main", classic.sparse_pairs(24, 3))], []
    )


def check_abstract(program) -> list[str]:
    """Soundness errors from comparing inferred facts with every view's
    concrete least model (empty list when the analysis is sound)."""
    errors: list[str] = []
    options = GroundingOptions(max_depth=MAX_DEPTH)
    pruned = GroundingOptions(max_depth=MAX_DEPTH, domain_pruning=True)
    for component in program.components():
        view = component.name
        analysis = analyze_view(program, view, max_depth=MAX_DEPTH)
        if analysis is None:
            errors.append(f"view {view}: universe construction failed")
            continue
        model = OrderedSemantics(program, view, grounding=options).least_model
        sizes: Counter = Counter()
        for literal in model.literals:
            sizes[(literal.predicate, len(literal.args), literal.positive)] += 1
        for key in analysis.keys:
            fact = analysis.fact_for(*key)
            true_size = sizes.get(key, 0)
            label = f"view {view}, {signed_name(key)}"
            if not fact.derivable and true_size:
                errors.append(
                    f"{label}: inferred underivable but model has "
                    f"{true_size} literal(s)"
                )
            if fact.card.lo > true_size:
                errors.append(
                    f"{label}: lower bound {fact.card.lo} > true size {true_size}"
                )
            if fact.card.hi is not None and true_size > fact.card.hi:
                errors.append(
                    f"{label}: true size {true_size} > upper bound {fact.card.hi}"
                )
        for literal in model.literals:
            if not analysis.admits(literal):
                errors.append(
                    f"view {view}: inferred sorts exclude derived {literal}"
                )
        pruned_model = OrderedSemantics(
            program, view, grounding=pruned
        ).least_model
        if pruned_model.literals != model.literals:
            errors.append(
                f"view {view}: pruned grounding changed the least model"
            )
    return errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--abstract",
        action="store_true",
        help="also verify abstract-interpretation claims against the "
        "concrete semantics of every component view",
    )
    args = parser.parse_args(argv)
    failures = 0
    total = 0
    for name, program in workloads():
        total += 1
        report = analyze_program(program)
        gating = report.gating(Severity.INFO)
        notes = len(report.diagnostics) - len(gating)
        problems = [str(d) for d in gating]
        if args.abstract:
            problems += check_abstract(program)
        if problems:
            failures += 1
            print(f"{name}: FAIL ({len(problems)} problem(s))")
            for problem in problems:
                print(f"  {problem}")
        else:
            suffix = ", abstract claims sound" if args.abstract else ""
            print(f"{name}: ok ({notes} informational note(s){suffix})")
    if failures:
        print(f"{failures}/{total} workload(s) failed")
        return 1
    label = "warning-clean and abstract-sound" if args.abstract else "warning-clean"
    print(f"all {total} workloads {label}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
