#!/usr/bin/env python
"""Gate: compare per-request read p50s between two benchmark strategies.

Usage:
    python scripts/check_server_read_latency.py BENCH.json
    python scripts/check_server_read_latency.py BENCH.json --max-ratio 3
    python scripts/check_server_read_latency.py BENCH.json \
        --experiment server-trace --baseline untraced \
        --contender traced --max-ratio 1.3

Reads one experiment from a pytest-benchmark JSON payload
(``benchmarks/bench_server.py``) and fails (exit 1) unless the p50 of
the *contender* strategy stays within ``--max-ratio`` of the *baseline*
strategy's p50.  The defaults gate snapshot isolation: reads with a
busy background writer (``busy``) must stay within 3x of reads with an
idle writer (``idle``), because readers answer from the published
snapshot and never wait on the write pipeline.  The same script gates
tracing overhead (``server-trace``: ``traced`` vs ``untraced``).

The p50s come from ``extra_info`` (measured per request inside the
benchmark) because the benchmark's own mean times the whole read loop —
which, in the busy mode, *does* include interleaved writer work.
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description="read-latency ratio gate over a benchmark payload"
    )
    parser.add_argument("payload", help="pytest-benchmark JSON file")
    parser.add_argument(
        "--experiment",
        default="server-read",
        help="extra_info experiment name to gate",
    )
    parser.add_argument(
        "--baseline",
        default="idle",
        help="strategy whose p50 is the denominator",
    )
    parser.add_argument(
        "--contender",
        default="busy",
        help="strategy whose p50 is the numerator",
    )
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=float(os.environ.get("SERVER_READ_MAX_RATIO", "3.0")),
        help="largest allowed contender-p50 / baseline-p50 ratio",
    )
    args = parser.parse_args(argv[1:])

    with open(args.payload) as handle:
        payload = json.load(handle)

    p50s: dict[str, float] = {}
    p95s: dict[str, float] = {}
    for bench in payload["benchmarks"]:
        info = bench.get("extra_info", {})
        if info.get("experiment") != args.experiment:
            continue
        p50s[info["strategy"]] = float(info["p50_s"])
        p95s[info["strategy"]] = float(info["p95_s"])

    missing = {args.baseline, args.contender} - set(p50s)
    if missing:
        print(
            f"{args.experiment} benchmarks missing strategies: "
            f"{sorted(missing)}"
        )
        return 1

    ratio = p50s[args.contender] / p50s[args.baseline]
    ok = ratio <= args.max_ratio
    for strategy in (args.baseline, args.contender):
        print(
            f"{strategy}: p50={p50s[strategy] * 1e6:.1f}us "
            f"p95={p95s[strategy] * 1e6:.1f}us"
        )
    print(
        f"{args.contender}/{args.baseline} p50 ratio: {ratio:.2f} "
        f"[gate <= {args.max_ratio}: {'ok' if ok else 'FAIL'}]"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
