#!/usr/bin/env python
"""Gate: server read latency must be unaffected by a concurrent writer.

Usage:
    python scripts/check_server_read_latency.py BENCH.json
    python scripts/check_server_read_latency.py BENCH.json --max-ratio 3

Reads the ``server-read`` experiment from a pytest-benchmark JSON
payload (``benchmarks/bench_server.py``) and fails (exit 1) unless the
p50 of individual reads with a busy background writer stays within
``--max-ratio`` of the idle p50.  Snapshot isolation is the claim under
test: readers answer from the published snapshot and never wait on the
write pipeline, so concurrent writes must not stretch the typical read.
The p50s come from ``extra_info`` (measured per request inside the
benchmark) because the benchmark's own mean times the whole read loop —
which *does* include interleaved writer work in the busy mode.
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description="read-latency isolation gate over a benchmark payload"
    )
    parser.add_argument("payload", help="pytest-benchmark JSON file")
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=float(os.environ.get("SERVER_READ_MAX_RATIO", "3.0")),
        help="largest allowed busy-p50 / idle-p50 ratio",
    )
    args = parser.parse_args(argv[1:])

    with open(args.payload) as handle:
        payload = json.load(handle)

    p50s: dict[str, float] = {}
    p95s: dict[str, float] = {}
    for bench in payload["benchmarks"]:
        info = bench.get("extra_info", {})
        if info.get("experiment") != "server-read":
            continue
        p50s[info["strategy"]] = float(info["p50_s"])
        p95s[info["strategy"]] = float(info["p95_s"])

    missing = {"idle", "busy"} - set(p50s)
    if missing:
        print(f"server-read benchmarks missing strategies: {sorted(missing)}")
        return 1

    ratio = p50s["busy"] / p50s["idle"]
    ok = ratio <= args.max_ratio
    print(
        f"idle: p50={p50s['idle'] * 1e6:.1f}us p95={p95s['idle'] * 1e6:.1f}us"
    )
    print(
        f"busy: p50={p50s['busy'] * 1e6:.1f}us p95={p95s['busy'] * 1e6:.1f}us"
    )
    print(
        f"busy/idle p50 ratio: {ratio:.2f} "
        f"[gate <= {args.max_ratio}: {'ok' if ok else 'FAIL'}]"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
