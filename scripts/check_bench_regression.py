#!/usr/bin/env python
"""Gate: no benchmark may regress more than GATE x against the baseline.

Usage:
    python scripts/check_bench_regression.py NEW.json BASELINE.json
    python scripts/check_bench_regression.py --write-baseline NEW.json OUT.json

Payloads on either side may be raw pytest-benchmark JSON *or* the
compact committed format ``bench-summary/1``:

    {"format": "bench-summary/1",
     "benchmarks": [{"name": ..., "p50": ..., "samples": ..., "units": "s"}]}

``--write-baseline`` distils a raw payload into that summary — it is
what gets committed under ``benchmarks/baselines/`` (a few lines per
benchmark instead of the full per-round timing dumps, which weighed in
at ~93k lines).  Comparison uses each benchmark's p50 (median): it is
robust to the stray slow round a shared CI box produces, where the mean
is not.

Raw wall-clock comparisons across machines are meaningless (the
committed baseline was recorded on one box, CI runs on another), so the
gate is *self-normalizing*: each benchmark's new/baseline ratio is
divided by the median ratio of the whole suite — a uniformly slower or
faster machine moves every ratio equally and cancels out, while a
single hot path that regressed stands out against its peers.  A
benchmark fails when its normalized ratio exceeds the gate (default
1.5x, override with BENCH_GATE).

Benchmarks present only in the new payload are reported but never fail
the gate (new benchmarks must be able to land).  A baseline benchmark
*missing* from the fresh payload fails the gate by name — a silently
dropped benchmark is a coverage regression, not a freebie.  Set
BENCH_ALLOW_MISSING=1 when removing a benchmark intentionally (and
refresh the committed baseline in the same change).
"""

from __future__ import annotations

import json
import os
import sys

GATE = float(os.environ.get("BENCH_GATE", "1.5"))
ALLOW_MISSING = os.environ.get("BENCH_ALLOW_MISSING", "") == "1"

SUMMARY_FORMAT = "bench-summary/1"


def load_entries(path: str) -> dict[str, dict]:
    """``name -> {p50, samples, units}`` from either payload format."""
    with open(path) as handle:
        payload = json.load(handle)
    entries: dict[str, dict] = {}
    if payload.get("format") == SUMMARY_FORMAT:
        for bench in payload.get("benchmarks", []):
            entries[bench["name"]] = {
                "p50": float(bench["p50"]),
                "samples": int(bench.get("samples", 0)),
                "units": bench.get("units", "s"),
            }
        return entries
    for bench in payload.get("benchmarks", []):
        name = bench.get("name")
        stats = bench.get("stats") or {}
        if name is None or "median" not in stats:
            print(
                f"{path}: entry {name or '<unnamed>'} has no stats.median; "
                "was the payload produced by pytest-benchmark?"
            )
            continue
        entries[name] = {
            "p50": stats["median"],
            "samples": int(stats.get("rounds", 0)),
            "units": "s",
        }
    return entries


def write_baseline(raw_path: str, out_path: str) -> int:
    entries = load_entries(raw_path)
    if not entries:
        print(f"{raw_path}: no benchmarks to summarize")
        return 1
    payload = {
        "format": SUMMARY_FORMAT,
        "benchmarks": [
            {
                "name": name,
                "p50": entry["p50"],
                "samples": entry["samples"],
                "units": entry["units"],
            }
            for name, entry in sorted(entries.items())
        ],
    }
    with open(out_path, "w") as handle:
        json.dump(payload, handle, indent=1)
        handle.write("\n")
    print(f"wrote {len(entries)} benchmark summaries to {out_path}")
    return 0


def median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def main(argv: list[str]) -> int:
    args = [a for a in argv[1:] if a != "--write-baseline"]
    if len(args) != 2:
        print(__doc__)
        return 2
    if "--write-baseline" in argv[1:]:
        return write_baseline(args[0], args[1])
    new = {name: e["p50"] for name, e in load_entries(args[0]).items()}
    baseline = {name: e["p50"] for name, e in load_entries(args[1]).items()}

    shared = sorted(set(new) & set(baseline))
    only_new = sorted(set(new) - set(baseline))
    only_old = sorted(set(baseline) - set(new))
    failures = 0
    for name in only_new:
        print(f"new benchmark (not gated): {name}")
    for name in only_old:
        if ALLOW_MISSING:
            print(f"baseline benchmark missing from fresh payload (allowed): {name}")
        else:
            failures += 1
            print(
                f"FAIL: baseline benchmark {name!r} is missing from the "
                "fresh payload — it was removed or renamed without "
                "refreshing the baseline (set BENCH_ALLOW_MISSING=1 for an "
                "intentional removal)"
            )
    if not shared:
        if failures:
            print(f"{failures} baseline benchmark(s) missing; nothing else to gate")
            return 1
        print("no shared benchmarks between payloads; nothing to gate")
        return 0

    ratios = {name: new[name] / baseline[name] for name in shared}
    scale = median(list(ratios.values()))
    print(
        f"machine-speed normalization: median new/baseline ratio = {scale:.3f}"
    )
    for name in shared:
        normalized = ratios[name] / scale
        flag = ""
        if normalized > GATE:
            failures += 1
            flag = f"  REGRESSION (> {GATE}x)"
        print(
            f"{name}: baseline={baseline[name] * 1e3:.3f}ms "
            f"new={new[name] * 1e3:.3f}ms normalized={normalized:.2f}x{flag}"
        )
    if failures:
        print(f"{failures} benchmark(s) failed the {GATE}x gate")
        return 1
    print(f"all {len(shared)} shared benchmarks within the {GATE}x gate")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
