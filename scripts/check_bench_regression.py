#!/usr/bin/env python
"""Gate: no benchmark may regress more than GATE x against the baseline.

Usage: python scripts/check_bench_regression.py NEW.json BASELINE.json

Compares two pytest-benchmark JSON payloads by benchmark name.  Raw
wall-clock comparisons across machines are meaningless (the committed
baseline was recorded on one box, CI runs on another), so the gate is
*self-normalizing*: each benchmark's new/baseline ratio is divided by
the median ratio of the whole suite — a uniformly slower or faster
machine moves every ratio equally and cancels out, while a single hot
path that regressed stands out against its peers.  A benchmark fails
when its normalized ratio exceeds the gate (default 1.5x, override
with BENCH_GATE).

Benchmarks present only in the new payload are reported but never fail
the gate (new benchmarks must be able to land).  A baseline benchmark
*missing* from the fresh payload fails the gate by name — a silently
dropped benchmark is a coverage regression, not a freebie.  Set
BENCH_ALLOW_MISSING=1 when removing a benchmark intentionally (and
refresh the committed baseline in the same change).
"""

from __future__ import annotations

import json
import os
import sys

GATE = float(os.environ.get("BENCH_GATE", "1.5"))
ALLOW_MISSING = os.environ.get("BENCH_ALLOW_MISSING", "") == "1"


def load_means(path: str) -> dict[str, float]:
    with open(path) as handle:
        payload = json.load(handle)
    means: dict[str, float] = {}
    for bench in payload.get("benchmarks", []):
        name = bench.get("name")
        stats = bench.get("stats") or {}
        if name is None or "mean" not in stats:
            print(
                f"{path}: entry {name or '<unnamed>'} has no stats.mean; "
                "was the payload produced by pytest-benchmark?"
            )
            continue
        means[name] = stats["mean"]
    return means


def median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def main(argv: list[str]) -> int:
    if len(argv) != 3:
        print(__doc__)
        return 2
    new = load_means(argv[1])
    baseline = load_means(argv[2])

    shared = sorted(set(new) & set(baseline))
    only_new = sorted(set(new) - set(baseline))
    only_old = sorted(set(baseline) - set(new))
    failures = 0
    for name in only_new:
        print(f"new benchmark (not gated): {name}")
    for name in only_old:
        if ALLOW_MISSING:
            print(f"baseline benchmark missing from fresh payload (allowed): {name}")
        else:
            failures += 1
            print(
                f"FAIL: baseline benchmark {name!r} is missing from the "
                "fresh payload — it was removed or renamed without "
                "refreshing the baseline (set BENCH_ALLOW_MISSING=1 for an "
                "intentional removal)"
            )
    if not shared:
        if failures:
            print(f"{failures} baseline benchmark(s) missing; nothing else to gate")
            return 1
        print("no shared benchmarks between payloads; nothing to gate")
        return 0

    ratios = {name: new[name] / baseline[name] for name in shared}
    scale = median(list(ratios.values()))
    print(
        f"machine-speed normalization: median new/baseline ratio = {scale:.3f}"
    )
    for name in shared:
        normalized = ratios[name] / scale
        flag = ""
        if normalized > GATE:
            failures += 1
            flag = f"  REGRESSION (> {GATE}x)"
        print(
            f"{name}: baseline={baseline[name] * 1e3:.3f}ms "
            f"new={new[name] * 1e3:.3f}ms normalized={normalized:.2f}x{flag}"
        )
    if failures:
        print(f"{failures} benchmark(s) failed the {GATE}x gate")
        return 1
    print(f"all {len(shared)} shared benchmarks within the {GATE}x gate")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
