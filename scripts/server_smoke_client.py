#!/usr/bin/env python
"""End-to-end smoke of ``olp serve``: spawn the server, drive a
scripted NDJSON session over TCP, request shutdown, verify the drain.

Usage (from the repo root; the CI smoke job runs exactly this):

    PYTHONPATH=src python scripts/server_smoke_client.py

Spawns ``python -m repro.cli serve --port 0 --metrics-port 0
--slow-ms 0`` as a subprocess, parses the listening and metrics
banners for the bound ports, then checks every serving path a
deployment depends on: health, define, query, coalesced concurrent
tells, a traced write that decomposes into queue-wait / coalesce /
apply / publish, snapshot versioning, a semantics rejection, stats,
the Prometheus ``/metrics`` + ``/healthz`` sidecar, the ``olp top``
and ``olp slow`` clients against the live server, and a clean
``shutdown`` drain (subprocess must exit 0 and print its "drained and
stopped" line).  Exits non-zero on the first surprise.

A second phase smokes the replication topology from
``docs/replication.md``: a leader with ``--wal`` journals writes and
is drained, a restarted leader recovers the journaled version from
disk, a ``--follow`` follower catches up over ``subscribe`` from that
cold journal and then tracks a live write, its ``/metrics`` sidecar
exposes ``repro_replica_lag_versions``, and both processes drain
cleanly.

A third phase smokes goal-directed answering (``docs/query.md``): a
server booted with ``--edb`` over a disk-backed forest answers a
traced ``strategy="demand"`` point query whose span tree shows demand
grounding (``query.demand``) and *no* materialization
(``semantics.least_model`` / ``ground``), and a ``tell`` through the
delta pipeline is visible to the next demand read.
"""

from __future__ import annotations

import json
import os
import re
import socket
import subprocess
import sys
import time
import urllib.request

HOST = "127.0.0.1"
BANNER = re.compile(r"olp serve: listening on ([\d.]+):(\d+)")
METRICS_BANNER = re.compile(r"olp serve: metrics on ([\d.]+):(\d+)")
RECOVERED_BANNER = re.compile(r"olp serve: recovered version (\d+) from")


def fail(message: str):
    print(f"smoke: FAIL — {message}", file=sys.stderr)
    sys.exit(1)


class Session:
    def __init__(self, port: int) -> None:
        self.sock = socket.create_connection((HOST, port), timeout=10)
        self.file = self.sock.makefile("rwb")

    def call(self, **payload) -> dict:
        self.file.write(json.dumps(payload).encode() + b"\n")
        self.file.flush()
        line = self.file.readline()
        if not line:
            fail(f"connection closed answering {payload!r}")
        return json.loads(line)

    def expect_ok(self, **payload) -> dict:
        reply = self.call(**payload)
        if not reply.get("ok"):
            fail(f"{payload!r} -> {reply!r}")
        return reply

    def close(self) -> None:
        self.file.close()
        self.sock.close()


def main() -> int:
    env = dict(os.environ)
    env.setdefault("PYTHONPATH", "src")
    server = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve", "--port", "0",
            "--metrics-port", "0", "--slow-ms", "0",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    try:
        assert server.stdout is not None
        port = None
        metrics_port = None
        deadline = time.monotonic() + 15
        while (port is None or metrics_port is None) and time.monotonic() < deadline:
            line = server.stdout.readline()
            if not line:
                fail("server exited before printing its banners")
            if match := BANNER.search(line):
                port = int(match.group(2))
            elif match := METRICS_BANNER.search(line):
                metrics_port = int(match.group(2))
        if port is None or metrics_port is None:
            fail("missing listening or metrics banner")
        print(f"smoke: server up on port {port}, metrics on {metrics_port}")

        session = Session(port)
        health = session.expect_ok(id=1, op="health")
        if health["result"]["status"] != "ok":
            fail(f"unhealthy at startup: {health!r}")

        session.expect_ok(
            id=2, op="define", view="bird",
            rules="fly(X) :- bird_of(X).\nbird_of(tweety).",
        )
        session.expect_ok(
            id=3, op="define", view="penguin",
            rules="-fly(X) :- penguin_of(X).\nbird_of(X) :- penguin_of(X).",
            isa=["bird"],
        )
        reply = session.expect_ok(
            id=4, op="query", view="bird", pattern="fly(X)"
        )
        if [a["literal"] for a in reply["result"]["answers"]] != ["fly(tweety)"]:
            fail(f"unexpected answers: {reply!r}")

        # A second connection writes concurrently with the first.
        other = Session(port)
        for i in range(10):
            session.expect_ok(
                id=f"a{i}", op="tell", view="penguin",
                rules=f"penguin_of(p{i}).",
            )
            other.expect_ok(
                id=f"b{i}", op="tell", view="bird", rules=f"bird_of(b{i})."
            )
        count = session.expect_ok(
            id=5, op="query", view="penguin", pattern="-fly(X)"
        )
        if count["result"]["count"] != 10:
            fail(f"expected 10 grounded penguins: {count!r}")

        # A traced write decomposes into the pipeline phases.
        traced = session.expect_ok(
            id="t1", op="tell", view="bird", rules="bird_of(watched).",
            trace=True,
        )
        trace = traced["result"].get("trace")
        if trace is None:
            fail(f"traced tell returned no trace: {traced!r}")
        phases = [s["name"] for s in trace["spans"].get("children", [])]
        if phases != ["queue.wait", "coalesce", "apply", "publish"]:
            fail(f"unexpected write decomposition: {phases!r}")
        print(
            "smoke: traced write id={id} phases={phases}".format(
                id=trace["trace_id"], phases=",".join(phases)
            )
        )

        rejected = session.call(
            id=6, op="retract", view="penguin", rules="penguin_of(ghost)."
        )
        if rejected.get("ok") or rejected["error"]["code"] != "semantics":
            fail(f"bogus retract not rejected: {rejected!r}")

        stats = session.expect_ok(id=7, op="stats")["result"]
        if stats["version"] < 3 or stats["writes"]["ops"] != 23:
            fail(f"surprising stats: {stats!r}")
        print(
            "smoke: version={version} batches={batches} mean_batch={mean:.2f}".format(
                version=stats["version"],
                batches=stats["writes"]["batches"],
                mean=stats["writes"]["mean_batch"],
            )
        )
        if stats["slow"]["total"] < 1:
            fail(f"slow log (threshold 0ms) recorded nothing: {stats['slow']!r}")

        # The Prometheus sidecar answers plain HTTP GETs.
        with urllib.request.urlopen(
            f"http://{HOST}:{metrics_port}/metrics", timeout=10
        ) as response:
            exposition = response.read().decode()
            if response.status != 200:
                fail(f"/metrics returned {response.status}")
            if not response.headers["Content-Type"].startswith("text/plain"):
                fail(f"bad /metrics content type: {response.headers['Content-Type']}")
        for needle in (
            'repro_server_requests_total{op="tell"}',
            "repro_server_read_latency_seconds_bucket",
            "repro_server_queue_wait_ms_count",
            "repro_server_snapshot_age_seconds",
        ):
            if needle not in exposition:
                fail(f"/metrics missing {needle!r}")
        with urllib.request.urlopen(
            f"http://{HOST}:{metrics_port}/healthz", timeout=10
        ) as response:
            if response.read().decode() != "ok\n":
                fail("/healthz did not answer ok")
        print(f"smoke: /metrics serves {len(exposition.splitlines())} lines, /healthz ok")

        # The live-view CLI clients run against the same server.
        top = subprocess.run(
            [
                sys.executable, "-m", "repro.cli", "top",
                f"{HOST}:{port}", "-n", "1", "--no-clear",
            ],
            capture_output=True, text=True, timeout=30, env=env,
        )
        if top.returncode != 0 or "read  p50" not in top.stdout:
            fail(f"olp top failed: {top.returncode} {top.stdout!r} {top.stderr!r}")
        slow = subprocess.run(
            [sys.executable, "-m", "repro.cli", "slow", f"{HOST}:{port}"],
            capture_output=True, text=True, timeout=30, env=env,
        )
        if slow.returncode != 0 or "slow-query log" not in slow.stdout:
            fail(f"olp slow failed: {slow.returncode} {slow.stdout!r} {slow.stderr!r}")
        if "cost:" not in slow.stdout:
            fail(f"olp slow entries carry no cost digest: {slow.stdout!r}")
        print("smoke: olp top + olp slow ok against live server")

        other.close()
        bye = session.expect_ok(id=8, op="shutdown")
        if bye["result"]["draining"] is not True:
            fail(f"shutdown not acknowledged: {bye!r}")
        session.close()

        try:
            code = server.wait(timeout=30)
        except subprocess.TimeoutExpired:
            fail("server did not exit after shutdown")
        tail = server.stdout.read()
        if code != 0:
            fail(f"server exited {code}: {tail!r}")
        if "drained and stopped" not in tail:
            fail(f"no drain banner in {tail!r}")
        print(f"smoke: clean exit — {tail.strip().splitlines()[-1]}")
        return 0
    finally:
        if server.poll() is None:
            server.kill()
            server.wait()


def spawn_serve(env: dict, *extra: str) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0", *extra],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )


def read_banners(server: subprocess.Popen, *patterns: re.Pattern) -> list:
    """Read stdout lines until every pattern has matched once; returns
    the match objects in pattern order."""
    found: dict[re.Pattern, re.Match] = {}
    deadline = time.monotonic() + 20
    assert server.stdout is not None
    while len(found) < len(patterns) and time.monotonic() < deadline:
        line = server.stdout.readline()
        if not line:
            fail("server exited before printing its banners")
        for pattern in patterns:
            if pattern not in found and (match := pattern.search(line)):
                found[pattern] = match
    missing = [p.pattern for p in patterns if p not in found]
    if missing:
        fail(f"missing banners: {missing}")
    return [found[p] for p in patterns]


def drain(server: subprocess.Popen, session: Session, banner: str) -> None:
    """Request shutdown, then verify exit 0 and the drain banner."""
    bye = session.expect_ok(id="drain", op="shutdown")
    if bye["result"]["draining"] is not True:
        fail(f"shutdown not acknowledged: {bye!r}")
    session.close()
    try:
        code = server.wait(timeout=30)
    except subprocess.TimeoutExpired:
        fail("server did not exit after shutdown")
    assert server.stdout is not None
    tail = server.stdout.read()
    if code != 0:
        fail(f"server exited {code}: {tail!r}")
    if banner not in tail:
        fail(f"no {banner!r} banner in {tail!r}")


def replication_smoke() -> None:
    """Leader with a WAL -> drain -> recover -> follower catch-up from
    the cold journal -> live tracking -> lag metric -> clean drains."""
    import shutil
    import tempfile

    env = dict(os.environ)
    env.setdefault("PYTHONPATH", "src")
    wal_dir = tempfile.mkdtemp(prefix="olp-smoke-wal-")
    leader = follower = None
    try:
        # First incarnation: journal a few versions, then drain.
        leader = spawn_serve(env, "--wal", wal_dir)
        recovered, banner = read_banners(leader, RECOVERED_BANNER, BANNER)
        if recovered.group(1) != "0":
            fail(f"fresh WAL dir recovered version {recovered.group(1)}")
        session = Session(int(banner.group(2)))
        session.expect_ok(
            id=1, op="define", view="bird",
            rules="fly(X) :- bird_of(X).\nbird_of(tweety).",
        )
        session.expect_ok(
            id=2, op="define", view="penguin",
            rules="-fly(X) :- penguin_of(X).\nbird_of(X) :- penguin_of(X).",
            isa=["bird"],
        )
        for i in range(5):
            session.expect_ok(
                id=f"w{i}", op="tell", view="penguin",
                rules=f"penguin_of(p{i}).",
            )
        journaled = session.expect_ok(id=3, op="stats")["result"]["version"]
        drain(leader, session, "drained and stopped")
        print(f"smoke: leader journaled version {journaled} and drained")

        # Second incarnation recovers the journal; a follower catches
        # up from it over subscribe (nothing is in leader memory yet).
        leader = spawn_serve(env, "--wal", wal_dir)
        recovered, banner = read_banners(leader, RECOVERED_BANNER, BANNER)
        if int(recovered.group(1)) != journaled:
            fail(f"recovered {recovered.group(1)}, journaled {journaled}")
        leader_port = int(banner.group(2))
        follower = spawn_serve(
            env, "--metrics-port", "0",
            "--follow", f"{HOST}:{leader_port}",
        )
        banner, metrics = read_banners(follower, BANNER, METRICS_BANNER)
        follower_session = Session(int(banner.group(2)))
        deadline = time.monotonic() + 20
        while time.monotonic() < deadline:
            stats = follower_session.expect_ok(id="s", op="stats")["result"]
            if stats["version"] >= journaled:
                break
            time.sleep(0.05)
        else:
            fail(f"follower stuck at {stats['version']}, want {journaled}")
        print(f"smoke: follower caught up to version {stats['version']} from cold journal")

        # A live write flows through; the follower rejects writes.
        leader_session = Session(leader_port)
        leader_session.expect_ok(
            id=4, op="tell", view="penguin", rules="penguin_of(live)."
        )
        deadline = time.monotonic() + 20
        while time.monotonic() < deadline:
            reply = follower_session.expect_ok(
                id="q", op="ask", view="penguin", pattern="-fly(live)"
            )
            if reply["result"]["holds"]:
                break
            time.sleep(0.05)
        else:
            fail("live write never reached the follower")
        rejected = follower_session.call(
            id="x", op="tell", view="penguin", rules="penguin_of(nope)."
        )
        if rejected.get("ok") or rejected["error"]["code"] != "not_leader":
            fail(f"follower accepted a write: {rejected!r}")

        with urllib.request.urlopen(
            f"http://{HOST}:{int(metrics.group(2))}/metrics", timeout=10
        ) as response:
            exposition = response.read().decode()
        for needle in (
            "repro_replica_lag_versions",
            "repro_replica_entries_total",
        ):
            if needle not in exposition:
                fail(f"follower /metrics missing {needle!r}")
        print("smoke: follower /metrics exposes replication lag")

        drain(follower, follower_session, "follower drained and stopped")
        follower = None
        drain(leader, leader_session, "drained and stopped")
        leader = None
        print("smoke: replication topology drained cleanly")
    finally:
        for proc in (leader, follower):
            if proc is not None and proc.poll() is None:
                proc.kill()
                proc.wait()
        shutil.rmtree(wal_dir, ignore_errors=True)


def span_names(node: dict) -> list[str]:
    names = [node["name"]]
    for child in node.get("children", []):
        names.extend(span_names(child))
    return names


def demand_smoke() -> None:
    """``olp serve --edb`` -> traced demand point query -> spans show
    demand grounding, not materialization -> a write through the delta
    pipeline reaches the next demand read."""
    import shutil
    import tempfile

    sys.path.insert(0, os.environ.get("PYTHONPATH", "src"))
    from repro.db.edb import EdbStore
    from repro.workloads.point_query import FOREST_RULES, load_forest_edb

    env = dict(os.environ)
    env.setdefault("PYTHONPATH", "src")
    work_dir = tempfile.mkdtemp(prefix="olp-smoke-edb-")
    server = None
    try:
        edb_path = os.path.join(work_dir, "forest.edb")
        with EdbStore(edb_path, object_name="main") as store:
            load_forest_edb(store, n_trees=200, depth=4)
            facts = store.total_facts()
        rules_path = os.path.join(work_dir, "forest.olp")
        with open(rules_path, "w") as handle:
            handle.write(FOREST_RULES)

        server = spawn_serve(env, rules_path, "--edb", edb_path)
        (banner,) = read_banners(server, BANNER)
        session = Session(int(banner.group(2)))

        reply = session.expect_ok(
            id=1, op="query", view="main", pattern="ancestor(n17_0, X)",
            strategy="demand", trace=True,
        )
        answers = [a["literal"] for a in reply["result"]["answers"]]
        if len(answers) != 14:  # the 14 proper descendants of root 17
            fail(f"expected the full subtree, got {answers!r}")
        trace = reply["result"].get("trace")
        if trace is None:
            fail(f"traced demand query returned no trace: {reply!r}")
        spans = span_names(trace["spans"])
        if "query.demand" not in spans:
            fail(f"no demand-grounding span in {spans!r}")
        materializers = {"semantics.least_model", "ground"} & set(spans)
        if materializers:
            fail(f"demand read materialized the model: {spans!r}")
        print(
            f"smoke: demand point query over {facts}-fact EDB "
            f"answered {len(answers)} tuples, spans={','.join(spans)}"
        )

        # Writes keep flowing through the delta pipeline and are
        # unioned with the store on the next demand read.
        session.expect_ok(
            id=2, op="tell", view="main", rules="parent(n17_14, extra)."
        )
        grown = session.expect_ok(
            id=3, op="query", view="main", pattern="ancestor(n17_0, X)",
            strategy="demand",
        )
        if grown["result"]["count"] != 15:
            fail(f"told fact invisible to demand read: {grown!r}")
        held = session.expect_ok(
            id=4, op="ask", view="main", pattern="owns(p17, extra)",
            strategy="demand",
        )
        if not held["result"]["holds"]:
            fail(f"ownership of the told node not derived: {held!r}")
        print("smoke: delta-pipeline write visible to demand reads")

        drain(server, session, "drained and stopped")
        server = None
    finally:
        if server is not None and server.poll() is None:
            server.kill()
            server.wait()
        shutil.rmtree(work_dir, ignore_errors=True)


if __name__ == "__main__":
    start = time.monotonic()
    code = main()
    replication_smoke()
    demand_smoke()
    print(f"smoke: ok in {time.monotonic() - start:.2f}s")
    sys.exit(code)
