#!/usr/bin/env python3
"""Negative programs as general rules + exceptions — Example 9.

Section 4 of the paper gives negative programs (rules with negated
heads) a semantics through the 3-level version ``3V(C)``: the negative
rules become *exceptions* to the general rules.  The colour-choice
program selects colours under the constraint that ugly colours are
never selected; its stable models enumerate the admissible choices.

Run:  python examples/color_choice.py
"""

from repro import parse_rules
from repro.reductions import three_level_version


def choice_program(colors, ugly):
    lines = [f"color({c})." for c in colors]
    lines += [f"ugly_color({u})." for u in ugly]
    lines.append("colored(X) :- color(X), -colored(Y), X != Y.")
    lines.append("-colored(X) :- ugly_color(X).")
    return parse_rules("\n".join(lines))


def show(colors, ugly):
    rules = choice_program(colors, ugly)
    sem = three_level_version(rules).semantics()
    models = sem.stable_models()
    print(f"\ncolors={list(colors)}, ugly={list(ugly)}")
    print(f"  {len(models)} stable model(s):")
    for m in models:
        chosen = sorted(
            str(l.atom.args[0]) for l in m if l.positive and l.predicate == "colored"
        )
        rejected = sorted(
            str(l.atom.args[0]) for l in m if not l.positive and l.predicate == "colored"
        )
        print(f"    colored: {chosen}   not colored: {rejected}")
    return models


def main() -> None:
    print("Colour choice (Example 9 of the paper)")
    print("=" * 60)

    # Two colours: each stable model selects exactly one — the paper's
    # "select exactly one of the available colours" reading.
    models = show(("red", "blue"), ())
    assert len(models) == 2

    # Three colours: the formal semantics leaves exactly one colour
    # unselected per model (each unselected colour is the witness that
    # forces the others) — see EXPERIMENTS.md for the divergence from
    # the paper's informal gloss.
    models = show(("red", "green", "blue"), ())
    assert len(models) == 3

    # An ugly colour is never selected, and acts as a permanent witness:
    # all the remaining colours are selected in the unique stable model.
    models = show(("red", "green", "blue"), ("green",))
    assert len(models) == 1
    rendered = {str(l) for l in models[0]}
    assert "-colored(green)" in rendered

    print("\nOK: exceptions filter the choices, stable models enumerate them.")


if __name__ == "__main__":
    main()
