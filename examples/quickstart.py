#!/usr/bin/env python3
"""Quickstart: Figure 1 of the paper — defaults and exceptions.

An ordered program is a partially ordered set of components.  ``c2``
holds general bird knowledge; the more specific ``c1`` knows penguins
are ground animals and that ground animals do not fly.  Each component
has its own meaning: the same program answers differently depending on
the point of view.

Run:  python examples/quickstart.py
"""

from repro import OrderedSemantics, parse_program

P1 = parse_program(
    """
    component c2 {
        bird(penguin).
        bird(pigeon).
        fly(X) :- bird(X).
        -ground_animal(X) :- bird(X).
    }
    component c1 {
        ground_animal(penguin).
        -fly(X) :- ground_animal(X).
    }
    order c1 < c2.
    """
)


def main() -> None:
    print("Ordered program P1 (Figure 1 of the paper)")
    print("=" * 60)

    for component in ("c1", "c2"):
        sem = OrderedSemantics(P1, component)
        print(f"\nMeaning in component {component}:")
        print(f"  least model = {sem.least_model}")
        for query in ("fly(penguin)", "fly(pigeon)", "ground_animal(penguin)"):
            print(f"  value({query}) = {sem.value(query)}")

    # From c1's specific point of view, the penguin exception overrules
    # the inherited default; the pigeon still flies by inheritance.
    sem = OrderedSemantics(P1, "c1")
    assert sem.holds("-fly(penguin)")
    assert sem.holds("fly(pigeon)")

    # From the general component c2, nothing is known about exceptions.
    sem2 = OrderedSemantics(P1, "c2")
    assert sem2.holds("fly(penguin)")

    print("\nRule statuses in c1 under the least model:")
    for report in OrderedSemantics(P1, "c1").statuses():
        print(f"  {report}")

    print("\nOK: the penguin does not fly in c1, the pigeon does.")


if __name__ == "__main__":
    main()
