#!/usr/bin/env python3
"""The loan advisor — Figure 3 of the paper.

``myself`` (component ``c1``) consults three experts about taking a
loan.  Expert2 is independent; Expert3 refines Expert4.  Depending on
the economic facts, the experts agree, defeat each other, or the more
specific expert overrules the general one.

Run:  python examples/loan_advisor.py
"""

from repro import OrderedSemantics, TruthValue, parse_program


def loan_program(*facts: str):
    body = "\n".join(facts)
    return parse_program(
        f"""
        component c2 {{  % Expert2: high inflation favours loans
            take_loan :- inflation(X), X > 11.
        }}
        component c4 {{  % Expert4: high rates forbid loans
            -take_loan :- loan_rate(X), X > 14.
        }}
        component c3 {{  % Expert3 refines Expert4: inflation can beat rates
            take_loan :- inflation(X), loan_rate(Y), X > Y + 2.
        }}
        component c1 {{  % myself: the observed facts
            {body}
        }}
        order c1 < c2.
        order c1 < c3 < c4.
        """
    )


SCENARIOS = [
    ("no information", ()),
    ("moderate inflation", ("inflation(12).",)),
    ("inflation vs high rate (conflict)", ("inflation(12).", "loan_rate(16).")),
    ("runaway inflation beats the rate", ("inflation(19).", "loan_rate(16).")),
]

ADVICE = {
    TruthValue.TRUE: "take the loan",
    TruthValue.FALSE: "do NOT take the loan",
    TruthValue.UNDEFINED: "no advice (experts conflict or are silent)",
}


def main() -> None:
    print("Loan advisor (Figure 3 of the paper)")
    print("=" * 64)
    for title, facts in SCENARIOS:
        sem = OrderedSemantics(loan_program(*facts), "c1")
        verdict = sem.value("take_loan")
        shown = ", ".join(f.rstrip(".") for f in facts) or "(none)"
        print(f"\nScenario: {title}")
        print(f"  facts:   {shown}")
        print(f"  verdict: {ADVICE[verdict]}")
        if verdict is TruthValue.UNDEFINED and facts:
            conflicting = [
                r.rule
                for r in sem.statuses()
                if r.applicable and r.defeated and r.rule.head.predicate == "take_loan"
            ]
            for rule in conflicting:
                print(f"  defeated: {rule}")

    # A small decision surface: who wins across the parameter grid.
    print("\nDecision surface (rows: inflation, cols: loan rate)")
    rates = [10, 13, 16, 19]
    print("        " + "".join(f"r={r:<6}" for r in rates))
    for inflation in [10, 12, 14, 17, 20, 23]:
        row = []
        for rate in rates:
            sem = OrderedSemantics(
                loan_program(f"inflation({inflation}).", f"loan_rate({rate})."),
                "c1",
            )
            row.append(str(sem.value("take_loan")))
        print(f"  i={inflation:<4} " + "".join(f"{v:<7}" for v in row))
    print("\n(T = take the loan, U = no conclusion; -take_loan is never")
    print(" derivable at c1 — see EXPERIMENTS.md on Definition 2's")
    print(" non-blocked defeaters.)")


if __name__ == "__main__":
    main()
