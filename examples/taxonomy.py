#!/usr/bin/env python3
"""A knowledge base with inheritance, defaults, exceptions and versions.

The object-oriented reading of ordered logic (Sections 1 and 5 of the
paper): components are objects, ``isa`` is the order, local rules hide
inherited ones.  This example builds a small zoology knowledge base and
then *revises* one object — versioning for free.

Run:  python examples/taxonomy.py
"""

from repro.kb import KnowledgeBase


def build_kb() -> KnowledgeBase:
    kb = KnowledgeBase()

    # The general theory of animals.  Note the closure pattern: each
    # default comes with the default absence of its exceptions, so that
    # more specific objects can *block* rather than merely contradict.
    kb.define(
        "animal",
        """
        moves(X) :- animal_of(X).
        -flies(X) :- animal_of(X).
        -swims(X) :- animal_of(X).
        -bird_of(X) :- animal_of(X).
        -fish_of(X) :- animal_of(X).
        -penguin_of(X) :- animal_of(X).
        """,
    )

    # Birds fly by default; penguins are the exception of the exception.
    kb.define(
        "bird",
        """
        animal_of(X) :- bird_of(X).
        flies(X) :- bird_of(X).
        """,
        isa=["animal"],
    )
    kb.define(
        "penguin",
        """
        bird_of(X) :- penguin_of(X).
        -flies(X) :- penguin_of(X).
        swims(X) :- penguin_of(X).
        """,
        isa=["bird"],
    )

    # Fish swim.
    kb.define(
        "fish",
        """
        animal_of(X) :- fish_of(X).
        swims(X) :- fish_of(X).
        """,
        isa=["animal"],
    )

    # The individuals live in the most specific object.
    kb.define("zoo", isa=["penguin", "fish"])
    kb.tell(
        "zoo",
        """
        bird_of(woody).
        penguin_of(pingu).
        fish_of(nemo).
        """,
    )
    return kb


def main() -> None:
    kb = build_kb()
    print("Zoology knowledge base")
    print("=" * 60)
    print("objects:", ", ".join(sorted(kb.objects)))

    for individual in ("woody", "pingu", "nemo"):
        print(f"\n{individual}:")
        for prop in ("moves", "flies", "swims"):
            value = kb.value("zoo", f"{prop}({individual})")
            print(f"  {prop}: {value}")

    assert kb.ask("zoo", "flies(woody)")
    assert kb.ask("zoo", "-flies(pingu)")
    assert kb.ask("zoo", "swims(pingu)")
    assert kb.ask("zoo", "swims(nemo)")
    assert kb.ask("zoo", "-flies(nemo)")

    print("\nAll swimmers:", [str(a.literal) for a in kb.query("zoo", "swims(X)")])

    # Versioning: revise the penguin object — rocket penguins fly.
    kb.derive(
        "penguin_v2",
        "penguin",
        "flies(X) :- penguin_of(X), rocket(X).",
    )
    kb.define("lab", isa=["penguin_v2"])
    kb.tell("lab", "penguin_of(pingu). rocket(pingu).")
    print("\nAfter revising penguin -> penguin_v2 (rocket penguins fly):")
    print("  lab view, flies(pingu):", kb.value("lab", "flies(pingu)"))
    print("  zoo view, flies(pingu):", kb.value("zoo", "flies(pingu)"))
    assert kb.ask("lab", "flies(pingu)")
    assert kb.ask("zoo", "-flies(pingu)")  # the old version is untouched
    print("\nOK: exceptions override defaults; versions override exceptions.")


if __name__ == "__main__":
    main()
