#!/usr/bin/env python3
"""The deductive-database side of Example 6: relations + Datalog.

The paper's ancestor program defines ``parent`` "through a database
relation".  This example loads an extensional database, evaluates the
recursive IDB with the non-ground semi-naive engine (no Herbrand-
universe grounding), cross-checks against the ground pipeline, and then
wraps the same program in ``OV`` to get the ordered reading with its
explicit closed world.

Run:  python examples/deductive_db.py
"""

from repro import parse_rules
from repro.classical.positive import minimal_model
from repro.db import Database, DatalogEngine
from repro.grounding import Grounder
from repro.reductions import ordered_version

FAMILY = [
    ("adam", "cain"),
    ("adam", "abel"),
    ("adam", "seth"),
    ("cain", "enoch"),
    ("seth", "enos"),
    ("enos", "kenan"),
]

RULES = parse_rules(
    """
    anc(X, Y) :- parent(X, Y).
    anc(X, Y) :- parent(X, Z), anc(Z, Y).
    siblings(X, Y) :- parent(P, X), parent(P, Y), X != Y.
    patriarch(X) :- parent(X, Y), -child(X).
    child(X) :- parent(Y, X).
    """
)


def main() -> None:
    db = Database()
    for pair in FAMILY:
        db.insert("parent", pair)

    print("Deductive database (Example 6 of the paper)")
    print("=" * 60)
    print(f"EDB: parent relation with {len(db.relation('parent'))} tuples")

    engine = DatalogEngine(RULES, db)

    from repro import Variable

    X = Variable("X")
    ancestors = engine.query("anc(adam, X)")
    print("\nadam's descendants:", sorted(str(t[X]) for t in ancestors))
    assert engine.holds("anc(adam, kenan)")
    assert not engine.holds("anc(kenan, adam)")

    siblings = engine.query("siblings(cain, X)")
    print("cain's siblings:   ", sorted(str(t[X]) for t in siblings))

    patriarchs = engine.query("patriarch(X)")
    print("patriarchs:        ", sorted(str(t[X]) for t in patriarchs))
    assert engine.holds("patriarch(adam)")
    assert not engine.holds("patriarch(cain)")

    # Differential check: the engine's fixpoint equals ground-then-close
    # (for the positive fragment) on every atom.
    positive = [r for r in RULES if r.is_positive and not r.guards()]
    facts = db.facts()
    ground = Grounder().ground_rules(facts + positive)
    engine_pos = DatalogEngine(positive, db)
    assert {a for a in engine_pos.atoms() if a.predicate in ("anc", "child", "parent")} == {
        a for a in minimal_model(ground.rules) if a.predicate in ("anc", "child", "parent")
    }
    print("\nnon-ground engine == ground-then-close on the positive part ✓")

    # The ordered reading: OV adds the explicit closed world, so
    # non-ancestry is *derivably false*, not merely absent.
    sem = ordered_version(facts + parse_rules(
        "anc(X, Y) :- parent(X, Y). anc(X, Y) :- parent(X, Z), anc(Z, Y)."
    )).semantics()
    assert sem.holds("-anc(kenan, adam)")
    print("OV(C): -anc(kenan, adam) is explicitly derived (CWA component)")
    print("\nOK")


if __name__ == "__main__":
    main()
