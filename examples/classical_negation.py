#!/usr/bin/env python3
"""Section 3 tour: classical logic programming inside ordered logic.

A seminegative program ``C`` has no meaning of its own until a negation
convention is chosen.  The paper's answer: make the convention *part of
the program* by placing ``C`` under an explicit closed-world component
(``OV(C)``); the assumption-free / stable models of the ordered program
then coincide with the founded / stable models of ``C``.  This example
runs the same program through every semantics the library implements
and prints them side by side.

Run:  python examples/classical_negation.py
"""

from repro import parse_rules
from repro.classical import is_founded, is_gl_stable, well_founded
from repro.grounding import Grounder
from repro.reductions import extended_version, ordered_version

# The win-move game on a small graph with a draw cycle:
#   n0 -> n1 -> n2 (sink), plus the 2-cycle m0 <-> m1.
PROGRAM = """
move(n0, n1).  move(n1, n2).
move(m0, m1).  move(m1, m0).
win(X) :- move(X, Y), -win(Y).
"""


def main() -> None:
    rules = parse_rules(PROGRAM)
    ground = Grounder().ground_rules(rules)
    print("Program: the win-move game with a draw cycle")
    print("=" * 64)
    for r in rules:
        print(f"  {r}")

    # 1. Well-founded semantics: the polynomial-time core.
    wf = well_founded(ground.rules, ground.base)
    print("\nWell-founded model:")
    print("  true: ", sorted(str(a) for a in wf.true_atoms if a.predicate == "win"))
    print("  false:", sorted(str(a) for a in wf.false_atoms if a.predicate == "win"))
    print("  undef:", sorted(str(a) for a in wf.undefined_atoms))

    # 2. The ordered reading: OV(C)'s least model gives the same
    #    assumption-free core, computed by the V fixpoint.
    ov = ordered_version(rules).semantics()
    print("\nOV(C) least model (win atoms):")
    print(
        "  ",
        sorted(
            str(l)
            for l in ov.least_model
            if l.predicate == "win"
        ),
    )
    assert ov.holds("win(n1)")
    assert ov.holds("-win(n2)")
    assert ov.undefined("win(m0)")

    # 3. Stable models: the draw cycle splits into two worlds.
    ov_stable = ov.stable_models()
    print(f"\nOV(C) stable models ({len(ov_stable)}):")
    for m in ov_stable:
        print("  ", sorted(str(l) for l in m if l.predicate == "win"))

    # 4. Cross-checks with the classical machinery (Propositions 3-5,
    #    Corollary 1) — pointwise, since brute-force enumeration over
    #    the 30-atom base would be 3^30.
    total_stable = [m for m in ov_stable if m.is_total]
    assert all(is_gl_stable(ground.rules, m.true_atoms()) for m in total_stable)
    print(f"\ntotal stable models: {len(total_stable)} — all GL-stable")

    # EV(C) has the same stable models (Proposition 5d) but its least
    # model is empty — the reflexive rules shield every atom from the
    # CWA — so enumeration cannot be seeded and scales worse than OV's.
    # Compare on the cycle sub-program where both are instant.
    cycle_rules = parse_rules(
        "move(m0, m1).  move(m1, m0).  win(X) :- move(X, Y), -win(Y)."
    )
    ov_cycle = ordered_version(cycle_rules).semantics()
    ev_cycle = extended_version(cycle_rules).semantics()
    assert {m.literals for m in ev_cycle.stable_models()} == {
        m.literals for m in ov_cycle.stable_models()
    }
    print("EV stable models agree with OV on the cycle (Proposition 5d)")

    # Proposition 4, checked pointwise (full founded enumeration is
    # 3^|base| — the AF models of OV(C) are exactly the founded models).
    af = ov.assumption_free_models()
    assert all(is_founded(ground.rules, m, ground.base) for m in af)
    print(f"assumption-free models of OV(C): {len(af)} — all founded (Prop 4)")

    print("\nOK: ordered semantics reproduces the classical semantics.")


if __name__ == "__main__":
    main()
