"""The public demand-evaluation entry point.

:func:`demand_answers` answers a literal pattern against one view of an
ordered program *without materializing the least model*, when sound:

* the view must be seminegative and positive-or-stratified
  (:func:`~repro.analysis.static.classify_view`; single-component is
  *not* required — see :func:`_view_unroutable`), because only then
  does the ordered least model coincide with the Horn closure the
  magic-sets rewrite evaluates;
* the goal's cone must be safe and free of recursive function growth
  (:func:`~repro.query.magic.cone_ineligibility`);
* the mode must be cautious — skeptical/credulous entailment consults
  stable models, which demand evaluation does not enumerate.

Anything else returns ``DemandResult(used=False, reason=...)`` and the
caller falls back to full materialization; every fallback increments a
``query.demand.fallback.<reason>`` counter so operators can see *why*
the fast path declined.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

from ..analysis.abstract import analyze_rules
from ..analysis.static import classify_view
from ..kb.query import Answer
from ..lang.literals import Atom, Literal
from ..lang.parser import parse_literal
from ..lang.program import OrderedProgram
from ..lang.rules import Rule
from ..obs import get_instrumentation
from .engine import DemandEngine
from .magic import DemandIneligible, build_plan, cone_ineligibility
from .sources import FactSource, MemoryFactSource, UnionFactSource

__all__ = [
    "DemandResult",
    "demand_answers",
    "demand_ineligibility",
]

#: Fallback reasons that are about the request, not the program.
REASON_MODE = "mode"
REASON_UNROUTABLE = "unroutable"


@dataclass(frozen=True)
class DemandResult:
    """Either the answers, or the reason the demand path declined."""

    answers: Optional[list[Answer]]
    used: bool
    reason: Optional[str] = None
    detail: Optional[str] = None


def _partition(
    program: OrderedProgram, component: str
) -> tuple[list[Rule], MemoryFactSource]:
    """Split the view into the demandable rule set and the told facts.

    Ground positive facts become a :class:`MemoryFactSource`.  Rules
    carrying a negative body literal are dropped entirely: under the
    membership reading of a seminegative view no negative literal is
    ever derivable, so those rules never fire (see
    :func:`repro.classical.stratified.stratified_least_model`).
    Non-ground facts stay in the rule set so the safety check flags
    them.
    """
    facts = MemoryFactSource()
    rules: list[Rule] = []
    for comp in program.visible_components(component):
        for r in comp.rules:
            if r.is_fact and r.is_ground:
                facts.add(r.head.atom)
            elif all(l.positive for l in r.body_literals()):
                rules.append(r)
    return rules, facts


class _StubRows:
    """A fact source's relation viewed the way
    :meth:`repro.analysis.abstract.AbstractAnalysis._seed_edb` expects:
    ``len()`` is the true cardinality, iteration yields a small sample
    (sort inference only) — never a scan of a disk-backed store."""

    def __init__(self, count: int, sample: list[tuple]) -> None:
        self._count = count
        self._sample = sample

    def __len__(self) -> int:
        return self._count

    def __iter__(self):
        return iter(self._sample)


class _StubRelation:
    def __init__(self, name: str, arity: int, rows: _StubRows) -> None:
        self.name = name
        self.arity = arity
        self.rows = rows


def _cardinality_estimator(rules: Sequence[Rule], source: FactSource):
    """Body-literal cardinality bounds from the abstract interpretation,
    with EDB sizes seeded from the fact sources (sampled, not scanned)."""
    stubs = []
    for name in sorted(source.predicates()):
        arity = source.arity(name)
        if arity is None:
            continue
        stubs.append(
            _StubRelation(
                name, arity, _StubRows(source.count(name), source.sample(name))
            )
        )
    try:
        analysis = analyze_rules(rules, edb=stubs)
    except Exception:
        return lambda literal: None

    def estimate(literal) -> Optional[int]:
        try:
            return analysis.literal_fact(literal).card.hi
        except Exception:
            return None

    return estimate


def _view_unroutable(program: OrderedProgram, component: str) -> Optional[str]:
    """Why the view's least model is not the Horn closure the demand
    rewrite evaluates, or None when it is.

    This is :attr:`~repro.analysis.static.ViewClassification.routable`
    minus the single-component requirement: a seminegative view derives
    no negative literals, hence has no contradictions, hence no
    overruling or defeating *between components either* — the component
    order is inert and ``V_{P,C}`` degenerates to the stratified Horn
    consequence operator over all visible rules, exactly as in
    :func:`repro.classical.stratified.stratified_least_model`.
    """
    info = classify_view(program, component)
    if not info.seminegative:
        return "the view contains negative-head rules"
    if info.classification not in ("positive", "stratified"):
        return f"the view is {info.classification}"
    return None


def demand_ineligibility(
    program: OrderedProgram, component: str
) -> Optional[tuple[str, str]]:
    """Why *no* goal against this view can take the demand path, or None.

    Goal-independent: used by ``olp check`` for the ``demand-ineligible``
    diagnostic.  Returns ``(reason, detail)`` with reason one of
    ``unroutable`` (unstratified / negative heads), ``unsafe-sips`` or
    ``function-growth``.
    """
    detail = _view_unroutable(program, component)
    if detail is not None:
        return (REASON_UNROUTABLE, detail)
    rules, _ = _partition(program, component)
    problem = cone_ineligibility(None, rules)
    if problem is not None:
        return (problem.reason, problem.detail)
    return None


def demand_answers(
    program: OrderedProgram,
    component: str,
    pattern: Union[Literal, str],
    mode: str = "cautious",
    *,
    sources: Sequence[FactSource] = (),
) -> DemandResult:
    """Answer a literal pattern goal-directed, or decline with a reason.

    Args:
        program: the ordered program.
        component: the view to answer in.
        pattern: the goal literal (possibly non-ground).
        mode: only ``"cautious"`` is demandable.
        sources: extra fact sources (attached EDB stores); told ground
            facts of the view are always included.

    Answers are bit-identical to
    ``answers_in(semantics.least_model, pattern)`` whenever
    ``used=True``.
    """
    obs = get_instrumentation()

    def fallback(reason: str, detail: Optional[str] = None) -> DemandResult:
        if obs.enabled:
            obs.count(f"query.demand.fallback.{reason}")
        return DemandResult(None, False, reason, detail)

    if isinstance(pattern, str):
        pattern = parse_literal(pattern)
    if mode != "cautious":
        return fallback(REASON_MODE, f"mode {mode!r} needs stable models")

    unroutable = _view_unroutable(program, component)
    if unroutable is not None:
        return fallback(REASON_UNROUTABLE, unroutable)

    if not pattern.positive:
        # A routable (seminegative) view derives no negative literals:
        # the least model cannot match a negative pattern.
        if obs.enabled:
            obs.count("query.demand.served")
        return DemandResult([], True)

    rules, facts = _partition(program, component)
    source = UnionFactSource((facts, *sources))

    idb = {r.head.predicate for r in rules}
    if pattern.predicate not in idb:
        # Purely extensional goal: answer straight from the sources.
        answers = _extensional_answers(pattern, source)
        if obs.enabled:
            obs.count("query.demand.served")
        return DemandResult(answers, True)

    try:
        plan = build_plan(
            pattern,
            rules,
            source.predicates(),
            _cardinality_estimator(rules, source),
        )
    except DemandIneligible as problem:
        return fallback(problem.reason, problem.detail)

    rows = DemandEngine(plan, source).run()
    answers = _filter_rows(pattern, rows)
    if obs.enabled:
        obs.count("query.demand.served")
    return DemandResult(answers, True)


def _extensional_answers(pattern: Literal, source: FactSource) -> list[Answer]:
    if source.arity(pattern.predicate) != len(pattern.args):
        return []
    fetch_pattern = [a if a.is_ground else None for a in pattern.args]
    return _filter_rows(
        pattern, source.fetch(pattern.predicate, fetch_pattern)
    )


def _filter_rows(pattern: Literal, rows) -> list[Answer]:
    """Rows -> sorted answers, re-matched against the original pattern.

    The re-match is what makes repeated goal variables (``p(X, X)``) and
    compound argument patterns behave exactly like
    :func:`repro.kb.query.answers_in` over the materialized model.
    """
    from ..grounding.substitution import match_atom

    answers = []
    seen = set()
    for row in rows:
        atom = Atom(pattern.predicate, tuple(row))
        if atom in seen:
            continue
        seen.add(atom)
        bindings = match_atom(pattern.atom, atom)
        if bindings is None:
            continue
        answers.append(Answer(Literal(atom, True), bindings))
    return sorted(answers, key=lambda a: str(a.literal))
