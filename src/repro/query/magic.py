"""The demand (magic-sets) transformation over the ordered transform.

Given a goal pattern against a *routable* view (single-component,
seminegative, positive-or-stratified — see
:func:`repro.analysis.static.classify_view`), the least ordered model
degenerates to the Horn closure of the positive-body rules
(:func:`repro.classical.stratified.stratified_least_model`).  That Horn
subset is what this module rewrites:

1. **Cone** — the predicates reachable from the goal through rule
   bodies; rules outside the cone can never contribute to an answer.
2. **Eligibility** — every cone rule must be *safe* (head and guard
   variables bound by body literals; non-ground facts are unsafe), and
   no cone rule may build function terms in its head (the grounder's
   Herbrand depth bound has no analogue in goal-directed
   evaluation).  An ineligible cone falls back to materialization with
   a reason the caller turns into an obs counter and the
   ``demand-ineligible`` diagnostic.
3. **Sips** — per rule, body literals are ordered greedily: prefer
   literals connected to the already-bound variables, then the
   smallest cardinality estimate from the abstract interpretation
   (:func:`repro.analysis.abstract.analyze_rules` over the cone, with
   EDB relation sizes seeded from the fact sources).
4. **Adorn + magic** — standard magic sets: each intensional predicate
   splits per binding pattern into an adorned answer predicate guarded
   by a magic predicate; one magic rule per intensional body
   occurrence passes bindings sideways along the sips order.
   Extensional literals stay unadorned — the evaluator fetches their
   rows from a :class:`~repro.query.sources.FactSource` with whatever
   bindings the join prefix has produced.

The output :class:`MagicPlan` is consumed by
:class:`~repro.query.engine.DemandEngine`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..lang.builtins import Comparison
from ..lang.literals import Literal
from ..lang.rules import Rule
from ..lang.terms import Compound, Term, Variable

__all__ = [
    "BodyAtom",
    "DemandRule",
    "MagicPlan",
    "DemandIneligible",
    "build_plan",
    "cone_ineligibility",
    "goal_adornment",
]

#: Fallback / ineligibility reasons (stable: they name obs counters and
#: feed the ``demand-ineligible`` diagnostic).
UNSAFE_SIPS = "unsafe-sips"
FUNCTION_GROWTH = "function-growth"


class DemandIneligible(Exception):
    """The goal's cone cannot take the demand path.

    Attributes:
        reason: a stable token (``unsafe-sips`` / ``function-growth``).
        detail: a human-readable explanation naming the offender.
    """

    def __init__(self, reason: str, detail: str) -> None:
        super().__init__(f"{reason}: {detail}")
        self.reason = reason
        self.detail = detail


@dataclass(frozen=True)
class BodyAtom:
    """One ordered body element of a rewritten rule.

    ``kind`` is ``"magic"`` (a demand guard), ``"idb"`` (an adorned
    intensional literal) or ``"edb"`` (an extensional literal fetched
    from a fact source).  ``adornment`` is empty for ``edb``.
    """

    kind: str
    predicate: str
    adornment: str
    args: tuple[Term, ...]

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.kind, self.predicate, self.adornment)


@dataclass(frozen=True)
class DemandRule:
    """One rewritten rule: adorned-or-magic head, sips-ordered body."""

    head_key: tuple[str, str, str]
    head_args: tuple[Term, ...]
    body: tuple[BodyAtom, ...]
    guards: tuple[Comparison, ...] = ()

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        kind, pred, ad = self.head_key
        head = f"{kind}:{pred}^{ad}({', '.join(map(str, self.head_args))})"
        body = ", ".join(
            f"{b.kind}:{b.predicate}^{b.adornment}"
            f"({', '.join(map(str, b.args))})"
            for b in self.body
        )
        return f"{head} :- {body}."


@dataclass
class MagicPlan:
    """A compiled demand program for one goal."""

    goal: Literal
    adornment: str
    rules: tuple[DemandRule, ...]
    #: Extensional predicates (fetched from a fact source).
    edb: frozenset[str]
    #: Intensional predicates that *also* have extensional rows — the
    #: evaluator bridges source rows into the adorned store on demand.
    bridged: frozenset[str]
    #: The magic seed: the goal's bound arguments.
    seed: tuple[Term, ...] = field(default=())

    @property
    def answer_key(self) -> tuple[str, str, str]:
        return ("idb", self.goal.predicate, self.adornment)


def goal_adornment(goal: Literal) -> str:
    """``b``/``f`` per argument: bound when the argument is ground."""
    return "".join("b" if a.is_ground else "f" for a in goal.args)


def _safety_violation(rule: Rule) -> Optional[str]:
    """Why a Horn rule cannot be evaluated goal-directed, or None."""
    bound: frozenset[Variable] = frozenset()
    for lit in rule.body_literals():
        bound |= lit.variables()
    loose = rule.head.variables() - bound
    if loose:
        names = ", ".join(sorted(v.name for v in loose))
        return (
            f"head variable(s) {names} of `{rule}` are not bound by any "
            "body literal"
        )
    for guard in rule.guards():
        if guard.variables() - bound:
            return f"guard {guard} of `{rule}` has unbound variables"
    return None


def _head_grows_functions(rule: Rule) -> bool:
    return any(isinstance(a, Compound) for a in rule.head.args)


def _cone(
    goal_pred: Optional[str], rules_by_pred: dict[str, list[Rule]]
) -> tuple[frozenset[str], list[Rule]]:
    """Predicates and rules reachable from the goal through bodies.
    ``goal_pred=None`` means the whole program (every head predicate)."""
    seen: set[str] = set()
    stack = (
        [goal_pred] if goal_pred is not None else sorted(rules_by_pred)
    )
    cone_rules: list[Rule] = []
    while stack:
        pred = stack.pop()
        if pred in seen:
            continue
        seen.add(pred)
        for r in rules_by_pred.get(pred, ()):
            cone_rules.append(r)
            for lit in r.body_literals():
                if lit.predicate not in seen:
                    stack.append(lit.predicate)
    return frozenset(seen), cone_rules


def cone_ineligibility(
    goal_pred: Optional[str], rules: Sequence[Rule]
) -> Optional[DemandIneligible]:
    """The reason the goal's cone cannot take the demand path, or None.

    ``rules`` are the view's *intensional* Horn rules (ground facts
    excluded); ``goal_pred=None`` checks the whole program (the
    goal-independent form behind the ``demand-ineligible`` diagnostic).
    Checked: safety of every cone rule, and function growth in
    recursive cone predicates.
    """
    rules_by_pred: dict[str, list[Rule]] = {}
    for r in rules:
        rules_by_pred.setdefault(r.head.predicate, []).append(r)
    _, cone_rules = _cone(goal_pred, rules_by_pred)
    for r in cone_rules:
        violation = _safety_violation(r)
        if violation is not None:
            return DemandIneligible(UNSAFE_SIPS, violation)
    # Function growth: a rule that *builds* compound terms in its head
    # derives instances the depth-bounded Herbrand grounder may not
    # enumerate (and recursion makes the demanded set unbounded), so
    # answers could diverge from the materialized model.  Compound
    # *patterns* in bodies are fine — they only match existing data.
    for r in cone_rules:
        if _head_grows_functions(r):
            return DemandIneligible(
                FUNCTION_GROWTH,
                f"rule `{r}` builds function terms in its head",
            )
    return None


def _sips_order(
    rule: Rule,
    bound: set[Variable],
    cardinality: Callable[[Literal], Optional[int]],
) -> tuple[int, ...]:
    """Sideways-information-passing order over the rule body: greedy,
    connected-first, cheapest (smallest cardinality bound) next, textual
    position as the deterministic tiebreak."""
    literals = rule.body_literals()
    remaining = list(range(len(literals)))
    order: list[int] = []
    seen_vars = set(bound)

    def rank(i: int) -> tuple[bool, float, int]:
        lit = literals[i]
        variables = lit.variables()
        connected = not variables or bool(variables & seen_vars)
        card = cardinality(lit)
        estimate = float("inf") if card is None else float(card)
        return (not connected, estimate, i)

    while remaining:
        best = min(remaining, key=rank)
        remaining.remove(best)
        order.append(best)
        seen_vars |= literals[best].variables()
    return tuple(order)


def _adorn(args: Sequence[Term], bound: set[Variable]) -> str:
    return "".join(
        "b" if a.is_ground or a.variables() <= bound else "f" for a in args
    )


def _bound_args(args: Sequence[Term], adornment: str) -> tuple[Term, ...]:
    return tuple(a for a, b in zip(args, adornment) if b == "b")


def build_plan(
    goal: Literal,
    rules: Sequence[Rule],
    edb_predicates: frozenset[str],
    cardinality: Callable[[Literal], Optional[int]],
) -> MagicPlan:
    """Compile the magic/adorned program demanded by one goal.

    Args:
        goal: the (positive) goal literal pattern.
        rules: the view's intensional Horn rules.
        edb_predicates: predicates with extensional rows in the fact
            source (told facts and/or an attached EDB store).
        cardinality: body-literal cardinality estimates driving sips.

    Raises:
        DemandIneligible: when the goal's cone is unsafe or grows
            function terms recursively.
    """
    rules_by_pred: dict[str, list[Rule]] = {}
    for r in rules:
        rules_by_pred.setdefault(r.head.predicate, []).append(r)
    ineligible = cone_ineligibility(goal.predicate, rules)
    if ineligible is not None:
        raise ineligible

    idb = set(rules_by_pred)
    adornment = goal_adornment(goal)
    out: list[DemandRule] = []
    todo: list[tuple[str, str]] = [(goal.predicate, adornment)]
    done: set[tuple[str, str]] = set()
    while todo:
        pred, ad = todo.pop()
        if (pred, ad) in done:
            continue
        done.add((pred, ad))
        for r in rules_by_pred.get(pred, ()):
            bound_vars: set[Variable] = set()
            for arg, b in zip(r.head.args, ad):
                if b == "b":
                    bound_vars |= arg.variables()
            literals = r.body_literals()
            order = _sips_order(r, bound_vars, cardinality)
            magic_head = BodyAtom(
                "magic", pred, ad, _bound_args(r.head.args, ad)
            )
            body: list[BodyAtom] = [magic_head]
            seen = set(bound_vars)
            for i in order:
                lit = literals[i]
                if lit.predicate in idb:
                    sub_ad = _adorn(lit.args, seen)
                    # Magic rule: demand for this body occurrence is
                    # the join prefix before it.
                    out.append(
                        DemandRule(
                            ("magic", lit.predicate, sub_ad),
                            _bound_args(lit.args, sub_ad),
                            tuple(body),
                        )
                    )
                    todo.append((lit.predicate, sub_ad))
                    body.append(
                        BodyAtom("idb", lit.predicate, sub_ad, lit.args)
                    )
                else:
                    body.append(BodyAtom("edb", lit.predicate, "", lit.args))
                seen |= lit.variables()
            out.append(
                DemandRule(
                    ("idb", pred, ad),
                    tuple(r.head.args),
                    tuple(body),
                    r.guards(),
                )
            )
    bridged = frozenset(p for p, _ in done) & edb_predicates
    return MagicPlan(
        goal=goal,
        adornment=adornment,
        rules=tuple(out),
        edb=edb_predicates - idb,
        bridged=bridged,
        seed=_bound_args(goal.args, adornment),
    )
