"""Fact sources: lazy, pattern-directed access to extensional facts.

The demand evaluator never scans a fact base.  Every extensional
predicate is read through a :class:`FactSource`, whose one real
operation is :meth:`~FactSource.fetch`: *give me the rows matching this
positional pattern* — exactly the tuples a magic predicate asked for.

Three implementations:

* :class:`MemoryFactSource` — ground facts already in the program
  (told facts, workload fixtures), with lazily-built per-column hash
  indexes so bound-position fetches are dictionary lookups;
* :class:`EdbFactSource` — a disk-backed
  :class:`~repro.db.edb.EdbStore` (SQLite column store, per-column
  indexes);
* :class:`UnionFactSource` — the two combined: a knowledge base with
  an attached EDB answers from the store *and* from facts told through
  the delta pipeline since the store was built.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

from ..lang.literals import Atom
from ..lang.terms import Term

__all__ = [
    "FactSource",
    "MemoryFactSource",
    "EdbFactSource",
    "UnionFactSource",
]

Row = tuple[Term, ...]
Pattern = Sequence[Optional[Term]]


class FactSource:
    """Pattern-directed access to one set of extensional relations."""

    def arity(self, predicate: str) -> Optional[int]:
        """The predicate's arity, or None when unknown here."""
        raise NotImplementedError

    def count(self, predicate: str) -> int:
        """Total rows for the predicate (0 when unknown)."""
        raise NotImplementedError

    def fetch(self, predicate: str, pattern: Pattern) -> Iterator[Row]:
        """Rows matching the pattern (ground term = constrained
        column, None = free column)."""
        raise NotImplementedError

    def sample(self, predicate: str, limit: int = 32) -> list[Row]:
        """Up to ``limit`` arbitrary rows (sort inference only)."""
        raise NotImplementedError

    def predicates(self) -> frozenset[str]:
        raise NotImplementedError


def _matches(row: Row, pattern: Pattern) -> bool:
    for term, want in zip(row, pattern):
        if want is not None and term != want:
            return False
    return True


class MemoryFactSource(FactSource):
    """Ground fact atoms held in memory, indexed per column on demand."""

    def __init__(self, atoms: Iterable[Atom] = ()) -> None:
        self._rows: dict[str, set[Row]] = {}
        self._arity: dict[str, int] = {}
        #: (predicate, column) -> term -> rows; built on first use.
        self._indexes: dict[tuple[str, int], dict[Term, list[Row]]] = {}
        for atom in atoms:
            self.add(atom)

    def add(self, atom: Atom) -> None:
        pred = atom.predicate
        known = self._arity.get(pred)
        if known is None:
            self._arity[pred] = atom.arity
        elif known != atom.arity:
            # Arity clashes are diagnosed by `olp check`; here the
            # differing-arity fact simply never matches the pattern.
            return
        rows = self._rows.setdefault(pred, set())
        if atom.args not in rows:
            rows.add(atom.args)
            for col, term in enumerate(atom.args):
                index = self._indexes.get((pred, col))
                if index is not None:
                    index.setdefault(term, []).append(atom.args)

    def arity(self, predicate: str) -> Optional[int]:
        return self._arity.get(predicate)

    def count(self, predicate: str) -> int:
        return len(self._rows.get(predicate, ()))

    def _index(self, predicate: str, col: int) -> dict[Term, list[Row]]:
        key = (predicate, col)
        index = self._indexes.get(key)
        if index is None:
            index = {}
            for row in self._rows.get(predicate, ()):
                index.setdefault(row[col], []).append(row)
            self._indexes[key] = index
        return index

    def fetch(self, predicate: str, pattern: Pattern) -> Iterator[Row]:
        rows = self._rows.get(predicate)
        if rows is None or self._arity[predicate] != len(pattern):
            return
        bound = [i for i, t in enumerate(pattern) if t is not None]
        if not bound:
            yield from rows
            return
        col = bound[0]
        for row in self._index(predicate, col).get(pattern[col], ()):
            if _matches(row, pattern):
                yield row

    def sample(self, predicate: str, limit: int = 32) -> list[Row]:
        rows = self._rows.get(predicate, ())
        out = []
        for row in rows:
            out.append(row)
            if len(out) >= limit:
                break
        return out

    def predicates(self) -> frozenset[str]:
        return frozenset(self._rows)


class EdbFactSource(FactSource):
    """A :class:`~repro.db.edb.EdbStore` as a fact source."""

    def __init__(self, store) -> None:
        self.store = store

    def arity(self, predicate: str) -> Optional[int]:
        return self.store.arity(predicate)

    def count(self, predicate: str) -> int:
        return self.store.count(predicate)

    def fetch(self, predicate: str, pattern: Pattern) -> Iterator[Row]:
        return self.store.fetch(predicate, pattern)

    def sample(self, predicate: str, limit: int = 32) -> list[Row]:
        return self.store.sample(predicate, limit)

    def predicates(self) -> frozenset[str]:
        return frozenset(self.store.names())


class UnionFactSource(FactSource):
    """Several sources read as one; duplicate rows are collapsed."""

    def __init__(self, sources: Sequence[FactSource]) -> None:
        self.sources = tuple(sources)

    def arity(self, predicate: str) -> Optional[int]:
        for source in self.sources:
            arity = source.arity(predicate)
            if arity is not None:
                return arity
        return None

    def count(self, predicate: str) -> int:
        return sum(source.count(predicate) for source in self.sources)

    def fetch(self, predicate: str, pattern: Pattern) -> Iterator[Row]:
        arity = self.arity(predicate)
        seen: set[Row] = set()
        for source in self.sources:
            if source.arity(predicate) != arity:
                continue
            for row in source.fetch(predicate, pattern):
                if row not in seen:
                    seen.add(row)
                    yield row

    def sample(self, predicate: str, limit: int = 32) -> list[Row]:
        out: list[Row] = []
        for source in self.sources:
            out.extend(source.sample(predicate, limit - len(out)))
            if len(out) >= limit:
                break
        return out

    def predicates(self) -> frozenset[str]:
        preds: frozenset[str] = frozenset()
        for source in self.sources:
            preds |= source.predicates()
        return preds
