"""Demand-driven (goal-directed) query answering — docs/query.md.

The subsystem has four layers:

* :mod:`repro.query.sources` — pattern-directed fact access (in-memory
  told facts, disk-backed :class:`~repro.db.edb.EdbStore`, unions);
* :mod:`repro.query.magic` — the magic-sets rewrite specialized to the
  ordered transform (cone, eligibility, sips, adornment);
* :mod:`repro.query.engine` — semi-naive evaluation of the rewritten
  program with lazy EDB fetches;
* :mod:`repro.query.api` — :func:`demand_answers`, the entry point the
  knowledge base, server and CLI route ``strategy="demand"`` through.
"""

from .api import DemandResult, demand_answers, demand_ineligibility
from .engine import DemandEngine
from .magic import (
    BodyAtom,
    DemandIneligible,
    DemandRule,
    MagicPlan,
    build_plan,
    cone_ineligibility,
    goal_adornment,
)
from .sources import (
    EdbFactSource,
    FactSource,
    MemoryFactSource,
    UnionFactSource,
)

__all__ = [
    "DemandResult",
    "demand_answers",
    "demand_ineligibility",
    "DemandEngine",
    "BodyAtom",
    "DemandIneligible",
    "DemandRule",
    "MagicPlan",
    "build_plan",
    "cone_ineligibility",
    "goal_adornment",
    "EdbFactSource",
    "FactSource",
    "MemoryFactSource",
    "UnionFactSource",
]
