"""Semi-naive evaluation of a compiled :class:`~repro.query.magic.MagicPlan`.

The engine maintains one row-set per ``(kind, predicate, adornment)``
key — magic (demand) predicates and adorned answer predicates — plus a
worklist of newly-derived rows.  Extensional literals are never stored:
each firing fetches exactly the rows its join prefix constrains from
the :class:`~repro.query.sources.FactSource`, which is the whole point
of the demand path: a ground goal over a 10M-fact EDB touches the
handful of tuples its magic predicates request.

Bridging: an intensional predicate may *also* have extensional rows
(told facts, or an attached EDB store shadowing a derived relation).
When a magic row for such a predicate is derived, the matching source
rows are pulled straight into its adorned answer set.
"""

from __future__ import annotations

from collections import deque
from typing import Mapping, Optional

from ..lang.terms import Compound, Term, Variable
from ..obs import get_instrumentation
from ..obs.trace import current_trace
from .magic import DemandRule, MagicPlan
from .sources import FactSource, Row

__all__ = ["DemandEngine"]

Key = tuple[str, str, str]


def _match_term(pattern: Term, value: Term, theta: dict[Variable, Term]) -> bool:
    """Structurally match ``value`` against ``pattern``, binding variables."""
    if isinstance(pattern, Variable):
        bound = theta.get(pattern)
        if bound is None:
            theta[pattern] = value
            return True
        return bound == value
    if isinstance(pattern, Compound):
        return (
            isinstance(value, Compound)
            and value.functor == pattern.functor
            and len(value.args) == len(pattern.args)
            and all(
                _match_term(p, v, theta)
                for p, v in zip(pattern.args, value.args)
            )
        )
    return pattern == value


def _match_args(
    args: tuple[Term, ...], row: Row, theta: dict[Variable, Term]
) -> bool:
    if len(args) != len(row):
        return False
    return all(_match_term(a, v, theta) for a, v in zip(args, row))


def _subst(term: Term, theta: Mapping[Variable, Term]) -> Term:
    if isinstance(term, Variable):
        return theta.get(term, term)
    if isinstance(term, Compound):
        return Compound(term.functor, tuple(_subst(a, theta) for a in term.args))
    return term


class DemandEngine:
    """One-shot evaluator: ``run()`` returns the goal's answer rows."""

    def __init__(self, plan: MagicPlan, source: FactSource) -> None:
        self.plan = plan
        self.source = source
        self.total: dict[Key, set[Row]] = {}
        self.worklist: deque[tuple[Key, Row]] = deque()
        #: key -> [(rule, body position)] for stored (magic/idb) atoms.
        self.watchers: dict[Key, list[tuple[DemandRule, int]]] = {}
        for rule in plan.rules:
            for i, atom in enumerate(rule.body):
                if atom.kind != "edb":
                    self.watchers.setdefault(atom.key, []).append((rule, i))
        self.rows_derived = 0
        self.rows_fetched = 0
        self.firings = 0

    def run(self) -> set[Row]:
        obs = get_instrumentation()
        goal = self.plan.goal
        with obs.span(
            "query.demand",
            goal=goal.predicate,
            adornment=self.plan.adornment or "()",
            rules=len(self.plan.rules),
        ):
            self._add(("magic", goal.predicate, self.plan.adornment), self.plan.seed)
            while self.worklist:
                key, row = self.worklist.popleft()
                if key[0] == "magic" and key[1] in self.plan.bridged:
                    self._bridge(key, row)
                for rule, position in self.watchers.get(key, ()):
                    self._fire(rule, position, row)
        if obs.enabled:
            obs.count("query.demand.rows", self.rows_derived)
            obs.count("query.demand.fetched", self.rows_fetched)
        ctx = current_trace()
        if ctx is not None:
            ctx.add_cost(
                demand_rows=self.rows_derived,
                demand_fetched=self.rows_fetched,
                demand_firings=self.firings,
            )
        return self.total.get(self.plan.answer_key, set())

    # -- derivation ----------------------------------------------------

    def _add(self, key: Key, row: Row) -> None:
        rows = self.total.setdefault(key, set())
        if row in rows:
            return
        rows.add(row)
        self.rows_derived += 1
        self.worklist.append((key, row))

    def _bridge(self, key: Key, row: Row) -> None:
        """Pull source rows matching a magic row into the answer set."""
        _, predicate, adornment = key
        arity = self.source.arity(predicate)
        if arity is None or arity != len(adornment):
            return
        bound = iter(row)
        pattern: list[Optional[Term]] = [
            next(bound) if b == "b" else None for b in adornment
        ]
        for fetched in self.source.fetch(predicate, pattern):
            self.rows_fetched += 1
            self._add(("idb", predicate, adornment), fetched)

    def _fire(self, rule: DemandRule, position: int, row: Row) -> None:
        theta: dict[Variable, Term] = {}
        if not _match_args(rule.body[position].args, row, theta):
            return
        self.firings += 1
        self._extend(rule, 0, position, theta)

    def _extend(
        self,
        rule: DemandRule,
        position: int,
        skip: int,
        theta: dict[Variable, Term],
    ) -> None:
        """Join the remaining body positions (sips order), then emit."""
        if position == len(rule.body):
            self._emit(rule, theta)
            return
        if position == skip:
            self._extend(rule, position + 1, skip, theta)
            return
        atom = rule.body[position]
        if atom.kind == "edb":
            if self.source.arity(atom.predicate) != len(atom.args):
                return
            pattern: list[Optional[Term]] = []
            for arg in atom.args:
                value = _subst(arg, theta)
                pattern.append(value if value.is_ground else None)
            for fetched in self.source.fetch(atom.predicate, pattern):
                self.rows_fetched += 1
                extended = dict(theta)
                if _match_args(atom.args, fetched, extended):
                    self._extend(rule, position + 1, skip, extended)
        else:
            for candidate in tuple(self.total.get(atom.key, ())):
                extended = dict(theta)
                if _match_args(atom.args, candidate, extended):
                    self._extend(rule, position + 1, skip, extended)

    def _emit(self, rule: DemandRule, theta: dict[Variable, Term]) -> None:
        for guard in rule.guards:
            try:
                if not guard.holds(theta):
                    return
            except Exception:
                # Mirrors the grounder and the bottom-up engine: a guard
                # that cannot be evaluated drops the instance.
                return
        head = tuple(_subst(a, theta) for a in rule.head_args)
        if any(not t.is_ground for t in head):
            return
        self._add(rule.head_key, head)
