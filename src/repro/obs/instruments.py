"""Metric primitives: counters, gauges, histograms and timed spans.

These are deliberately tiny mutable objects — the registry hands out at
most one instance per name, and the hot paths mostly accumulate into
plain local integers and flush once per phase, so the per-instrument
cost only matters at flush granularity.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .registry import Instrumentation

__all__ = ["Counter", "Gauge", "Histogram", "SpanStats", "Span"]


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A last-write-wins numeric level."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Streaming summary of observed values (count/sum/min/max/mean).

    A fixed-size summary rather than stored samples: benchmarks observe
    one value per fixpoint stage or per search leaf, and keeping raw
    samples would make long runs O(observations) in memory.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return f"Histogram({self.name}: n={self.count} mean={self.mean:.3g})"


class SpanStats(Histogram):
    """Per-span-path timing summary; values are seconds."""

    __slots__ = ()


class Span:
    """A nestable timed region.

    Spans stack per registry: entering ``fixpoint`` inside ``run``
    records its timing under the dotted path ``run.fixpoint``, so the
    report shows where parent time went.  Use only as a context
    manager.
    """

    __slots__ = ("_registry", "name", "fields", "path", "duration", "_start")

    def __init__(self, registry: "Instrumentation", name: str, fields: dict) -> None:
        self._registry = registry
        self.name = name
        self.fields = fields
        self.path = name
        self.duration: Optional[float] = None
        self._start = 0.0

    def __enter__(self) -> "Span":
        self.path = self._registry._push_span(self.name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration = time.perf_counter() - self._start
        self._registry._pop_span(self, failed=exc_type is not None)


class _NullSpan:
    """Shared do-nothing span returned while instrumentation is off."""

    __slots__ = ()
    name = ""
    path = ""
    fields: dict = {}
    duration = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


NULL_SPAN = _NullSpan()
