"""Metric primitives: counters, gauges, histograms and timed spans.

These are deliberately tiny mutable objects — the registry hands out at
most one instance per name, and the hot paths mostly accumulate into
plain local integers and flush once per phase, so the per-instrument
cost only matters at flush granularity.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from typing import TYPE_CHECKING, Optional, Sequence

from .trace import SpanNode, current_trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .registry import Instrumentation

__all__ = ["Counter", "Gauge", "Histogram", "SpanStats", "Span", "DEFAULT_BUCKETS"]

#: Geometric 1–2.5–5 ladder from 1µ to 500k: wide enough that one
#: default covers both second-scale latencies and count-scale deltas.
DEFAULT_BUCKETS: tuple[float, ...] = tuple(
    base * scale
    for scale in (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 1e3, 1e4, 1e5)
    for base in (1.0, 2.5, 5.0)
)


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A last-write-wins numeric level."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Bucketed streaming summary of observed values.

    A fixed-size summary rather than stored samples: benchmarks observe
    one value per fixpoint stage or per search leaf, and keeping raw
    samples would make long runs O(observations) in memory.  Explicit
    cumulative bucket boundaries (Prometheus ``le`` semantics: bucket
    *i* counts values ``<= buckets[i]``, plus one overflow bucket) make
    the exposition format and honest p50/p95/p99 estimates possible.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets", "bucket_counts")

    def __init__(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets: tuple[float, ...] = (
            buckets if buckets is DEFAULT_BUCKETS else tuple(sorted(buckets))
        )
        self.bucket_counts = [0] * (len(self.buckets) + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self.bucket_counts[bisect_left(self.buckets, value)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the q-quantile (0 <= q <= 1) from the buckets.

        Linear interpolation within the bucket holding the target rank,
        clamped to the observed [min, max] — the standard Prometheus
        ``histogram_quantile`` estimate, but tightened by the exact
        extremes the summary also tracks.
        """
        if not self.count:
            return 0.0
        assert self.min is not None and self.max is not None
        target = q * self.count
        cumulative = 0
        for i, boundary in enumerate(self.buckets):
            in_bucket = self.bucket_counts[i]
            if not in_bucket:
                continue
            if cumulative + in_bucket >= target:
                lower = self.buckets[i - 1] if i else 0.0
                fraction = (target - cumulative) / in_bucket
                estimate = lower + (boundary - lower) * fraction
                return min(max(estimate, self.min), self.max)
            cumulative += in_bucket
        return self.max  # target rank sits in the overflow bucket

    def bucket_pairs(self) -> list[tuple[Optional[float], int]]:
        """Non-empty ``(le, cumulative_count)`` pairs, ending with the
        ``(None, count)`` overflow (+Inf) bucket."""
        pairs: list[tuple[Optional[float], int]] = []
        cumulative = 0
        for boundary, in_bucket in zip(self.buckets, self.bucket_counts):
            if in_bucket:
                cumulative += in_bucket
                pairs.append((boundary, cumulative))
        pairs.append((None, self.count))
        return pairs

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "buckets": [[le, n] for le, n in self.bucket_pairs()],
        }

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return f"Histogram({self.name}: n={self.count} mean={self.mean:.3g})"


class SpanStats(Histogram):
    """Per-span-path timing summary; values are seconds."""

    __slots__ = ()


class Span:
    """A nestable timed region.

    Spans stack per registry: entering ``fixpoint`` inside ``run``
    records its timing under the dotted path ``run.fixpoint``, so the
    report shows where parent time went.  When a trace context is
    active (:func:`repro.obs.trace.current_trace`), the same timing is
    also attached as a node of that request's span tree.  Use only as a
    context manager.
    """

    __slots__ = (
        "_registry",
        "name",
        "fields",
        "path",
        "duration",
        "_start",
        "_trace_node",
    )

    def __init__(self, registry: "Instrumentation", name: str, fields: dict) -> None:
        self._registry = registry
        self.name = name
        self.fields = fields
        self.path = name
        self.duration: Optional[float] = None
        self._start = 0.0
        self._trace_node: Optional[SpanNode] = None

    def __enter__(self) -> "Span":
        self.path = self._registry._push_span(self.name)
        ctx = current_trace()
        if ctx is not None:
            node = SpanNode(ctx, self.name, self.fields)
            ctx._attach(node)
            self._trace_node = node
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration = time.perf_counter() - self._start
        node = self._trace_node
        if node is not None:
            node.finish(self.duration)
            self._trace_node = None
        self._registry._pop_span(self, failed=exc_type is not None)


class _NullSpan:
    """Shared do-nothing span returned while instrumentation is off."""

    __slots__ = ()
    name = ""
    path = ""
    fields: dict = {}
    duration = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


NULL_SPAN = _NullSpan()
