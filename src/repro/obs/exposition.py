"""Prometheus text-format exposition of instrumentation state.

Renders counters, gauges, histograms (with explicit ``le`` buckets) and
span statistics in the `text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ that
every scraper understands, without depending on a client library.

Two layers:

* :class:`PrometheusWriter` — a tiny line builder that tracks
  ``# TYPE`` headers per metric family, escapes label values and
  formats ``+Inf`` buckets;
* :func:`write_registry` / :func:`render_registry` — dump one
  :class:`~repro.obs.registry.Instrumentation` registry: counters as
  ``repro_<name>_total``, gauges and histograms under ``repro_<name>``,
  span statistics as one ``repro_span_duration_seconds`` family with a
  ``path`` label.

The server's ``metrics`` protocol op and the ``olp serve
--metrics-port`` HTTP sidecar combine this with the engine's always-on
serving metrics (``ServerEngine.exposition``).
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING, Optional

from .instruments import Histogram

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .registry import Instrumentation

__all__ = [
    "CONTENT_TYPE",
    "PrometheusWriter",
    "sanitize_metric_name",
    "write_registry",
    "render_registry",
]

#: The content type scrapers expect from a ``/metrics`` endpoint.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str) -> str:
    """Dots (and anything else illegal) become underscores."""
    name = _INVALID.sub("_", name)
    if name and name[0].isdigit():
        name = "_" + name
    return name


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class PrometheusWriter:
    """Accumulates exposition lines; one ``# TYPE`` header per family."""

    def __init__(self) -> None:
        self._lines: list[str] = []
        self._typed: dict[str, str] = {}

    def _header(self, family: str, kind: str, help: Optional[str] = None) -> None:
        seen = self._typed.get(family)
        if seen is None:
            self._typed[family] = kind
            if help:
                escaped = help.replace("\\", "\\\\").replace("\n", "\\n")
                self._lines.append(f"# HELP {family} {escaped}")
            self._lines.append(f"# TYPE {family} {kind}")
        elif seen != kind:  # pragma: no cover - caller bug guard
            raise ValueError(f"metric family {family!r} is both {seen} and {kind}")

    def _labelled(self, name: str, labels: Optional[dict]) -> str:
        if not labels:
            return name
        rendered = ",".join(
            f'{sanitize_metric_name(k)}="{_escape_label(v)}"'
            for k, v in sorted(labels.items())
        )
        return f"{name}{{{rendered}}}"

    def counter(
        self,
        name: str,
        value: float,
        labels: Optional[dict] = None,
        help: Optional[str] = None,
    ) -> None:
        self._header(name, "counter", help)
        self._lines.append(f"{self._labelled(name, labels)} {_format_value(value)}")

    def gauge(
        self,
        name: str,
        value: float,
        labels: Optional[dict] = None,
        help: Optional[str] = None,
    ) -> None:
        self._header(name, "gauge", help)
        self._lines.append(f"{self._labelled(name, labels)} {_format_value(value)}")

    def histogram(
        self,
        name: str,
        hist: Histogram,
        labels: Optional[dict] = None,
        help: Optional[str] = None,
    ) -> None:
        """``name_bucket{le=...}`` cumulative series plus sum/count."""
        self._header(name, "histogram", help)
        base = dict(labels or {})
        for le, cumulative in hist.bucket_pairs():
            bucket_labels = dict(base)
            bucket_labels["le"] = (
                "+Inf" if le is None else _format_value(le)
            )
            self._lines.append(
                f"{self._labelled(name + '_bucket', bucket_labels)} {cumulative}"
            )
        self._lines.append(
            f"{self._labelled(name + '_sum', base or None)} "
            f"{_format_value(hist.total)}"
        )
        self._lines.append(
            f"{self._labelled(name + '_count', base or None)} {hist.count}"
        )

    def render(self) -> str:
        return "\n".join(self._lines) + ("\n" if self._lines else "")


def write_registry(
    writer: PrometheusWriter, obs: "Instrumentation", prefix: str = "repro_"
) -> None:
    """Append every registry instrument to an existing writer."""
    for name, counter in sorted(obs._counters.items()):
        metric = prefix + sanitize_metric_name(name)
        if not metric.endswith("_total"):
            metric += "_total"
        writer.counter(metric, counter.value)
    for name, gauge in sorted(obs._gauges.items()):
        writer.gauge(prefix + sanitize_metric_name(name), gauge.value)
    for name, hist in sorted(obs._histograms.items()):
        writer.histogram(prefix + sanitize_metric_name(name), hist)
    for path, stats in sorted(obs._spans.items()):
        writer.histogram(
            prefix + "span_duration_seconds", stats, labels={"path": path}
        )


def render_registry(obs: "Instrumentation", prefix: str = "repro_") -> str:
    """The whole registry as one exposition document."""
    writer = PrometheusWriter()
    write_registry(writer, obs, prefix)
    return writer.render()
