"""The structured event stream: events, severity levels and sinks.

An :class:`Event` is a named, levelled bag of scalar fields stamped
with a wall-clock time, a per-registry sequence number and the dotted
path of the span it occurred in.  Sinks receive every event at or above
their ``min_level``:

* :class:`RingBufferSink` — keep the last N events in memory (tests,
  the REPL, post-mortem inspection);
* :class:`TextSink` — one human-readable line per event to a stream
  (the CLI's ``-v`` / ``-vv``);
* :class:`JsonLinesSink` — one JSON object per line to a file or
  stream, for machine consumption.
"""

from __future__ import annotations

import json
import sys
import time
from collections import deque
from dataclasses import dataclass, field
from enum import IntEnum
from typing import IO, Iterator, Optional, Union

__all__ = ["Level", "Event", "Sink", "RingBufferSink", "TextSink", "JsonLinesSink"]


class Level(IntEnum):
    """Event severity; sinks filter on it."""

    DEBUG = 10
    INFO = 20
    WARN = 30
    ERROR = 40

    @classmethod
    def from_verbosity(cls, verbose: int, quiet: bool = False) -> Optional["Level"]:
        """Map CLI flags to a sink threshold.

        ``--quiet`` suppresses the sink entirely (None); the default is
        WARN, ``-v`` is INFO, ``-vv`` (or more) is DEBUG.
        """
        if quiet:
            return None
        if verbose <= 0:
            return cls.WARN
        if verbose == 1:
            return cls.INFO
        return cls.DEBUG


@dataclass(frozen=True)
class Event:
    """One structured event.

    Attributes:
        name: dotted event name, e.g. ``fixpoint.stage``.
        level: severity.
        fields: scalar payload (str/int/float/bool values).
        timestamp: wall-clock seconds since the epoch.
        seq: per-registry monotonically increasing sequence number.
        span: dotted path of the enclosing span ("" at top level).
    """

    name: str
    level: Level
    fields: dict = field(default_factory=dict)
    timestamp: float = 0.0
    seq: int = 0
    span: str = ""

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "level": self.level.name,
            "ts": self.timestamp,
            "seq": self.seq,
            "span": self.span,
            **self.fields,
        }

    def render(self) -> str:
        parts = [f"{self.level.name:5s}", self.name]
        if self.span:
            parts.append(f"[{self.span}]")
        parts.extend(f"{k}={v}" for k, v in self.fields.items())
        return " ".join(parts)

    def __str__(self) -> str:
        return self.render()


class Sink:
    """Base sink: receives events at or above ``min_level``."""

    min_level: Level = Level.DEBUG

    def accepts(self, event: Event) -> bool:
        return event.level >= self.min_level

    def emit(self, event: Event) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources; the base sink holds none."""


class RingBufferSink(Sink):
    """Keep the most recent ``capacity`` events in memory."""

    def __init__(self, capacity: int = 1024, min_level: Level = Level.DEBUG) -> None:
        self.min_level = min_level
        self._buffer: deque[Event] = deque(maxlen=capacity)

    def emit(self, event: Event) -> None:
        self._buffer.append(event)

    @property
    def events(self) -> list[Event]:
        return list(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._buffer)

    def clear(self) -> None:
        self._buffer.clear()


class TextSink(Sink):
    """One ``LEVEL name [span] k=v ...`` line per event."""

    def __init__(
        self, stream: Optional[IO[str]] = None, min_level: Level = Level.INFO
    ) -> None:
        self.min_level = min_level
        self._stream = stream if stream is not None else sys.stderr

    def emit(self, event: Event) -> None:
        print(event.render(), file=self._stream)


class JsonLinesSink(Sink):
    """One JSON object per line, to a path (opened lazily) or stream."""

    def __init__(
        self,
        target: Union[str, IO[str]],
        min_level: Level = Level.DEBUG,
    ) -> None:
        self.min_level = min_level
        self._path: Optional[str] = target if isinstance(target, str) else None
        self._stream: Optional[IO[str]] = None if isinstance(target, str) else target
        self._owns_stream = isinstance(target, str)

    def emit(self, event: Event) -> None:
        if self._stream is None:
            # The sink owns the handle; close() manages its lifetime.
            self._stream = open(self._path, "a", encoding="utf-8")  # noqa: SIM115
        self._stream.write(json.dumps(event.as_dict(), sort_keys=True) + "\n")

    def close(self) -> None:
        if self._owns_stream and self._stream is not None:
            self._stream.close()
            self._stream = None


def make_event(
    name: str,
    level: Level,
    fields: dict,
    seq: int,
    span: str,
) -> Event:
    """Stamp an event with the current wall-clock time."""
    return Event(
        name=name,
        level=level,
        fields=fields,
        timestamp=time.time(),
        seq=seq,
        span=span,
    )
