"""Rendering a metrics snapshot as a human-readable report.

The CLI's ``--metrics`` flag and the ``olp profile`` subcommand both
print :func:`render_report` over ``Instrumentation.snapshot()``; the
``--json`` variants emit the snapshot dict itself.
"""

from __future__ import annotations

__all__ = ["render_report"]


def _fmt_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:.3f}s"
    if value >= 0.001:
        return f"{value * 1000:.2f}ms"
    return f"{value * 1_000_000:.0f}us"


def render_report(snapshot: dict, title: str = "metrics") -> str:
    """A sectioned text report: spans, counters, gauges, histograms."""
    lines = [f"== {title} =="]
    spans = snapshot.get("spans", {})
    if spans:
        lines.append("spans (path / calls / total / mean):")
        width = max(len(path) for path in spans)
        for path, stats in spans.items():
            lines.append(
                f"  {path:<{width}}  {stats['count']:>6}  "
                f"{_fmt_seconds(stats['sum']):>10}  "
                f"{_fmt_seconds(stats['mean']):>10}"
            )
    counters = snapshot.get("counters", {})
    if counters:
        lines.append("counters:")
        width = max(len(name) for name in counters)
        for name, value in counters.items():
            lines.append(f"  {name:<{width}}  {value:>10}")
    gauges = snapshot.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        width = max(len(name) for name in gauges)
        for name, value in gauges.items():
            rendered = f"{value:g}"
            lines.append(f"  {name:<{width}}  {rendered:>10}")
    histograms = snapshot.get("histograms", {})
    if histograms:
        lines.append("histograms (name / n / min / mean / max):")
        width = max(len(name) for name in histograms)
        for name, stats in histograms.items():
            lines.append(
                f"  {name:<{width}}  {stats['count']:>6}  "
                f"{stats['min']:>8g}  {stats['mean']:>8.3g}  {stats['max']:>8g}"
            )
    if len(lines) == 1:
        lines.append("(no metrics recorded)")
    return "\n".join(lines)
