"""Observability: structured events, counters, gauges, histograms and
nestable timed spans for the whole engine.

The subsystem is built around one process-wide
:class:`~repro.obs.registry.Instrumentation` registry, reached with
:func:`get_instrumentation`.  It is **disabled by default**: every
``count`` / ``event`` / ``span`` call on a disabled registry is a single
attribute check, so instrumented hot paths (grounding, the ``V``
fixpoint, model search) stay within noise of their uninstrumented
speed.

Enable it explicitly::

    from repro.obs import get_instrumentation, instrumented

    with instrumented() as obs:          # enable + reset, restore after
        sem.least_model
        print(obs.snapshot()["counters"]["fixpoint.stages"])

Events flow to pluggable sinks (:class:`RingBufferSink`,
:class:`TextSink`, :class:`JsonLinesSink`), each with its own minimum
:class:`Level`.  ``docs/observability.md`` lists the metric names and
the event schema.
"""

from .events import Event, JsonLinesSink, Level, RingBufferSink, Sink, TextSink
from .exposition import CONTENT_TYPE, PrometheusWriter, render_registry, write_registry
from .instruments import DEFAULT_BUCKETS, Counter, Gauge, Histogram, Span, SpanStats
from .registry import Instrumentation, get_instrumentation, instrumented
from .report import render_report
from .trace import SpanNode, TraceContext, current_trace, new_trace_id, trace

__all__ = [
    "Level",
    "Event",
    "Sink",
    "RingBufferSink",
    "TextSink",
    "JsonLinesSink",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "Span",
    "SpanStats",
    "SpanNode",
    "TraceContext",
    "current_trace",
    "new_trace_id",
    "trace",
    "CONTENT_TYPE",
    "PrometheusWriter",
    "write_registry",
    "render_registry",
    "Instrumentation",
    "get_instrumentation",
    "instrumented",
    "render_report",
]
