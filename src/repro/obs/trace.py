"""Request-scoped trace contexts: follow one request through the engine.

A :class:`TraceContext` carries a trace id, an optional parent span id
and string baggage through :mod:`contextvars`, so it survives ``await``
boundaries and can be re-activated on a different task (the server's
single-writer pipeline applies a mutation on the writer task while the
request waits on the admitting task).

While a context is active, every :meth:`Instrumentation.span
<repro.obs.registry.Instrumentation.span>` call in the engine attaches
a :class:`SpanNode` to the context's span tree — with the registry
*enabled or disabled*.  A disabled registry with no active trace stays
the zero-cost path (one attribute check plus one contextvar read).

Besides timed spans, a context accumulates a flat *cost digest*
(:meth:`TraceContext.add_cost`): the fixpoint and maintenance engines
deposit semantic work counters (rules fired, literals derived/deleted,
frontier sizes) so a slow request can be attributed to the rules that
made it slow, not just to wall-clock phases.  ``docs/observability.md``
documents the wire schema of :meth:`TraceContext.summary`.
"""

from __future__ import annotations

import contextvars
import os
import time
from typing import Any, Iterator, Optional

__all__ = [
    "SpanNode",
    "TraceContext",
    "current_trace",
    "new_trace_id",
    "trace",
]

_ACTIVE: contextvars.ContextVar[Optional["TraceContext"]] = contextvars.ContextVar(
    "repro_trace", default=None
)


def current_trace() -> Optional["TraceContext"]:
    """The trace context active on this task, or None."""
    return _ACTIVE.get()


def new_trace_id() -> str:
    """A fresh 16-hex-digit trace id.

    ``os.urandom`` directly — building a ``uuid.UUID`` costs several
    microseconds per request on the traced read path for no extra
    entropy in a 64-bit id.
    """
    return os.urandom(8).hex()


_SCALARS = (str, int, float, bool)


def _scalar(value: Any) -> Any:
    return value if isinstance(value, _SCALARS) else str(value)


class SpanNode:
    """One node of a trace's span tree.

    Usable as a context manager (the trace-only path when the registry
    is disabled); the registry's own :class:`~repro.obs.instruments.Span`
    drives :meth:`finish` instead, sharing one ``perf_counter`` pair
    between the statistics and the tree.
    """

    __slots__ = ("_ctx", "name", "fields", "duration", "children", "_start")

    #: Dotted-path compatibility with ``Span``/``NULL_SPAN``.
    path = ""

    def __init__(self, ctx: "TraceContext", name: str, fields: dict) -> None:
        self._ctx = ctx
        self.name = name
        self.fields = fields
        self.duration: Optional[float] = None
        self.children: list["SpanNode"] = []
        self._start = 0.0

    def finish(self, duration: float) -> None:
        """Close a node opened via ``TraceContext._attach`` (bridge path)."""
        self.duration = duration
        self._ctx._pop(self)

    def __enter__(self) -> "SpanNode":
        self._ctx._attach(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.finish(time.perf_counter() - self._start)

    def to_dict(self) -> dict:
        """JSON-ready node: name, duration_ms, fields, children."""
        payload: dict[str, Any] = {
            "name": self.name,
            "duration_ms": round((self.duration or 0.0) * 1000.0, 4),
        }
        if self.fields:
            # Inline scalar check: a per-field function call is
            # measurable on the traced read path.
            payload["fields"] = {
                k: v if v.__class__ in _SCALARS else _scalar(v)
                for k, v in self.fields.items()
            }
        if self.children:
            payload["children"] = [c.to_dict() for c in self.children]
        return payload


class _Activation:
    """Context manager making one trace the task's active context."""

    __slots__ = ("_ctx", "_token")

    def __init__(self, ctx: "TraceContext") -> None:
        self._ctx = ctx
        self._token: Optional[contextvars.Token] = None

    def __enter__(self) -> "TraceContext":
        self._token = _ACTIVE.set(self._ctx)
        return self._ctx

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._token is not None:
            _ACTIVE.reset(self._token)
            self._token = None


class TraceContext:
    """One request's trace: id, baggage, span tree and cost digest.

    The context itself is *passive* — it only collects spans while made
    active on the current task via :meth:`activate` (or the module-level
    :func:`trace` helper).  It may be activated on several tasks in
    turn; the server activates a write's context again on the writer
    task so pipeline spans join the same tree.
    """

    __slots__ = ("trace_id", "parent_span_id", "baggage", "root", "_stack", "costs")

    def __init__(
        self,
        trace_id: Optional[str] = None,
        parent_span_id: Optional[str] = None,
        baggage: Optional[dict] = None,
        name: str = "request",
        **fields: Any,
    ) -> None:
        self.trace_id = trace_id if trace_id else new_trace_id()
        self.parent_span_id = parent_span_id
        self.baggage: dict[str, str] = dict(baggage or {})
        self.root = SpanNode(self, name, fields)
        self.root._start = time.perf_counter()
        self._stack: list[SpanNode] = [self.root]
        self.costs: dict[str, float] = {}

    # ------------------------------------------------------------------
    # Span tree
    # ------------------------------------------------------------------
    def span(self, name: str, **fields: Any) -> SpanNode:
        """A timed child span; attach by entering the returned node."""
        return SpanNode(self, name, fields)

    def _attach(self, node: SpanNode) -> None:
        self._stack[-1].children.append(node)
        self._stack.append(node)

    def _pop(self, node: SpanNode) -> None:
        if len(self._stack) > 1 and self._stack[-1] is node:
            self._stack.pop()

    def record(self, name: str, duration: float, **fields: Any) -> SpanNode:
        """Append an already-measured span (e.g. queue wait timed by the
        admitting task) as a completed child of the current span."""
        node = SpanNode(self, name, fields)
        node.duration = duration
        self._stack[-1].children.append(node)
        return node

    def close(self) -> None:
        """Fix the root span's duration (idempotent once closed)."""
        if self.root.duration is None:
            self.root.duration = time.perf_counter() - self.root._start

    # ------------------------------------------------------------------
    # Attribution
    # ------------------------------------------------------------------
    def add_cost(self, **counts: float) -> None:
        """Accumulate semantic-work counters into the cost digest."""
        costs = self.costs
        for key, value in counts.items():
            costs[key] = costs.get(key, 0) + value

    def annotate(self, **fields: Any) -> None:
        """Set fields on the root span (batch version, view, ...)."""
        self.root.fields.update(fields)

    # ------------------------------------------------------------------
    # Activation and wire format
    # ------------------------------------------------------------------
    def activate(self) -> _Activation:
        """Make this the active context of the current task (scoped)."""
        return _Activation(self)

    def summary(self) -> dict:
        """The JSON-ready span-tree summary echoed in server replies."""
        self.close()
        payload: dict[str, Any] = {
            "trace_id": self.trace_id,
            "spans": self.root.to_dict(),
        }
        if self.parent_span_id is not None:
            payload["parent_span_id"] = self.parent_span_id
        if self.baggage:
            payload["baggage"] = dict(self.baggage)
        if self.costs:
            payload["costs"] = dict(self.costs)
        return payload


def trace(
    name: str = "request",
    trace_id: Optional[str] = None,
    baggage: Optional[dict] = None,
    **fields: Any,
) -> Iterator[TraceContext]:
    """``with trace("load") as ctx: ...`` — build and activate in one go."""
    from contextlib import contextmanager

    @contextmanager
    def _run() -> Iterator[TraceContext]:
        ctx = TraceContext(trace_id=trace_id, baggage=baggage, name=name, **fields)
        with ctx.activate():
            yield ctx
        ctx.close()

    return _run()
