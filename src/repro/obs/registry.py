"""The process-wide instrumentation registry.

One :class:`Instrumentation` instance owns all counters, gauges,
histograms, span statistics and event sinks.  Library code reaches the
shared instance through :func:`get_instrumentation` and guards every
record with ``obs.enabled`` (or relies on ``count``/``event``/``span``
short-circuiting), so a disabled registry costs a single attribute
check on the hot paths.

Tests and the CLI use :func:`instrumented` to enable the registry for a
scoped region and restore the previous state afterwards.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, Optional

from .events import Event, Level, Sink, make_event
from .instruments import NULL_SPAN, Counter, Gauge, Histogram, Span, SpanStats
from .trace import current_trace

__all__ = ["Instrumentation", "get_instrumentation", "instrumented"]


class Instrumentation:
    """Registry of metrics and event sinks.

    Attributes:
        enabled: master switch.  While False, ``count``, ``gauge``,
            ``observe``, ``event`` are no-ops and ``span`` returns a
            shared null span.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._spans: dict[str, SpanStats] = {}
        self._sinks: list[Sink] = []
        self._seq = 0
        self._local = threading.local()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop all recorded metrics (sinks stay attached)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._spans.clear()
        self._seq = 0

    # ------------------------------------------------------------------
    # Sinks
    # ------------------------------------------------------------------
    def add_sink(self, sink: Sink) -> Sink:
        self._sinks.append(sink)
        return sink

    def remove_sink(self, sink: Sink) -> None:
        if sink in self._sinks:
            self._sinks.remove(sink)
        sink.close()

    @property
    def sinks(self) -> tuple[Sink, ...]:
        return tuple(self._sinks)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def count(self, name: str, n: int = 1) -> None:
        """Increment a counter (no-op while disabled or ``n == 0``)."""
        if not self.enabled or not n:
            return
        self.counter(name).inc(n)

    def gauge(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        g.set(value)

    def observe(self, name: str, value: float) -> None:
        """Record one histogram observation (no-op while disabled)."""
        if not self.enabled:
            return
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name)
        h.observe(value)

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    def span(self, name: str, **fields):
        """A timed context manager, nested under the current span.

        While the registry is disabled the span still attaches to the
        active :class:`~repro.obs.trace.TraceContext` (if any), so
        request tracing works without turning global metrics on; with
        neither enabled this stays the shared zero-cost null span.
        """
        if not self.enabled:
            ctx = current_trace()
            if ctx is None:
                return NULL_SPAN
            return ctx.span(name, **fields)
        return Span(self, name, fields)

    def _stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_span_path(self) -> str:
        stack = self._stack()
        return stack[-1] if stack else ""

    def _push_span(self, name: str) -> str:
        stack = self._stack()
        path = f"{stack[-1]}.{name}" if stack else name
        stack.append(path)
        return path

    def _pop_span(self, span: Span, failed: bool) -> None:
        stack = self._stack()
        if stack and stack[-1] == span.path:
            stack.pop()
        stats = self._spans.get(span.path)
        if stats is None:
            stats = self._spans[span.path] = SpanStats(span.path)
        stats.observe(span.duration or 0.0)
        self.event(
            "span.end",
            Level.DEBUG,
            span_name=span.name,
            duration_s=round(span.duration or 0.0, 6),
            failed=failed,
            **span.fields,
        )

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------
    def event(self, name: str, level: Level = Level.INFO, **fields) -> Optional[Event]:
        """Emit a structured event to every accepting sink.

        Returns the event (for tests), or None while disabled.
        """
        if not self.enabled:
            return None
        self._seq += 1
        evt = make_event(name, level, fields, self._seq, self.current_span_path())
        for sink in self._sinks:
            if sink.accepts(evt):
                sink.emit(evt)
        return evt

    # ------------------------------------------------------------------
    # Snapshot
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """All recorded metrics as a JSON-ready dict."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.as_dict() for n, h in sorted(self._histograms.items())
            },
            "spans": {n: s.as_dict() for n, s in sorted(self._spans.items())},
        }


_GLOBAL = Instrumentation()


def get_instrumentation() -> Instrumentation:
    """The process-wide registry used by all library call sites."""
    return _GLOBAL


@contextmanager
def instrumented(
    *sinks: Sink, reset: bool = True
) -> Iterator[Instrumentation]:
    """Enable the global registry for a scoped region.

    Attaches the given sinks, optionally resets metrics on entry, and
    restores the previous enabled state (detaching the sinks) on exit.
    """
    obs = get_instrumentation()
    was_enabled = obs.enabled
    if reset:
        obs.reset()
    for sink in sinks:
        obs.add_sink(sink)
    obs.enable()
    try:
        yield obs
    finally:
        obs.enabled = was_enabled
        for sink in sinks:
            obs.remove_sink(sink)
