"""The facade tying the ordered semantics together.

:class:`OrderedSemantics` fixes a program and a component, grounds
``C*`` once, and exposes every notion of Sections 2: statuses, the
``V_{P,C}`` transformation and the least model, Definition-3 model
checking, assumption analysis, and model / AF-model / stable-model
enumeration.

>>> from repro.workloads.paper import figure1
>>> sem = OrderedSemantics(figure1(), "c1")
>>> sem.holds("fly(pigeon)")
True
>>> sem.holds("-fly(penguin)")
True
"""

from __future__ import annotations

from functools import cached_property
from typing import Iterable, Optional, Union

from ..grounding.grounder import Grounder, GroundingOptions, GroundProgram
from ..lang.errors import SemanticsError
from ..lang.literals import Literal
from ..lang.program import OrderedProgram
from ..obs import get_instrumentation
from .assumptions import AssumptionAnalyzer
from .interpretation import Interpretation, TruthValue
from .models import ModelChecker
from .solver import ModelEnumerator, SearchBudget
from .statuses import ComponentOrder, StatusEvaluator, StatusReport
from .transform import (
    AUTO_STRATEGY,
    CLASSICAL_STRATEGY,
    OrderedTransform,
    engine_strategy,
    validate_semantics_strategy,
)

__all__ = ["OrderedSemantics"]


class OrderedSemantics:
    """The meaning of an ordered program in one of its components.

    Args:
        program: the ordered program ``P``.
        component: the component ``C`` whose point of view is taken.
        grounding: grounder options (depth bounds etc.).
        budget: search budget for the enumeration methods.
        strategy: fixpoint evaluation strategy — ``"auto"`` (default:
            route single-component stratified seminegative views to the
            classical stratified backend, otherwise run the semi-naive
            engine), ``"classical"`` (require routing; raises
            :class:`SemanticsError` on ineligible views), or the engine
            escape hatches ``"seminaive"`` / ``"naive"`` which disable
            routing entirely.  See ``docs/analysis.md`` and
            ``docs/evaluation.md``.
    """

    def __init__(
        self,
        program: OrderedProgram,
        component: str,
        grounding: GroundingOptions = GroundingOptions(),
        budget: SearchBudget = SearchBudget(),
        strategy: str = AUTO_STRATEGY,
    ) -> None:
        if component not in program:
            raise SemanticsError(f"no component named {component!r}")
        self.program = program
        self.component = component
        self._grounding_options = grounding
        self._budget = budget
        self.strategy = validate_semantics_strategy(strategy)
        self._engine_strategy = engine_strategy(self.strategy)

    # ------------------------------------------------------------------
    # Grounding and shared machinery (built lazily, cached)
    # ------------------------------------------------------------------
    @cached_property
    def ground(self) -> GroundProgram:
        """``ground(C*)`` plus the Herbrand base of ``C*``."""
        return Grounder(self._grounding_options).ground_component_star(
            self.program, self.component
        )

    @cached_property
    def evaluator(self) -> StatusEvaluator:
        return StatusEvaluator(self.ground.rules, ComponentOrder(self.program.order))

    @cached_property
    def transform(self) -> OrderedTransform:
        return OrderedTransform(
            self.evaluator, self.ground.base, strategy=self._engine_strategy
        )

    @cached_property
    def checker(self) -> ModelChecker:
        return ModelChecker(self.evaluator, self.ground.base)

    @cached_property
    def assumptions(self) -> AssumptionAnalyzer:
        return AssumptionAnalyzer(self.evaluator, self.ground.base)

    @cached_property
    def enumerator(self) -> ModelEnumerator:
        return ModelEnumerator(
            self.evaluator,
            self.ground.base,
            self._budget,
            strategy=self._engine_strategy,
        )

    # ------------------------------------------------------------------
    # Interpretations
    # ------------------------------------------------------------------
    def interpretation(self, literals: Iterable[Union[Literal, str]]) -> Interpretation:
        """Build an interpretation over this component's base; literals
        may be given as strings in the surface syntax."""
        return Interpretation(
            tuple(self._coerce(l) for l in literals), self.ground.base
        )

    def _coerce(self, literal: Union[Literal, str]) -> Literal:
        if isinstance(literal, Literal):
            return literal
        from ..lang.parser import parse_literal

        return parse_literal(literal)

    # ------------------------------------------------------------------
    # Stratification routing (docs/analysis.md)
    # ------------------------------------------------------------------
    @cached_property
    def routing(self):
        """The :class:`~repro.analysis.static.ViewClassification` that
        justifies routing this view to the classical stratified backend,
        or None when the least model runs on the ordered engine.

        Raises:
            SemanticsError: under ``strategy="classical"`` when the view
                is not eligible.
        """
        if self.strategy not in (AUTO_STRATEGY, CLASSICAL_STRATEGY):
            return None
        from ..analysis.static import classify_view

        info = classify_view(self.program, self.component)
        if info.routable:
            return info
        if self.strategy == CLASSICAL_STRATEGY:
            raise SemanticsError(
                f"component {self.component!r} cannot be routed to the "
                f"classical stratified backend: {info.ineligibility}"
            )
        return None

    def _routed_least_model(self) -> Interpretation:
        """Least model of a routable view via the classical stratified
        backend.  Sound because a single-component seminegative view has
        no contradictions (hence no overruling/defeating) and negative
        body literals are never derivable, so ``V_{P,C}`` degenerates to
        the stratified Horn consequence operator."""
        from ..classical.stratified import stratified_least_model

        rules = tuple(
            r
            for comp in self.program.visible_components(self.component)
            for r in comp.rules
        )
        atoms = stratified_least_model(rules, self.ground.rules)
        return Interpretation(
            tuple(Literal(a, True) for a in atoms), self.ground.base
        )

    # ------------------------------------------------------------------
    # The least model and entailment
    # ------------------------------------------------------------------
    @cached_property
    def least_model(self) -> Interpretation:
        """``V↑ω(∅)`` — the least (assumption-free) model; Theorem 1(b).

        Computed by the classical stratified backend when the view is
        routable (see :attr:`routing`), by the configured fixpoint
        engine otherwise.
        """
        obs = get_instrumentation()
        routed = self.routing is not None
        with obs.span(
            "semantics.least_model", component=self.component, routed=routed
        ):
            if routed:
                obs.count("semantics.route.stratified")
                return self._routed_least_model()
            return self.transform.least_fixpoint()

    def value(self, literal: Union[Literal, str]) -> TruthValue:
        """The truth value of a ground literal in the least model."""
        return self.least_model.value(self._coerce(literal))

    def holds(self, literal: Union[Literal, str]) -> bool:
        """True when the literal is true in the least model (cautious,
        assumption-free entailment)."""
        return self.value(literal) is TruthValue.TRUE

    def undefined(self, literal: Union[Literal, str]) -> bool:
        """True when the least model leaves the literal undefined — e.g.
        after two experts defeat each other (Figure 2)."""
        return self.value(literal) is TruthValue.UNDEFINED

    # ------------------------------------------------------------------
    # Definition 2 statuses (diagnostics)
    # ------------------------------------------------------------------
    def statuses(
        self, interp: Optional[Interpretation] = None
    ) -> list[StatusReport]:
        """Status report of every ground rule under ``interp`` (defaults
        to the least model)."""
        interp = interp if interp is not None else self.least_model
        return list(self.evaluator.reports(interp))

    # ------------------------------------------------------------------
    # Model checking and enumeration
    # ------------------------------------------------------------------
    def is_model(self, interp: Interpretation) -> bool:
        return self.checker.is_model(interp)

    def is_assumption_free_model(self, interp: Interpretation) -> bool:
        return self.checker.is_model(interp) and self.assumptions.is_assumption_free(
            interp
        )

    def is_stable_model(self, interp: Interpretation) -> bool:
        """Stable = assumption-free and not properly contained in another
        assumption-free model (Definition 9)."""
        if not self.is_assumption_free_model(interp):
            return False
        return all(
            interp.literals == other.literals or not (interp.literals < other.literals)
            for other in self.assumption_free_models()
        )

    def models(self, limit: Optional[int] = None) -> list[Interpretation]:
        with get_instrumentation().span("semantics.models"):
            return self.enumerator.models(limit=limit)

    def total_models(self) -> list[Interpretation]:
        with get_instrumentation().span("semantics.total_models"):
            return self.enumerator.total_models()

    def exhaustive_models(self) -> list[Interpretation]:
        with get_instrumentation().span("semantics.exhaustive_models"):
            return self.enumerator.exhaustive_models()

    def assumption_free_models(
        self, limit: Optional[int] = None
    ) -> list[Interpretation]:
        with get_instrumentation().span("semantics.af_models"):
            return self.enumerator.assumption_free_models(limit=limit)

    def stable_models(self) -> list[Interpretation]:
        with get_instrumentation().span("semantics.stable_models"):
            return self.enumerator.stable_models()

    # ------------------------------------------------------------------
    # Consequence relations over the stable models
    # ------------------------------------------------------------------
    def skeptical_consequences(self) -> Interpretation:
        """The literals true in *every* stable model.

        Always a superset of the least model (which is contained in
        every AF model); the gap between the two measures how much the
        maximality of stable models decides beyond pure derivation.
        """
        stable = self.stable_models()
        literals = frozenset.intersection(*(m.literals for m in stable))
        return Interpretation(literals, self.ground.base)

    def credulous_consequences(self) -> Interpretation:
        """The literals true in *some* stable model.

        Note this union may be inconsistent as a set (different stable
        models choose differently); it is returned as a raw frozenset
        via :attr:`Interpretation.literals` semantics only when
        consistent — otherwise use :meth:`credulous_literals`.
        """
        return Interpretation(self.credulous_literals(), self.ground.base)

    def credulous_literals(self) -> frozenset[Literal]:
        """The union of all stable models' literal sets (possibly
        containing complementary pairs)."""
        stable = self.stable_models()
        result: frozenset[Literal] = frozenset()
        for m in stable:
            result |= m.literals
        return result

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """A short multi-line description of the component's meaning."""
        lm = self.least_model
        lines = [
            f"component {self.component}: {len(self.ground.rules)} ground rules, "
            f"base of {len(self.ground.base)} atoms",
            f"least model ({len(lm)} literals): {lm}",
            f"undefined atoms: {sorted(map(str, lm.undefined_atoms()))}",
        ]
        return "\n".join(lines)
