"""The facade tying the ordered semantics together.

:class:`OrderedSemantics` fixes a program and a component, grounds
``C*`` once, and exposes every notion of Sections 2: statuses, the
``V_{P,C}`` transformation and the least model, Definition-3 model
checking, assumption analysis, and model / AF-model / stable-model
enumeration.

>>> from repro.workloads.paper import figure1
>>> sem = OrderedSemantics(figure1(), "c1")
>>> sem.holds("fly(pigeon)")
True
>>> sem.holds("-fly(penguin)")
True
"""

from __future__ import annotations

from functools import cached_property
from typing import Iterable, Optional, Union

from ..grounding.grounder import Grounder, GroundingOptions, GroundProgram
from ..lang.errors import SemanticsError
from ..lang.literals import Literal
from ..lang.program import Component, OrderedProgram
from ..lang.rules import Rule
from ..lang.terms import Constant, walk_terms
from ..obs import get_instrumentation
from ..obs.trace import current_trace
from .assumptions import AssumptionAnalyzer
from .interpretation import Interpretation, TruthValue
from .maintenance import (
    ASSERT,
    RETRACT,
    DeltaStats,
    DeltaUnsupported,
    MaintainedModel,
    MaintenanceConfig,
)
from .models import ModelChecker
from .solver import ModelEnumerator, SearchBudget
from .statuses import ComponentOrder, StatusEvaluator, StatusReport
from .transform import (
    AUTO_STRATEGY,
    CLASSICAL_STRATEGY,
    DEMAND_STRATEGY,
    OrderedTransform,
    engine_strategy,
    validate_semantics_strategy,
)

__all__ = ["OrderedSemantics"]


class OrderedSemantics:
    """The meaning of an ordered program in one of its components.

    Args:
        program: the ordered program ``P``.
        component: the component ``C`` whose point of view is taken.
        grounding: grounder options (depth bounds etc.).
        budget: search budget for the enumeration methods.
        strategy: fixpoint evaluation strategy — ``"auto"`` (default:
            route single-component stratified seminegative views to the
            classical stratified backend, otherwise run the semi-naive
            engine), ``"classical"`` (require routing; raises
            :class:`SemanticsError` on ineligible views), or the engine
            escape hatches ``"seminaive"`` / ``"naive"`` which disable
            routing entirely.  ``"demand"`` answers queries
            goal-directed through the magic-sets rewrite where sound
            (``docs/query.md``) and otherwise behaves like ``"auto"``.
            See ``docs/analysis.md`` and ``docs/evaluation.md``.
    """

    #: cached_property names cleared on every program mutation.
    _CACHED = (
        "ground",
        "full_ground",
        "evaluator",
        "full_evaluator",
        "transform",
        "checker",
        "assumptions",
        "enumerator",
        "routing",
        "least_model",
    )

    def __init__(
        self,
        program: OrderedProgram,
        component: str,
        grounding: Optional[GroundingOptions] = None,
        budget: Optional[SearchBudget] = None,
        strategy: str = AUTO_STRATEGY,
        maintenance: Optional[MaintenanceConfig] = None,
    ) -> None:
        if component not in program:
            raise SemanticsError(f"no component named {component!r}")
        if grounding is None:
            grounding = GroundingOptions()
        if budget is None:
            budget = SearchBudget()
        if maintenance is None:
            maintenance = MaintenanceConfig()
        self.program = program
        self.component = component
        self._grounding_options = grounding
        self._budget = budget
        self.strategy = validate_semantics_strategy(strategy)
        self._engine_strategy = engine_strategy(self.strategy)
        self.maintenance = maintenance
        self._maintained: Optional[MaintainedModel] = None

    # ------------------------------------------------------------------
    # Grounding and shared machinery (built lazily, cached)
    # ------------------------------------------------------------------
    @cached_property
    def ground(self) -> GroundProgram:
        """``ground(C*)`` plus the Herbrand base of ``C*``.

        When :attr:`GroundingOptions.domain_pruning` is on, this is the
        *pruned* grounding — sound for the least model only.  The
        enumeration-side machinery reads :attr:`full_ground` instead.
        """
        return Grounder(self._grounding_options).ground_component_star(
            self.program, self.component
        )

    @cached_property
    def full_ground(self) -> GroundProgram:
        """The unpruned ``ground(C*)``.

        Identical to :attr:`ground` unless domain pruning is enabled;
        Definition-3 model checking and enumeration must see every
        ground instance (a never-applicable rule still constrains which
        total interpretations are models), so they ground without
        pruning.
        """
        if not self._grounding_options.domain_pruning:
            return self.ground
        from dataclasses import replace

        options = replace(self._grounding_options, domain_pruning=False)
        return Grounder(options).ground_component_star(
            self.program, self.component
        )

    @cached_property
    def evaluator(self) -> StatusEvaluator:
        return StatusEvaluator(
            self.ground.rules,
            ComponentOrder(self.program.order),
            atom_table=self.ground.atom_table,
        )

    @cached_property
    def full_evaluator(self) -> StatusEvaluator:
        """Status evaluator over the unpruned grounding (shared with
        :attr:`evaluator` when pruning is off)."""
        if not self._grounding_options.domain_pruning:
            return self.evaluator
        return StatusEvaluator(
            self.full_ground.rules,
            ComponentOrder(self.program.order),
            atom_table=self.full_ground.atom_table,
        )

    @cached_property
    def transform(self) -> OrderedTransform:
        return OrderedTransform(
            self.evaluator, self.ground.base, strategy=self._engine_strategy
        )

    @cached_property
    def checker(self) -> ModelChecker:
        return ModelChecker(self.full_evaluator, self.full_ground.base)

    @cached_property
    def assumptions(self) -> AssumptionAnalyzer:
        return AssumptionAnalyzer(self.full_evaluator, self.full_ground.base)

    @cached_property
    def enumerator(self) -> ModelEnumerator:
        return ModelEnumerator(
            self.full_evaluator,
            self.full_ground.base,
            self._budget,
            strategy=self._engine_strategy,
        )

    # ------------------------------------------------------------------
    # Interpretations
    # ------------------------------------------------------------------
    def interpretation(self, literals: Iterable[Union[Literal, str]]) -> Interpretation:
        """Build an interpretation over this component's base; literals
        may be given as strings in the surface syntax."""
        return Interpretation(
            tuple(self._coerce(l) for l in literals), self.ground.base
        )

    def _coerce(self, literal: Union[Literal, str]) -> Literal:
        if isinstance(literal, Literal):
            return literal
        from ..lang.parser import parse_literal

        return parse_literal(literal)

    # ------------------------------------------------------------------
    # Stratification routing (docs/analysis.md)
    # ------------------------------------------------------------------
    @cached_property
    def routing(self):
        """The :class:`~repro.analysis.static.ViewClassification` that
        justifies routing this view to the classical stratified backend,
        or None when the least model runs on the ordered engine.

        Raises:
            SemanticsError: under ``strategy="classical"`` when the view
                is not eligible.
        """
        if self.strategy not in (
            AUTO_STRATEGY,
            CLASSICAL_STRATEGY,
            DEMAND_STRATEGY,
        ):
            return None
        from ..analysis.static import classify_view

        info = classify_view(self.program, self.component)
        if info.routable:
            return info
        if self.strategy == CLASSICAL_STRATEGY:
            raise SemanticsError(
                f"component {self.component!r} cannot be routed to the "
                f"classical stratified backend: {info.ineligibility}"
            )
        return None

    def _routed_least_model(self) -> Interpretation:
        """Least model of a routable view via the classical stratified
        backend.  Sound because a single-component seminegative view has
        no contradictions (hence no overruling/defeating) and negative
        body literals are never derivable, so ``V_{P,C}`` degenerates to
        the stratified Horn consequence operator."""
        from ..classical.stratified import stratified_least_model

        rules = tuple(
            r
            for comp in self.program.visible_components(self.component)
            for r in comp.rules
        )
        atoms = stratified_least_model(rules, self.ground.rules)
        ctx = current_trace()
        if ctx is not None:
            ctx.add_cost(literals_derived=len(atoms), stratified_routed=1)
        return Interpretation(
            tuple(Literal(a, True) for a in atoms), self.ground.base
        )

    # ------------------------------------------------------------------
    # The least model and entailment
    # ------------------------------------------------------------------
    @cached_property
    def least_model(self) -> Interpretation:
        """``V↑ω(∅)`` — the least (assumption-free) model; Theorem 1(b).

        Computed by the classical stratified backend when the view is
        routable (see :attr:`routing`), by the configured fixpoint
        engine otherwise.
        """
        obs = get_instrumentation()
        routed = self.routing is not None
        with obs.span(
            "semantics.least_model", component=self.component, routed=routed
        ):
            if routed:
                obs.count("semantics.route.stratified")
                return self._routed_least_model()
            return self.transform.least_fixpoint()

    def value(self, literal: Union[Literal, str]) -> TruthValue:
        """The truth value of a ground literal in the least model."""
        return self.least_model.value(self._coerce(literal))

    def holds(self, literal: Union[Literal, str]) -> bool:
        """True when the literal is true in the least model (cautious,
        assumption-free entailment)."""
        return self.value(literal) is TruthValue.TRUE

    def undefined(self, literal: Union[Literal, str]) -> bool:
        """True when the least model leaves the literal undefined — e.g.
        after two experts defeat each other (Figure 2)."""
        return self.value(literal) is TruthValue.UNDEFINED

    # ------------------------------------------------------------------
    # Incremental maintenance (docs/maintenance.md)
    # ------------------------------------------------------------------
    def apply_delta(
        self,
        assertions: Iterable[Union[Literal, str, tuple[str, Union[Literal, str]]]] = (),
        retractions: Iterable[Union[Literal, str, tuple[str, Union[Literal, str]]]] = (),
        component: Optional[str] = None,
    ) -> DeltaStats:
        """Assert/retract ground facts, maintaining the computed model.

        Each item is a ground fact literal (or its surface syntax), or a
        ``(component, literal)`` pair; bare literals go to ``component``
        (default: this view's component).  Retractions remove one told
        copy of the fact and raise :class:`SemanticsError` when the fact
        is not present.  See :class:`~repro.core.maintenance.MaintenanceConfig`
        for the fallback behaviour.
        """
        default = component if component is not None else self.component
        ops: list[tuple[str, str, Union[Literal, str]]] = []
        for kind, items in ((ASSERT, assertions), (RETRACT, retractions)):
            for item in items:
                if isinstance(item, tuple):
                    comp, lit = item
                    ops.append((kind, comp, lit))
                else:
                    ops.append((kind, default, item))
        return self.apply_ops(ops)

    def apply_ops(
        self, ops: Iterable[tuple[str, str, Union[Literal, str]]]
    ) -> DeltaStats:
        """Apply a batch of ``(kind, component, fact)`` mutations.

        Mutates :attr:`program` (facts are appended/removed as rules)
        and repairs the cached least model through the delta engine when
        possible; falls back to invalidation + recomputation otherwise
        (maintenance disabled, ``strategy="classical"``, or an asserted
        atom outside the grounded base).
        """
        coerced: list[tuple[str, str, Literal]] = []
        for kind, comp, item in ops:
            if kind not in (ASSERT, RETRACT):
                raise SemanticsError(f"unknown delta op kind {kind!r}")
            if comp not in self.program:
                raise SemanticsError(f"no component named {comp!r}")
            lit = self._coerce(item)
            if not lit.is_ground:
                raise SemanticsError(
                    f"only ground facts can be told/retracted: {lit}"
                )
            coerced.append((kind, comp, lit))
        new_program, engine_ops, unsupported = self._mutate_program(coerced)
        obs = get_instrumentation()
        if obs.enabled:
            obs.count("maintain.delta_facts", len(coerced))
        n_assert = sum(1 for k, _, _ in coerced if k == ASSERT)
        base_stats = DeltaStats(
            asserted=n_assert, retracted=len(coerced) - n_assert
        )
        if not engine_ops and not unsupported:
            # No visible ground-level change (facts outside C*, or
            # duplicate copies absorbed): every cache stays valid.
            self.program = new_program
            return base_stats
        have_model = (
            self._maintained is not None or "least_model" in self.__dict__
        )
        use_engine = (
            self.maintenance.enabled
            and self.strategy != CLASSICAL_STRATEGY
            and have_model
            and not unsupported
            # A fact delta can revive rules the pruned grounding never
            # emitted, which refcount maintenance cannot see; re-ground.
            and not self._grounding_options.domain_pruning
        )
        if not use_engine:
            self.program = new_program
            self._invalidate_all()
            base_stats.full_rebuild = True
            if obs.enabled:
                obs.count("maintain.full_rebuilds")
            return base_stats
        try:
            if self._maintained is None:
                self._maintained = MaintainedModel(
                    self.evaluator, self.ground.base, self.maintenance
                )
            stats = self._maintained.apply(engine_ops)
        except DeltaUnsupported:
            # e.g. an asserted atom outside the grounded base: the view
            # must be re-grounded from the mutated program.
            self.program = new_program
            self._invalidate_all()
            if obs.enabled:
                obs.count("maintain.full_rebuilds")
            base_stats.full_rebuild = True
            return base_stats
        except Exception:
            # The maintained state may be mid-mutation; drop it so the
            # next read recomputes from the mutated program.
            self.program = new_program
            self._invalidate_all()
            raise
        self.program = new_program
        maintained = self._maintained
        old_ground = self.__dict__.get("ground")
        for name in self._CACHED:
            self.__dict__.pop(name, None)
        if old_ground is not None:
            # The old atom table stays valid: maintenance only toggles
            # rule liveness, it never invents atoms outside the base.
            self.__dict__["ground"] = GroundProgram(
                maintained.alive_rules(),
                old_ground.base,
                old_ground.universe,
                old_ground.atom_table,
            )
        self.__dict__["least_model"] = maintained.interpretation()
        return stats

    def _mutate_program(
        self, ops: list[tuple[str, str, Literal]]
    ) -> tuple[OrderedProgram, list[tuple[str, str, Literal]], bool]:
        """The mutated immutable program, the ops that change the
        *deduplicated* ground fact multiset of this view, and whether
        the batch defeats refcounting (forcing a full recomputation).

        The grounder collapses identical instances per component, so a
        fact told twice grounds once: only the first copy's assertion
        and the last copy's retraction reach the delta engine.
        """
        rules = {c.name: list(c.rules) for c in self.program.components()}
        visible = {c.name for c in self.program.visible_components(self.component)}
        engine_ops: list[tuple[str, str, Literal]] = []
        unsupported = False
        for kind, comp, lit in ops:
            bucket = rules[comp]
            fact = Rule(lit)
            count = sum(1 for r in bucket if r == fact)
            if kind == ASSERT:
                bucket.append(fact)
                if count == 0 and comp in visible:
                    engine_ops.append((ASSERT, comp, lit))
            else:
                if count == 0:
                    raise SemanticsError(
                        f"cannot retract {lit} from component {comp!r}: "
                        "fact was never told"
                    )
                bucket.remove(fact)
                if count == 1 and comp in visible:
                    if any(
                        not r.body_literals()
                        and r.head.positive == lit.positive
                        and (
                            r.head == lit
                            if r.head.is_ground
                            else r.head.atom.signature == lit.atom.signature
                        )
                        for r in bucket
                    ):
                        # Another source (a non-ground fact like p(X).,
                        # or a guard-only rule with the same head) may
                        # ground to the same deduplicated instance;
                        # refcounts cannot tell.  Recompute.
                        unsupported = True
                    engine_ops.append((RETRACT, comp, lit))
        new_program = OrderedProgram(
            [Component(name, rs) for name, rs in rules.items()],
            self.program.order.pairs(),
        )
        if not unsupported:
            retracted_constants = {
                constant
                for kind, _, lit in ops
                if kind == RETRACT
                for term in lit.args
                for constant in walk_terms(term)
                if isinstance(constant, Constant)
            }
            if retracted_constants and not retracted_constants <= new_program.constants():
                # The retraction removed a constant's last occurrence,
                # shrinking the Herbrand universe: closed-world defaults
                # over that constant are no longer grounded.  Recompute.
                unsupported = True
        return new_program, engine_ops, unsupported

    def _invalidate_all(self) -> None:
        self._maintained = None
        for name in self._CACHED:
            self.__dict__.pop(name, None)

    # ------------------------------------------------------------------
    # Definition 2 statuses (diagnostics)
    # ------------------------------------------------------------------
    def statuses(
        self, interp: Optional[Interpretation] = None
    ) -> list[StatusReport]:
        """Status report of every ground rule under ``interp`` (defaults
        to the least model)."""
        interp = interp if interp is not None else self.least_model
        return list(self.full_evaluator.reports(interp))

    # ------------------------------------------------------------------
    # Model checking and enumeration
    # ------------------------------------------------------------------
    def is_model(self, interp: Interpretation) -> bool:
        return self.checker.is_model(interp)

    def is_assumption_free_model(self, interp: Interpretation) -> bool:
        return self.checker.is_model(interp) and self.assumptions.is_assumption_free(
            interp
        )

    def is_stable_model(self, interp: Interpretation) -> bool:
        """Stable = assumption-free and not properly contained in another
        assumption-free model (Definition 9)."""
        if not self.is_assumption_free_model(interp):
            return False
        return all(
            interp.literals == other.literals or not (interp.literals < other.literals)
            for other in self.assumption_free_models()
        )

    def models(self, limit: Optional[int] = None) -> list[Interpretation]:
        with get_instrumentation().span("semantics.models"):
            return self.enumerator.models(limit=limit)

    def total_models(self) -> list[Interpretation]:
        with get_instrumentation().span("semantics.total_models"):
            return self.enumerator.total_models()

    def exhaustive_models(self) -> list[Interpretation]:
        with get_instrumentation().span("semantics.exhaustive_models"):
            return self.enumerator.exhaustive_models()

    def assumption_free_models(
        self, limit: Optional[int] = None
    ) -> list[Interpretation]:
        with get_instrumentation().span("semantics.af_models"):
            return self.enumerator.assumption_free_models(limit=limit)

    def stable_models(self) -> list[Interpretation]:
        with get_instrumentation().span("semantics.stable_models"):
            return self.enumerator.stable_models()

    # ------------------------------------------------------------------
    # Consequence relations over the stable models
    # ------------------------------------------------------------------
    def skeptical_consequences(self) -> Interpretation:
        """The literals true in *every* stable model.

        Always a superset of the least model (which is contained in
        every AF model); the gap between the two measures how much the
        maximality of stable models decides beyond pure derivation.
        """
        stable = self.stable_models()
        literals = frozenset.intersection(*(m.literals for m in stable))
        return Interpretation(literals, self.ground.base)

    def credulous_consequences(self) -> Interpretation:
        """The literals true in *some* stable model.

        Note this union may be inconsistent as a set (different stable
        models choose differently); it is returned as a raw frozenset
        via :attr:`Interpretation.literals` semantics only when
        consistent — otherwise use :meth:`credulous_literals`.
        """
        return Interpretation(self.credulous_literals(), self.ground.base)

    def credulous_literals(self) -> frozenset[Literal]:
        """The union of all stable models' literal sets (possibly
        containing complementary pairs)."""
        stable = self.stable_models()
        result: frozenset[Literal] = frozenset()
        for m in stable:
            result |= m.literals
        return result

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """A short multi-line description of the component's meaning."""
        lm = self.least_model
        lines = [
            f"component {self.component}: {len(self.ground.rules)} ground rules, "
            f"base of {len(self.ground.base)} atoms",
            f"least model ({len(lm)} literals): {lm}",
            f"undefined atoms: {sorted(map(str, lm.undefined_atoms()))}",
        ]
        return "\n".join(lines)
