"""Incremental knowledge-base maintenance: assert/retract deltas.

The KB shell of Section 5 treats an ordered program as a long-lived
artifact that is *queried and updated* repeatedly.  Recomputing
``V↑ω(∅)`` from scratch after every ``tell``/``retract`` throws away
almost all of the previous model: a single fact assertion typically
touches a handful of rules out of thousands.  This module maintains an
already-computed least model under ground-fact assertion and
retraction, in the delete-rederive (DRed) style of incremental Datalog
view maintenance, adapted to the ordered statuses of Definition 2.

The moving parts beyond classical DRed:

* an **asserted** fact is a new ground rule.  It can *overrule* or
  *defeat* existing rules with the complementary head (a fact in a more
  specific component silently un-derives the general default), so the
  assertion path must un-fire the newly threatened rules and
  delete-rederive their consequences — assertion is **not** monotone in
  ordered programs;
* a **retracted** fact can *un-overrule* or *un-defeat* rules in
  higher or incomparable components (removing the live threat releases
  them), and deleting a literal can *un-block* a rule, which turns it
  back into a live threat against rules in yet other components.  The
  deletion cascade therefore propagates along three edge kinds of the
  watch-list index — body support, blocking, and contradiction — and
  re-evaluates status for exactly the rules whose blockers or
  contradictors changed.

The maintained state is the same counter representation as
:class:`~repro.core.incremental.SemiNaiveFixpoint` (satisfied
counters, blocked flags, live overruler/defeater counters, fired
flags), made mutable and kept alive across mutations.  Soundness of
rederive-from-survivors: the overcounting cascade deletes a superset
of the literals that left the model, so the surviving interpretation
``S`` is contained in the new least fixpoint; ``V`` is monotone along
the chain from ``S`` (Lemma 1), so resuming the semi-naive iteration
from ``S`` converges to exactly ``V↑ω(∅)`` of the mutated program.
The differential property suite
(``tests/properties/test_maintenance_differential.py``) enforces
bit-identical agreement with from-scratch recomputation.

When a mutation dirties more of the program than the configured
*status frontier* allows (:attr:`MaintenanceConfig.frontier_threshold`),
the engine abandons the cascade and rebuilds the model from the empty
interpretation over the current rule multiset — still without
re-grounding anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

from ..grounding.grounder import GroundRule
from ..lang.errors import InconsistencyError, SemanticsError
from ..lang.literals import Atom, Literal
from ..obs import get_instrumentation
from ..obs.trace import current_trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .interpretation import Interpretation
    from .statuses import StatusEvaluator

__all__ = [
    "MaintenanceConfig",
    "DeltaStats",
    "DeltaOp",
    "DeltaUnsupported",
    "MaintainedModel",
    "ASSERT",
    "RETRACT",
]

#: Op kinds understood by :meth:`MaintainedModel.apply`.
ASSERT = "assert"
RETRACT = "retract"

#: One mutation: ``(kind, component, ground fact literal)``.
DeltaOp = tuple[str, str, Literal]


class DeltaUnsupported(SemanticsError):
    """The delta path cannot absorb this mutation (e.g. the asserted
    atom lies outside the view's grounded Herbrand base, so new ground
    instances of non-fact rules may exist).  Callers fall back to full
    recomputation."""


@dataclass(frozen=True)
class MaintenanceConfig:
    """Knobs for the incremental maintenance engine.

    Attributes:
        enabled: when False, every mutation invalidates and the next
            read recomputes from scratch (the pre-maintenance
            behaviour; used as the benchmark baseline).
        frontier_threshold: fraction of the (alive) ground rules that a
            single delta's status frontier may touch before the engine
            gives up on the cascade and rebuilds the model from ∅ over
            the current rules.  1.0 effectively disables the fallback;
            0.0 forces a rebuild on every delta.
    """

    enabled: bool = True
    frontier_threshold: float = 0.5


@dataclass
class DeltaStats:
    """What one :meth:`MaintainedModel.apply` call did.

    Attributes:
        asserted: facts added (after refcount dedup).
        retracted: facts removed (after refcount dedup).
        deleted: literals removed by the overcounting cascade.
        rederived: literals (re)derived by the forward phase —
            includes cascade survivors that were re-established.
        rules_reevaluated: rule-status updates performed (the *status
            frontier* of the delta).
        full_rebuild: the delta exceeded the frontier threshold (or was
            otherwise unsupported) and the model was recomputed from ∅.
    """

    asserted: int = 0
    retracted: int = 0
    deleted: int = 0
    rederived: int = 0
    rules_reevaluated: int = 0
    full_rebuild: bool = False

    def merge(self, other: "DeltaStats") -> "DeltaStats":
        return DeltaStats(
            self.asserted + other.asserted,
            self.retracted + other.retracted,
            self.deleted + other.deleted,
            self.rederived + other.rederived,
            self.rules_reevaluated + other.rules_reevaluated,
            self.full_rebuild or other.full_rebuild,
        )


class _FrontierExceeded(Exception):
    """Internal: the cascade dirtied more than the threshold allows."""


@dataclass
class _Pending:
    """Work queued by the bookkeeping pass, consumed by the cascade."""

    candidates: set[int] = field(default_factory=set)
    to_delete: list[Literal] = field(default_factory=list)


class MaintainedModel:
    """A least model kept consistent under fact assertion/retraction.

    Built from a :class:`~repro.core.statuses.StatusEvaluator` (whose
    :class:`~repro.core.incremental.RuleIndex` provides the initial
    watch lists) and immediately brought to ``V↑ω(∅)``.  Thereafter
    :meth:`apply` absorbs batches of ground-fact deltas; reads go
    through :meth:`interpretation`.

    Rule ids are stable: retracting a fact marks its rule *dead*
    rather than compacting the arrays, so every watch list stays valid.
    """

    def __init__(
        self,
        evaluator: "StatusEvaluator",
        base: Iterable[Atom],
        config: MaintenanceConfig = MaintenanceConfig(),
    ) -> None:
        self.config = config
        self._order = evaluator.order
        self._base = frozenset(base)
        index = evaluator.index
        n = len(index)
        self._rules: list[GroundRule] = list(index.rules)
        self._alive: list[bool] = [True] * n
        self._heads: list[Literal] = list(index.heads)
        self._body_sizes: list[int] = list(index.body_sizes)
        self._body_watch: dict[Literal, list[int]] = {
            lit: list(ids) for lit, ids in index.body_watch.items()
        }
        self._block_watch: dict[Literal, list[int]] = {
            lit: list(ids) for lit, ids in index.block_watch.items()
        }
        self._contradiction_watch: list[list[tuple[int, bool]]] = [
            list(watchers) for watchers in index.contradiction_watch
        ]
        self._by_head: dict[Literal, list[int]] = {}
        for i, head in enumerate(self._heads):
            self._by_head.setdefault(head, []).append(i)
        # Every alive empty-body rule is a retractable fact; refcounts
        # mirror the grounder's instance dedup (telling the same fact
        # twice grounds to one instance, so the model drops it only
        # when the last copy is retracted).
        self._fact_refs: dict[tuple[str, Literal], list[int]] = {}
        for i, r in enumerate(self._rules):
            if not r.body:
                self._fact_refs[(r.component, r.head)] = [i, 1]
        # Per-run counter state (the SemiNaiveFixpoint representation,
        # kept alive across mutations).
        self._satisfied: list[int] = []
        self._blocked: list[bool] = []
        self._live_over: list[int] = []
        self._live_defeat: list[int] = []
        self._fired: list[bool] = []
        self._derived: set[Literal] = set()
        self.rebuild()

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def interpretation(self) -> "Interpretation":
        """The maintained least model as an immutable interpretation."""
        from .interpretation import Interpretation

        return Interpretation(self._derived, self._base)

    def alive_rules(self) -> tuple[GroundRule, ...]:
        """The current ground rule multiset (original order, asserted
        facts appended, retracted facts omitted)."""
        return tuple(
            r for r, alive in zip(self._rules, self._alive) if alive
        )

    @property
    def base(self) -> frozenset[Atom]:
        return self._base

    def alive_count(self) -> int:
        return sum(self._alive)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def apply(self, ops: Sequence[DeltaOp]) -> DeltaStats:
        """Absorb a batch of assert/retract ops, in order.

        The final model depends only on the final rule multiset, so the
        whole batch runs one deletion cascade and one rederive pass.

        Raises:
            SemanticsError: retracting a fact that is not present.
            DeltaUnsupported: an asserted atom is outside the base.
        """
        obs = get_instrumentation()
        stats = DeltaStats()
        pending = _Pending()
        for kind, component, literal in ops:
            if kind == RETRACT:
                self._retract_one(component, literal, pending)
                stats.retracted += 1
            elif kind == ASSERT:
                self._assert_one(component, literal, pending)
                stats.asserted += 1
            else:
                raise ValueError(f"unknown delta op kind {kind!r}")
        cap = self._frontier_cap()
        try:
            stats.deleted, cascade_reevals = self._cascade(pending, cap)
            stats.rules_reevaluated += cascade_reevals
            stats.rederived = self._forward(pending.candidates)
        except _FrontierExceeded:
            self.rebuild()
            stats.full_rebuild = True
            if obs.enabled:
                obs.count("maintain.full_rebuilds")
        if obs.enabled:
            # maintain.delta_facts is counted by the caller
            # (OrderedSemantics.apply_ops) so fallback paths that never
            # reach the engine are included too.
            obs.count("maintain.rules_reevaluated", stats.rules_reevaluated)
            obs.count("maintain.literals_deleted", stats.deleted)
            obs.count("maintain.literals_rederived", stats.rederived)
        ctx = current_trace()
        if ctx is not None:
            ctx.add_cost(
                delta_asserted=stats.asserted,
                delta_retracted=stats.retracted,
                rules_reevaluated=stats.rules_reevaluated,
                literals_deleted=stats.deleted,
                literals_rederived=stats.rederived,
                full_rebuilds=int(stats.full_rebuild),
            )
        return stats

    def rebuild(self) -> None:
        """Recompute the model from ∅ over the current rule multiset.

        No re-grounding happens — this is the engine-level fallback for
        deltas whose status frontier exceeds the configured threshold.
        """
        n = len(self._rules)
        self._satisfied = [0] * n
        self._blocked = [False] * n
        self._live_over = [0] * n
        self._live_defeat = [0] * n
        self._fired = [False] * n
        self._derived = set()
        for j in range(n):
            if not self._alive[j]:
                continue
            for i, is_overruler in self._contradiction_watch[j]:
                if not self._alive[i]:
                    continue
                if is_overruler:
                    self._live_over[i] += 1
                else:
                    self._live_defeat[i] += 1
        candidates = {
            i
            for i in range(n)
            if self._alive[i] and self._body_sizes[i] == 0
        }
        self._forward(candidates)

    # ------------------------------------------------------------------
    # Bookkeeping: one op at a time (cheap, no cascade yet)
    # ------------------------------------------------------------------
    def _retract_one(
        self, component: str, literal: Literal, pending: _Pending
    ) -> None:
        key = (component, literal)
        entry = self._fact_refs.get(key)
        if entry is None:
            raise SemanticsError(
                f"cannot retract {literal} from component {component!r}: "
                "no such told fact"
            )
        entry[1] -= 1
        if entry[1] > 0:
            return
        i = entry[0]
        del self._fact_refs[key]
        self._alive[i] = False
        # A fact has an empty body, so it was never blocked: it was a
        # live threat to everything it watches.  Release them.
        if not self._blocked[i]:
            for w, is_overruler in self._contradiction_watch[i]:
                if not self._alive[w]:
                    continue
                if is_overruler:
                    self._live_over[w] -= 1
                else:
                    self._live_defeat[w] -= 1
                pending.candidates.add(w)
        if self._fired[i]:
            self._fired[i] = False
            pending.to_delete.append(self._heads[i])

    def _assert_one(
        self, component: str, literal: Literal, pending: _Pending
    ) -> None:
        if not literal.is_ground:
            raise DeltaUnsupported(
                f"only ground facts can be asserted incrementally: {literal}"
            )
        if literal.atom not in self._base:
            raise DeltaUnsupported(
                f"atom {literal.atom} is outside the grounded base; "
                "the view must be re-grounded"
            )
        key = (component, literal)
        entry = self._fact_refs.get(key)
        if entry is not None:
            entry[1] += 1
            return
        rule = GroundRule(literal, frozenset(), component)
        i = len(self._rules)
        self._rules.append(rule)
        self._alive.append(True)
        self._heads.append(literal)
        self._body_sizes.append(0)
        self._satisfied.append(0)
        self._blocked.append(False)
        self._fired.append(False)
        self._contradiction_watch.append([])
        live_over = live_defeat = 0
        order = self._order
        for j in self._by_head.get(literal.complement(), ()):
            if not self._alive[j]:
                continue
            other = self._rules[j].component
            # The existing rule as a threat to the new fact...
            if order.strictly_below(other, component):
                if not self._blocked[j]:
                    live_over += 1
                self._contradiction_watch[j].append((i, True))
            elif order.incomparable_or_equal(other, component):
                if not self._blocked[j]:
                    live_defeat += 1
                self._contradiction_watch[j].append((i, False))
            # ... and the new fact as a threat to the existing rule.  A
            # fact is never blocked, so the threat is live immediately.
            threatens = False
            if order.strictly_below(component, other):
                self._live_over[j] += 1
                self._contradiction_watch[i].append((j, True))
                threatens = True
            elif order.incomparable_or_equal(component, other):
                self._live_defeat[j] += 1
                self._contradiction_watch[i].append((j, False))
                threatens = True
            if threatens and self._fired[j]:
                self._fired[j] = False
                pending.to_delete.append(self._heads[j])
            pending.candidates.add(j)
        self._live_over.append(live_over)
        self._live_defeat.append(live_defeat)
        self._by_head.setdefault(literal, []).append(i)
        self._fact_refs[key] = [i, 1]
        pending.candidates.add(i)

    # ------------------------------------------------------------------
    # Deletion cascade (the overcounting half of delete-rederive)
    # ------------------------------------------------------------------
    def _frontier_cap(self) -> Optional[int]:
        threshold = self.config.frontier_threshold
        if threshold >= 1.0:
            return None
        return max(4, int(threshold * max(1, self.alive_count())))

    def _cascade(
        self, pending: _Pending, cap: Optional[int]
    ) -> tuple[int, int]:
        """Overcount-delete everything whose derivation might have
        depended on the mutated facts; returns (deleted, reevals)."""
        deleted = 0
        reevals = 0
        worklist = pending.to_delete
        candidates = pending.candidates
        recheck_blocked: set[int] = set()
        while worklist:
            l = worklist.pop()
            if l not in self._derived:
                continue
            self._derived.discard(l)
            deleted += 1
            # Un-fire every remaining deriver; the forward phase will
            # re-fire (and re-derive l) whatever is still supported.
            for i in self._by_head.get(l, ()):
                if self._alive[i] and self._fired[i]:
                    self._fired[i] = False
                    candidates.add(i)
                    reevals += 1
            # Body support lost: consequences are overcount-deleted.
            for i in self._body_watch.get(l, ()):
                if not self._alive[i]:
                    continue
                self._satisfied[i] -= 1
                candidates.add(i)
                reevals += 1
                if self._fired[i]:
                    self._fired[i] = False
                    worklist.append(self._heads[i])
            # l may have been keeping some rule blocked.  Even when
            # another derived blocker remains, that blocker's own
            # justification may be cyclic through this very blockage
            # (blocked threat → undefeated rule → derived blocker), so
            # over-delete: treat the rule as unblocked, revive its
            # threats, and delete the watchers' heads.  Survivors are
            # re-blocked after the cascade drains and rederived by the
            # forward phase.
            for j in self._block_watch.get(l, ()):
                if not self._alive[j] or not self._blocked[j]:
                    continue
                reevals += 1
                self._blocked[j] = False
                recheck_blocked.add(j)
                candidates.add(j)
                for w, is_overruler in self._contradiction_watch[j]:
                    if not self._alive[w]:
                        continue
                    if is_overruler:
                        self._live_over[w] += 1
                    else:
                        self._live_defeat[w] += 1
                    candidates.add(w)
                    reevals += 1
                    if self._fired[w]:
                        self._fired[w] = False
                        worklist.append(self._heads[w])
            if cap is not None and deleted + reevals > cap:
                raise _FrontierExceeded
        # Re-establish blockage that genuinely survived the deletion:
        # the surviving interpretation is contained in the new least
        # model, so a surviving blocker proves the rule stays blocked.
        for j in recheck_blocked:
            if not self._alive[j] or self._blocked[j]:
                continue
            reevals += 1
            if not any(
                b.complement() in self._derived
                for b in self._rules[j].body
            ):
                continue
            self._blocked[j] = True
            for w, is_overruler in self._contradiction_watch[j]:
                if not self._alive[w]:
                    continue
                if is_overruler:
                    self._live_over[w] -= 1
                else:
                    self._live_defeat[w] -= 1
                candidates.add(w)
        return deleted, reevals

    # ------------------------------------------------------------------
    # Forward phase (initial run, rederive, and new derivations)
    # ------------------------------------------------------------------
    def _forward(self, candidates: set[int]) -> int:
        """Resume the semi-naive iteration from the current state.

        Mirrors :meth:`SemiNaiveFixpoint.run` over the mutable arrays;
        sound because the surviving interpretation is contained in the
        target least fixpoint (see the module docstring).
        """
        heads = self._heads
        body_sizes = self._body_sizes
        satisfied = self._satisfied
        blocked = self._blocked
        live_over = self._live_over
        live_defeat = self._live_defeat
        fired = self._fired
        alive = self._alive
        derived = self._derived
        bound = 2 * len(self._base) + 2
        stages = 0
        total = 0
        while candidates:
            new_literals: set[Literal] = set()
            for i in candidates:
                if not alive[i] or fired[i] or blocked[i]:
                    continue
                if satisfied[i] != body_sizes[i]:
                    continue
                if live_over[i] or live_defeat[i]:
                    continue
                fired[i] = True
                head = heads[i]
                if head in derived or head in new_literals:
                    continue
                complement = head.complement()
                if complement in derived or complement in new_literals:
                    raise InconsistencyError(
                        f"V produced both {head} and {complement}; "
                        "the maintained state is inconsistent (a bug)"
                    )
                new_literals.add(head)
            if not new_literals:
                break
            stages += 1
            if stages > bound:
                raise InconsistencyError(
                    "maintenance rederive failed to converge within the "
                    "stage bound; this indicates non-monotone behaviour "
                    "(a bug)"
                )
            total += len(new_literals)
            next_candidates: set[int] = set()
            for lit in new_literals:
                derived.add(lit)
                for i in self._body_watch.get(lit, ()):
                    if not alive[i]:
                        continue
                    satisfied[i] += 1
                    next_candidates.add(i)
                for j in self._block_watch.get(lit, ()):
                    if not alive[j] or blocked[j]:
                        continue
                    blocked[j] = True
                    for w, is_overruler in self._contradiction_watch[j]:
                        if not alive[w]:
                            continue
                        if is_overruler:
                            self._live_over[w] -= 1
                        else:
                            self._live_defeat[w] -= 1
                        next_candidates.add(w)
            candidates = next_candidates
        return total

    # ------------------------------------------------------------------
    # Auditing (tests)
    # ------------------------------------------------------------------
    def audit(self) -> None:
        """Assert counter soundness against Definition 2 from scratch.

        O(rules²) — test/debug use only.
        """
        derived = self._derived
        for i, r in enumerate(self._rules):
            if not self._alive[i]:
                continue
            satisfied = sum(1 for b in r.body if b in derived)
            assert self._satisfied[i] == satisfied, (i, str(r))
            blocked = any(b.complement() in derived for b in r.body)
            assert self._blocked[i] == blocked, (i, str(r))
            live_over = live_defeat = 0
            for j in self._by_head.get(r.head.complement(), ()):
                if not self._alive[j] or self._blocked[j]:
                    continue
                other = self._rules[j].component
                if self._order.strictly_below(other, r.component):
                    live_over += 1
                elif self._order.incomparable_or_equal(other, r.component):
                    live_defeat += 1
            assert self._live_over[i] == live_over, (i, str(r))
            assert self._live_defeat[i] == live_defeat, (i, str(r))
            fires = (
                satisfied == len(r.body)
                and not blocked
                and not live_over
                and not live_defeat
            )
            assert self._fired[i] == fires, (i, str(r))
            if fires:
                assert r.head in derived, (i, str(r))
