"""Models of ordered programs — Definitions 3 and 5, Proposition 2.

An interpretation ``M`` is a **model** for ``P`` in ``C`` when

(a) for each literal ``A ∈ M``, every rule ``r`` with ``H(r) = ¬A`` is
    either blocked or overruled by an **applied** rule, and
(b) for each undefined atom ``A``, every *applicable* rule with head
    ``A`` or ``¬A`` is either overruled or defeated.

Condition (a) guarantees that a value in the model is either never
contradicted or is reconfirmed by a most specific rule; condition (b)
says a derivable value may stay undefined only because its rule is
overruled or defeated.

A model is **total** when it leaves nothing undefined and **exhaustive**
when no proper superset is a model (Definition 5).  Every model extends
to an exhaustive one (Proposition 2) — :meth:`ModelChecker.extend_to_exhaustive`
constructs such an extension.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..lang.literals import Literal
from .interpretation import Interpretation
from .statuses import StatusEvaluator

__all__ = ["ModelChecker"]


class ModelChecker:
    """Checks Definition 3 over a fixed evaluator (ground rules + order)."""

    def __init__(self, evaluator: StatusEvaluator, base) -> None:
        self._eval = evaluator
        self._base = frozenset(base)

    @property
    def evaluator(self) -> StatusEvaluator:
        return self._eval

    # ------------------------------------------------------------------
    # Definition 3
    # ------------------------------------------------------------------
    def violates_condition_a(self, interp: Interpretation) -> Optional[Literal]:
        """The first member literal whose complement is derivable and not
        excused, or None when condition (a) holds."""
        ev = self._eval
        snapshot = ev.snapshot(interp)
        for member in interp:
            for r in ev.rules_with_head(member.complement()):
                if snapshot.blocked(r):
                    continue
                if snapshot.overruled_by_applied(r):
                    continue
                return member
        return None

    def violates_condition_b(self, interp: Interpretation) -> Optional[Literal]:
        """The head of the first applicable-but-unexcused rule over an
        undefined atom, or None when condition (b) holds."""
        ev = self._eval
        undefined = interp.undefined_atoms()
        if not undefined:
            return None
        snapshot = ev.snapshot(interp)
        for r in ev.rules:
            if r.head.atom not in undefined:
                continue
            if not snapshot.applicable(r):
                continue
            if snapshot.overruled(r) or snapshot.defeated(r):
                continue
            return r.head
        return None

    def is_model(self, interp: Interpretation) -> bool:
        """Definition 3: conditions (a) and (b) both hold."""
        return (
            self.violates_condition_a(interp) is None
            and self.violates_condition_b(interp) is None
        )

    def why_not_model(self, interp: Interpretation) -> Optional[str]:
        """A human-readable reason, or None when the set is a model."""
        witness = self.violates_condition_a(interp)
        if witness is not None:
            return (
                f"condition (a) fails for {witness}: a rule deriving "
                f"{witness.complement()} is neither blocked nor overruled "
                "by an applied rule"
            )
        witness = self.violates_condition_b(interp)
        if witness is not None:
            return (
                f"condition (b) fails: an applicable rule with head {witness} "
                "over an undefined atom is neither overruled nor defeated"
            )
        return None

    # ------------------------------------------------------------------
    # Definition 5 / Proposition 2
    # ------------------------------------------------------------------
    def is_total_model(self, interp: Interpretation) -> bool:
        return interp.is_total and self.is_model(interp)

    def extension_candidates(self, interp: Interpretation) -> Iterator[Literal]:
        """Literals over undefined atoms, in deterministic order."""
        for atom in sorted(interp.undefined_atoms(), key=str):
            yield Literal(atom, True)
            yield Literal(atom, False)

    def is_exhaustive(self, interp: Interpretation) -> bool:
        """No proper superset is a model (Definition 5b).

        Checked by searching for *any* strict extension that is a model;
        note that a single-literal extension may fail where a larger one
        succeeds, so the search recurses over all extensions (exponential
        in the number of undefined atoms — use on small bases).
        """
        if not self.is_model(interp):
            return False
        return self._find_proper_extension(interp) is None

    def _find_proper_extension(
        self, interp: Interpretation
    ) -> Optional[Interpretation]:
        undefined = sorted(interp.undefined_atoms(), key=str)
        return self._search_extension(interp, undefined, 0, strict=False)

    def _search_extension(
        self,
        interp: Interpretation,
        undefined: list,
        index: int,
        strict: bool,
    ) -> Optional[Interpretation]:
        if index == len(undefined):
            if strict and self.is_model(interp):
                return interp
            return None
        atom = undefined[index]
        for choice in (Literal(atom, True), Literal(atom, False)):
            extended = interp.with_literals((choice,))
            found = self._search_extension(extended, undefined, index + 1, True)
            if found is not None:
                return found
        return self._search_extension(interp, undefined, index + 1, strict)

    def extend_to_exhaustive(self, interp: Interpretation) -> Interpretation:
        """An exhaustive model extending the given model (Proposition 2).

        Repeatedly replaces the current model by any proper model
        extension until none exists.  Terminates because each step
        strictly grows the literal set.
        """
        if not self.is_model(interp):
            raise ValueError("extend_to_exhaustive requires a model")
        current = interp
        while True:
            extension = self._find_proper_extension(current)
            if extension is None:
                return current
            current = extension
