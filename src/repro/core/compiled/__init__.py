"""The compiled (dense-integer) evaluation path.

Object-graph evaluation — hashing :class:`~repro.lang.literals.Literal`
instances through dict-backed watch lists — caps the fixpoint engine
far below hardware speed.  This package compiles one grounded view to
flat integer arrays and advances the semi-naive fixpoint over integer
deltas instead:

* :mod:`repro.core.compiled.backend` — bitset storage: numpy ``uint64``
  arrays when numpy is installed (the ``repro[fast]`` extra), a pure
  python ``array('Q')`` fallback otherwise.  Selection is import-guarded
  and overridable (``REPRO_DENSE_BACKEND``, :func:`use_backend`).
* :mod:`repro.core.compiled.index` — :class:`CompiledRuleIndex`: the
  watch lists of :class:`~repro.core.incremental.RuleIndex` flattened to
  CSR integer arrays over the grounding-time
  :class:`~repro.grounding.grounder.AtomTable` ids.
* :mod:`repro.core.compiled.fixpoint` — :class:`DenseFixpoint`: the
  integer semi-naive kernel, plus :class:`DenseModelData`, the paired
  true/false bitsets of the computed least model that materialize
  literal objects lazily at the API boundary.

The dense path is ``strategy="seminaive"``'s internal representation —
:class:`~repro.core.incremental.SemiNaiveFixpoint` wraps it behind the
unchanged public API.  See ``docs/performance.md``.
"""

from .backend import available_backends, backend_name, use_backend
from .fixpoint import DenseFixpoint, DenseModelData
from .index import CompiledRuleIndex

__all__ = [
    "available_backends",
    "backend_name",
    "use_backend",
    "CompiledRuleIndex",
    "DenseFixpoint",
    "DenseModelData",
]
