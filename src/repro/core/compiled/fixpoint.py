"""The integer semi-naive fixpoint kernel.

:class:`DenseFixpoint` is the compiled counterpart of the object
engine's delta loop: the same one-way counter flips (satisfied /
blocked / live-overruler / live-defeater — see
:mod:`repro.core.incremental` for the monotonicity argument), advanced
over **integer deltas**.  A stage's delta is a list of literal ids;
propagation walks CSR slices and bumps ``array``/``bytearray`` cells,
so no literal object is hashed anywhere inside the loop.

The result is a :class:`DenseModelData`: the derived literal ids plus
the paired true/false bitsets of the least model.  Object
:class:`~repro.core.interpretation.Interpretation` views are built from
it lazily — a benchmark (or the solver) that re-runs the fixpoint
without reading the model never pays the decode.
"""

from __future__ import annotations

from array import array

from ...lang.errors import InconsistencyError
from ...lang.literals import Literal
from .backend import PairedBitsets, backend_name
from .index import CompiledRuleIndex

__all__ = ["DenseFixpoint", "DenseModelData"]


class DenseModelData:
    """The computed least model in dense form.

    Attributes:
        table: the atom table that decodes the ids.
        literal_ids: the derived literal ids, in derivation order.
        bits: the model as paired true/false bitsets over atom ids.
        backend: the bitset backend the run used.
    """

    __slots__ = ("table", "literal_ids", "bits", "backend")

    def __init__(self, table, literal_ids: array) -> None:
        self.table = table
        self.literal_ids = literal_ids
        self.backend = backend_name()
        self.bits = PairedBitsets.from_literal_ids(
            literal_ids, len(table), self.backend
        )

    def __len__(self) -> int:
        return len(self.literal_ids)

    def literals(self) -> tuple[Literal, ...]:
        """Decode to literal objects (the lazy-view thunk)."""
        decode = self.table.literal
        return tuple(decode(i) for i in self.literal_ids)

    def value_of_atom_id(self, atom_id: int) -> int:
        """3-valued lookup: 2 true, 0 false, 1 undefined (the
        :class:`~repro.core.interpretation.TruthValue` encoding)."""
        if self.bits.is_true(atom_id):
            return 2
        if self.bits.is_false(atom_id):
            return 0
        return 1


class DenseFixpoint:
    """One ``V↑ω(∅)`` computation over a compiled index.

    Mutable per-run state lives in flat arrays; the object-level
    :class:`~repro.core.incremental.SemiNaiveFixpoint` wraps a run and
    decodes on demand.

    Attributes:
        satisfied: per-rule derived-body-literal counts (``array('l')``).
        blocked: per-rule blocked flags (``bytearray``).
        live_overrulers / live_defeaters: per-rule live-threat counts.
        fired: per-rule fired flags (``bytearray``).
        truth: per-literal-id membership flags of the growing model.
        stage_ids: literal ids first derived at each stage.
    """

    __slots__ = (
        "_index",
        "satisfied",
        "blocked",
        "live_overrulers",
        "live_defeaters",
        "fired",
        "truth",
        "stage_ids",
    )

    def __init__(self, index: CompiledRuleIndex) -> None:
        self._index = index
        n = index.n_rules
        self.satisfied = array("l", bytes(array("l").itemsize * n))
        self.blocked = bytearray(n)
        self.live_overrulers = array("l", index.init_live_overrulers)
        self.live_defeaters = array("l", index.init_live_defeaters)
        self.fired = bytearray(n)
        self.truth = bytearray(index.n_literals)
        self.stage_ids: list[list[int]] = []

    @property
    def index(self) -> CompiledRuleIndex:
        return self._index

    def run(self, bound: int, obs=None) -> DenseModelData:
        """Advance to the fixpoint; ``bound`` caps the stage count.

        ``obs`` is an enabled instrumentation facade or None; the
        disabled path costs nothing per stage.
        """
        index = self._index
        heads = index.heads
        body_sizes = index.body_sizes
        bw_start = index.body_watch_start
        bw_rules = index.body_watch_rules
        blw_start = index.block_watch_start
        blw_rules = index.block_watch_rules
        c_start = index.contra_start
        c_watchers = index.contra_watchers
        satisfied = self.satisfied
        blocked = self.blocked
        live_over = self.live_overrulers
        live_defeat = self.live_defeaters
        fired = self.fired
        truth = self.truth
        stage_ids = self.stage_ids

        queued = bytearray(index.n_rules)
        candidates = list(index.source_facts)
        stages = 0
        derived_total = 0
        while candidates:
            new_ids: list[int] = []
            applied = overruled = defeated = 0
            for i in candidates:
                queued[i] = 0
                if fired[i] or blocked[i]:
                    continue
                if satisfied[i] != body_sizes[i]:
                    continue
                threatened = False
                if live_over[i]:
                    overruled += 1
                    threatened = True
                if live_defeat[i]:
                    defeated += 1
                    threatened = True
                if threatened:
                    continue
                fired[i] = 1
                applied += 1
                h = heads[i]
                if truth[h]:
                    continue
                if truth[h ^ 1]:
                    head = index.table.literal(h)
                    raise InconsistencyError(
                        f"V produced both {head} and {head.complement()}; "
                        "the input interpretation was inconsistent or the "
                        "order is broken"
                    )
                truth[h] = 1
                new_ids.append(h)
            if not new_ids:
                break
            stages += 1
            if stages > bound:
                raise InconsistencyError(
                    "V failed to reach a fixpoint within the iteration "
                    "bound; this indicates non-monotone behaviour (a bug)"
                )
            if obs is not None:
                self._flush_stage(
                    obs, stages, len(candidates), applied, overruled,
                    defeated, len(new_ids),
                )
            stage_ids.append(new_ids)
            derived_total += len(new_ids)
            # Propagate the integer delta: advance satisfied counters,
            # flip blocked flags, release threatened watchers.  The
            # touched rules are the next stage's candidates (the queued
            # flags deduplicate within the stage).
            next_candidates: list[int] = []
            for h in new_ids:
                for i in bw_rules[bw_start[h] : bw_start[h + 1]]:
                    satisfied[i] += 1
                    if not queued[i]:
                        queued[i] = 1
                        next_candidates.append(i)
                for j in blw_rules[blw_start[h] : blw_start[h + 1]]:
                    if not blocked[j]:
                        blocked[j] = 1
                        for packed in c_watchers[c_start[j] : c_start[j + 1]]:
                            i = packed >> 1
                            if packed & 1:
                                live_over[i] -= 1
                            else:
                                live_defeat[i] -= 1
                            if not queued[i]:
                                queued[i] = 1
                                next_candidates.append(i)
            candidates = next_candidates
        derived = array("l", bytes(array("l").itemsize * derived_total))
        cursor = 0
        for ids in stage_ids:
            derived[cursor : cursor + len(ids)] = array("l", ids)
            cursor += len(ids)
        return DenseModelData(index.table, derived)

    @staticmethod
    def _flush_stage(
        obs, stage, touched, applied, overruled, defeated, derived
    ) -> None:
        from ...obs import Level

        obs.count("fixpoint.stages")
        obs.count("fixpoint.rules_touched", touched)
        obs.count("fixpoint.rules_applied", applied)
        obs.count("fixpoint.rules_overruled", overruled)
        obs.count("fixpoint.rules_defeated", defeated)
        obs.count("fixpoint.literals_derived", derived)
        obs.observe("fixpoint.stage_literals", derived)
        obs.observe("fixpoint.delta_size", derived)
        obs.event(
            "fixpoint.stage", Level.DEBUG, stage=stage, new_literals=derived
        )
