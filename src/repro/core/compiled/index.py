"""The watch-list index compiled to flat integer arrays.

:class:`~repro.core.incremental.RuleIndex` keeps its watch lists as
dicts keyed by :class:`~repro.lang.literals.Literal`; every delta
propagation step therefore hashes literal objects.  This module
flattens the same structure to CSR (compressed sparse row) integer
arrays over :class:`~repro.grounding.grounder.AtomTable` ids, so the
fixpoint kernel advances with array indexing only:

* ``body_watch_start/body_watch_rules`` — literal id → rule ids with
  the literal in their body;
* ``block_watch_start/block_watch_rules`` — literal id → rule ids
  *blocked* when the literal is derived (its complement is in their
  body); because complementation is ``id ^ 1``, both CSRs share the
  literal-id axis;
* ``contra_start/contra_watchers`` — rule id ``j`` → packed
  ``(watcher << 1) | is_overruler`` entries: rules whose live-threat
  counter drops when ``j`` becomes blocked.

The compiled index is immutable and cached on the
:class:`~repro.core.incremental.RuleIndex` (one per evaluator), so
repeated fixpoint runs — model enumeration in particular — share one
compilation.
"""

from __future__ import annotations

from array import array
from typing import TYPE_CHECKING, Optional

from ...grounding.grounder import AtomTable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..incremental import RuleIndex

__all__ = ["CompiledRuleIndex"]


def _csr(buckets: dict[int, list[int]], n_keys: int) -> tuple[array, array]:
    """Pack id-keyed buckets into (start offsets, concatenated items)."""
    start = array("l", bytes(array("l").itemsize * (n_keys + 1)))
    for key, items in buckets.items():
        start[key + 1] = len(items)
    for k in range(n_keys):
        start[k + 1] += start[k]
    flat = array("l", bytes(array("l").itemsize * start[n_keys]))
    cursor = list(start[:n_keys])
    for key, items in buckets.items():
        c = cursor[key]
        flat[c : c + len(items)] = array("l", items)
        cursor[key] = c + len(items)
    return start, flat


class CompiledRuleIndex:
    """One grounded view's watch lists as dense integer arrays.

    Attributes:
        table: the atom table addressing every literal id below.
        n_rules / n_literals: array dimensions (``n_literals`` covers
            every atom interned in the table at compile time).
        heads: per-rule head literal id.
        body_sizes: per-rule body length (satisfied-counter target).
        init_live_overrulers / init_live_defeaters: per-rule initial
            live-threat counts (every potential threat starts live).
        source_facts: ids of empty-body rules — stage-1 candidates.
    """

    __slots__ = (
        "table",
        "n_rules",
        "n_literals",
        "heads",
        "body_sizes",
        "body_watch_start",
        "body_watch_rules",
        "block_watch_start",
        "block_watch_rules",
        "contra_start",
        "contra_watchers",
        "init_live_overrulers",
        "init_live_defeaters",
        "source_facts",
    )

    def __init__(
        self, index: "RuleIndex", table: Optional[AtomTable] = None
    ) -> None:
        self.table = table if table is not None else AtomTable()
        table = self.table
        rules = index.rules
        n = len(rules)
        self.n_rules = n
        self.heads = array("l", (table.literal_id(r.head) for r in rules))
        self.body_sizes = array("l", index.body_sizes)

        body_buckets = {
            table.literal_id(lit): ids for lit, ids in index.body_watch.items()
        }
        block_buckets = {
            table.literal_id(lit): ids for lit, ids in index.block_watch.items()
        }
        n_lits = 2 * len(table)
        self.n_literals = n_lits
        self.body_watch_start, self.body_watch_rules = _csr(body_buckets, n_lits)
        self.block_watch_start, self.block_watch_rules = _csr(
            block_buckets, n_lits
        )

        contra_buckets = {
            j: [(i << 1) | int(is_overruler) for i, is_overruler in watchers]
            for j, watchers in enumerate(index.contradiction_watch)
            if watchers
        }
        self.contra_start, self.contra_watchers = _csr(contra_buckets, n)

        self.init_live_overrulers = array(
            "l", (len(ids) for ids in index.overrulers)
        )
        self.init_live_defeaters = array(
            "l", (len(ids) for ids in index.defeaters)
        )
        self.source_facts = array(
            "l", (i for i, size in enumerate(index.body_sizes) if size == 0)
        )

    def __len__(self) -> int:
        return self.n_rules

    def body_watchers(self, literal_id: int) -> array:
        """Rule ids watching the literal in their bodies (tests/debug)."""
        s, e = (
            self.body_watch_start[literal_id],
            self.body_watch_start[literal_id + 1],
        )
        return self.body_watch_rules[s:e]

    def block_watchers(self, literal_id: int) -> array:
        """Rule ids blocked when the literal is derived (tests/debug)."""
        s, e = (
            self.block_watch_start[literal_id],
            self.block_watch_start[literal_id + 1],
        )
        return self.block_watch_rules[s:e]
