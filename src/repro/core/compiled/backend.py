"""Bitset backends for the dense evaluation path.

A 3-valued interpretation over ``n`` atoms is stored as **paired
bitsets**: one bit-vector for the atoms that are true and one for the
atoms that are false; an atom with neither bit set is undefined.  The
words are 64-bit: numpy ``uint64`` arrays under the ``numpy`` backend
(installed via the ``repro[fast]`` extra), stdlib ``array('Q')`` under
the always-available ``python`` fallback.

Backend selection is import-guarded — importing this module never
requires numpy.  The active backend is chosen once at import time from
the ``REPRO_DENSE_BACKEND`` environment variable (``auto`` | ``numpy``
| ``python``, default ``auto``: numpy when importable) and can be
overridden per-scope with :func:`use_backend` (tests use this to run
the paper suites on the pure-python fallback even when numpy is
present).

Both backends implement the same small surface (:func:`make_words`,
:func:`popcount`, :func:`set_indices`, :func:`indices`) and produce
bit-identical results — enforced by the dense differential sweep in
``tests/properties/test_dense_differential.py``.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterable, Iterator, Optional, Sequence

try:  # pragma: no cover - exercised via the numpy backend tests
    import numpy as _np
except ImportError:  # pragma: no cover - the numpy-less environment
    _np = None

__all__ = [
    "available_backends",
    "backend_name",
    "use_backend",
    "make_words",
    "set_indices",
    "popcount",
    "indices",
    "PairedBitsets",
]

_ENV_VAR = "REPRO_DENSE_BACKEND"


def available_backends() -> tuple[str, ...]:
    """The backends importable in this environment."""
    return ("numpy", "python") if _np is not None else ("python",)


def _resolve(requested: str) -> str:
    if requested == "auto":
        return "numpy" if _np is not None else "python"
    if requested not in ("numpy", "python"):
        raise ValueError(
            f"unknown dense backend {requested!r}; "
            "expected 'auto', 'numpy' or 'python'"
        )
    if requested == "numpy" and _np is None:
        raise RuntimeError(
            "the numpy dense backend was requested but numpy is not "
            "installed; install the repro[fast] extra or use the "
            "'python' backend"
        )
    return requested


_active = _resolve(os.environ.get(_ENV_VAR, "auto"))


def backend_name() -> str:
    """The active backend: ``"numpy"`` or ``"python"``."""
    return _active


@contextmanager
def use_backend(name: str) -> Iterator[str]:
    """Force a backend within a scope (mainly for tests and benchmarks).

    >>> with use_backend("python") as active:
    ...     assert active == "python"
    """
    global _active
    previous = _active
    _active = _resolve(name)
    try:
        yield _active
    finally:
        _active = previous


# ----------------------------------------------------------------------
# Word-array primitives.  The hot fixpoint kernel addresses single bits
# through plain Python int arithmetic (word = i >> 6, mask = 1 << (i &
# 63)) because per-element indexing is faster on stdlib arrays than on
# numpy scalars; the numpy backend earns its keep on the *bulk* ops —
# population counts and set-bit enumeration at the model boundary.
# ----------------------------------------------------------------------


def make_words(nbits: int, backend: Optional[str] = None):
    """A zeroed word array covering ``nbits`` bits."""
    nwords = (nbits + 63) >> 6
    if (backend or _active) == "numpy":
        return _np.zeros(nwords, dtype=_np.uint64)
    from array import array

    return array("Q", bytes(8 * nwords))


def set_indices(words, bit_indices: Iterable[int]) -> None:
    """Set the given bits (in place)."""
    for i in bit_indices:
        words[i >> 6] |= 1 << (i & 63)


def popcount(words) -> int:
    """The number of set bits."""
    if _np is not None and isinstance(words, _np.ndarray):
        if hasattr(_np, "bitwise_count"):  # numpy >= 2.0
            return int(_np.bitwise_count(words).sum())
        return int(
            _np.unpackbits(words.view(_np.uint8)).sum()
        )  # pragma: no cover - numpy < 2.0
    return sum(int(w).bit_count() for w in words)


def indices(words) -> Iterator[int]:
    """The set bit positions, ascending."""
    if _np is not None and isinstance(words, _np.ndarray):
        bits = _np.unpackbits(words.view(_np.uint8), bitorder="little")
        yield from (int(i) for i in _np.nonzero(bits)[0])
        return
    for wi, w in enumerate(words):
        w = int(w)
        base = wi << 6
        while w:
            low = w & -w
            yield base + low.bit_length() - 1
            w ^= low


class PairedBitsets:
    """A 3-valued interpretation over dense atom ids as two bit-vectors.

    ``true_words[a]``/``false_words[a]`` record atoms that are true /
    false; neither bit set means undefined (the paper's ``Ī``).  The
    pair is the compiled engine's model representation — object
    :class:`~repro.core.interpretation.Interpretation` views are only
    materialized from it lazily at the API boundary.
    """

    __slots__ = ("n_atoms", "true_words", "false_words")

    def __init__(self, n_atoms: int, backend: Optional[str] = None) -> None:
        self.n_atoms = n_atoms
        self.true_words = make_words(n_atoms, backend)
        self.false_words = make_words(n_atoms, backend)

    @classmethod
    def from_literal_ids(
        cls,
        literal_ids: Sequence[int],
        n_atoms: int,
        backend: Optional[str] = None,
    ) -> "PairedBitsets":
        """Build from literal ids (``atom_id * 2 + negated``)."""
        pair = cls(n_atoms, backend)
        set_indices(pair.true_words, (i >> 1 for i in literal_ids if not i & 1))
        set_indices(pair.false_words, (i >> 1 for i in literal_ids if i & 1))
        return pair

    def is_true(self, atom_id: int) -> bool:
        return bool(self.true_words[atom_id >> 6] & (1 << (atom_id & 63)))

    def is_false(self, atom_id: int) -> bool:
        return bool(self.false_words[atom_id >> 6] & (1 << (atom_id & 63)))

    def true_count(self) -> int:
        return popcount(self.true_words)

    def false_count(self) -> int:
        return popcount(self.false_words)

    def __len__(self) -> int:
        return self.true_count() + self.false_count()

    def literal_ids(self) -> Iterator[int]:
        """Member literal ids, positives then negatives, ascending."""
        yield from (a << 1 for a in indices(self.true_words))
        yield from ((a << 1) | 1 for a in indices(self.false_words))

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return (
            f"PairedBitsets({self.true_count()}T/{self.false_count()}F "
            f"over {self.n_atoms} atoms)"
        )
