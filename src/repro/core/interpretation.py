"""Three-valued interpretations (Section 2 of the paper).

An *interpretation* for a program with Herbrand base ``B`` is any
consistent subset of ``B ∪ ¬B``.  A ground literal is **true** iff it is
a member of the interpretation; atoms for which neither ``A`` nor ``¬A``
is a member are **undefined** (the paper's ``Ī``).  The truth values
order ``F < U < T`` and the value of a conjunction is the minimum of the
values of its literals (Section 3, following [P3]).

Interpretations can be built two ways.  The eager constructor validates
its members (ground, consistent, inside the base) — the right behaviour
at API boundaries where the literals come from callers.  The
:meth:`Interpretation.deferred` path instead wraps a thunk from a
producer that *guarantees* those invariants (the dense fixpoint kernel
derives ids that are consistent by construction) and materializes the
member set only when something actually reads it; until then the object
costs two attribute slots.
"""

from __future__ import annotations

import enum
from typing import AbstractSet, Callable, Iterable, Iterator, Optional

from ..lang.errors import InconsistencyError
from ..lang.literals import Atom, Literal

__all__ = ["TruthValue", "Interpretation"]


class TruthValue(enum.IntEnum):
    """The three truth values, ordered ``FALSE < UNDEFINED < TRUE``."""

    FALSE = 0
    UNDEFINED = 1
    TRUE = 2

    def __str__(self) -> str:
        return {0: "F", 1: "U", 2: "T"}[int(self)]


class Interpretation:
    """An immutable, consistent set of ground literals over a base.

    Args:
        literals: the member literals.  Must be ground and consistent.
        base: the Herbrand base (set of ground *atoms*).  Every member
            literal's atom must belong to the base.  When omitted, the
            base defaults to the atoms of the member literals (handy in
            tests, but note that ``undefined_atoms`` is then empty unless
            a wider base is given).
    """

    __slots__ = ("_literals", "_base", "_hash", "_thunk")

    def __init__(
        self,
        literals: Iterable[Literal] = (),
        base: Optional[AbstractSet[Atom]] = None,
    ) -> None:
        members = frozenset(literals)
        for l in members:
            if not isinstance(l, Literal):
                raise TypeError(f"interpretation members must be literals: {l!r}")
            if not l.is_ground:
                raise ValueError(f"interpretation members must be ground: {l}")
            if l.complement() in members:
                raise InconsistencyError(
                    f"inconsistent interpretation: both {l} and {l.complement()}"
                )
        atom_set = frozenset(l.atom for l in members)
        if base is None:
            full_base = atom_set
        else:
            full_base = frozenset(base)
            missing = atom_set - full_base
            if missing:
                raise ValueError(
                    f"literals outside the base: {sorted(map(str, missing))}"
                )
        object.__setattr__(self, "_literals", members)
        object.__setattr__(self, "_base", full_base)
        object.__setattr__(self, "_hash", None)
        object.__setattr__(self, "_thunk", None)

    @classmethod
    def deferred(
        cls,
        thunk: Callable[[], Iterable[Literal]],
        base: AbstractSet[Atom],
    ) -> "Interpretation":
        """An interpretation whose members are produced lazily.

        The thunk is called at most once, on first read.  The producer
        is trusted to yield ground, mutually consistent literals whose
        atoms lie inside ``base`` — the eager validation is skipped, so
        this path is reserved for internal engines whose output is
        consistent by construction (the fixpoint kernel raises
        :class:`~repro.lang.errors.InconsistencyError` itself rather
        than emitting an inconsistent delta).
        """
        self = cls.__new__(cls)
        object.__setattr__(self, "_literals", None)
        object.__setattr__(self, "_base", frozenset(base))
        object.__setattr__(self, "_hash", None)
        object.__setattr__(self, "_thunk", thunk)
        return self

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("Interpretation is immutable")

    def _members(self) -> frozenset[Literal]:
        members = self._literals
        if members is None:
            members = frozenset(self._thunk())
            object.__setattr__(self, "_literals", members)
            object.__setattr__(self, "_thunk", None)
        return members

    # ------------------------------------------------------------------
    # Membership and valuation
    # ------------------------------------------------------------------
    @property
    def literals(self) -> frozenset[Literal]:
        return self._members()

    @property
    def base(self) -> frozenset[Atom]:
        return self._base

    def __contains__(self, literal: object) -> bool:
        return literal in self._members()

    def __iter__(self) -> Iterator[Literal]:
        return iter(self._members())

    def __len__(self) -> int:
        return len(self._members())

    def value(self, literal: Literal) -> TruthValue:
        """The value of a ground literal: T if a member, F if its
        complement is a member, U otherwise."""
        members = self._members()
        if literal in members:
            return TruthValue.TRUE
        if literal.complement() in members:
            return TruthValue.FALSE
        return TruthValue.UNDEFINED

    def value_of_atom(self, atom: Atom) -> TruthValue:
        return self.value(Literal(atom, True))

    def conjunction_value(self, literals: Iterable[Literal]) -> TruthValue:
        """``value(J) = min over the literals`` — and T for the empty
        conjunction (Section 3)."""
        result = TruthValue.TRUE
        for l in literals:
            v = self.value(l)
            if v < result:
                result = v
                if result is TruthValue.FALSE:
                    break
        return result

    # ------------------------------------------------------------------
    # The paper's derived sets
    # ------------------------------------------------------------------
    def undefined_atoms(self) -> frozenset[Atom]:
        """``Ī``: the base atoms with neither ``A`` nor ``¬A`` assigned."""
        defined = frozenset(l.atom for l in self._members())
        return self._base - defined

    @property
    def is_total(self) -> bool:
        """Total interpretations assign a value to every base atom."""
        return not self.undefined_atoms()

    def positive_part(self) -> frozenset[Literal]:
        """``I+``: the positive member literals."""
        return frozenset(l for l in self._members() if l.positive)

    def negative_part(self) -> frozenset[Literal]:
        """``I-``: the negative member literals."""
        return frozenset(l for l in self._members() if not l.positive)

    def true_atoms(self) -> frozenset[Atom]:
        return frozenset(l.atom for l in self._members() if l.positive)

    def false_atoms(self) -> frozenset[Atom]:
        return frozenset(l.atom for l in self._members() if not l.positive)

    # ------------------------------------------------------------------
    # Construction of variants
    # ------------------------------------------------------------------
    def with_literals(self, extra: Iterable[Literal]) -> "Interpretation":
        """A new interpretation with extra literals added (atoms outside
        the base widen the base)."""
        members = self._members() | frozenset(extra)
        base = self._base | frozenset(l.atom for l in members)
        return Interpretation(members, base)

    def without_literals(self, removed: Iterable[Literal]) -> "Interpretation":
        return Interpretation(self._members() - frozenset(removed), self._base)

    def restricted_to(self, atoms: AbstractSet[Atom]) -> "Interpretation":
        """The interpretation restricted to a sub-base."""
        keep = frozenset(l for l in self._members() if l.atom in atoms)
        return Interpretation(keep, frozenset(atoms))

    def with_base(self, base: AbstractSet[Atom]) -> "Interpretation":
        """The same literals over a (usually wider) base."""
        members = self._members()
        return Interpretation(
            members, frozenset(base) | frozenset(l.atom for l in members)
        )

    # ------------------------------------------------------------------
    # Set-like comparisons (on literal sets; the base does not compare)
    # ------------------------------------------------------------------
    def issubset(self, other: "Interpretation") -> bool:
        return self._members() <= other._members()

    def __le__(self, other: "Interpretation") -> bool:
        return self._members() <= other._members()

    def __lt__(self, other: "Interpretation") -> bool:
        return self._members() < other._members()

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Interpretation)
            and other._members() == self._members()
            and other._base == self._base
        )

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = hash(("interp", self._members(), self._base))
            object.__setattr__(self, "_hash", h)
        return h

    def __str__(self) -> str:
        inner = ", ".join(str(l) for l in sorted(self._members()))
        return "{" + inner + "}"

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return f"Interpretation({self}, |base|={len(self._base)})"
