"""The paper's primary contribution: the semantics of ordered programs.

* :mod:`repro.core.interpretation` — 3-valued interpretations.
* :mod:`repro.core.statuses` — Definition 2 rule statuses.
* :mod:`repro.core.transform` — the ``V_{P,C}`` transformation.
* :mod:`repro.core.incremental` — semi-naive delta-driven fixpoints.
* :mod:`repro.core.maintenance` — assert/retract model maintenance.
* :mod:`repro.core.models` — Definition 3 model checking.
* :mod:`repro.core.assumptions` — assumption sets, enabled version.
* :mod:`repro.core.solver` — model / AF / stable enumeration.
* :mod:`repro.core.semantics` — the :class:`OrderedSemantics` facade.
"""

from .assumptions import AssumptionAnalyzer, literal_closure
from .incremental import RuleIndex, SemiNaiveFixpoint
from .interpretation import Interpretation, TruthValue
from .maintenance import (
    DeltaStats,
    DeltaUnsupported,
    MaintainedModel,
    MaintenanceConfig,
)
from .models import ModelChecker
from .semantics import OrderedSemantics
from .solver import ModelEnumerator, SearchBudget
from .statuses import ComponentOrder, StatusEvaluator, StatusReport
from .transform import DEFAULT_STRATEGY, STRATEGIES, OrderedTransform

__all__ = [
    "Interpretation",
    "TruthValue",
    "ComponentOrder",
    "StatusEvaluator",
    "StatusReport",
    "OrderedTransform",
    "RuleIndex",
    "SemiNaiveFixpoint",
    "MaintainedModel",
    "MaintenanceConfig",
    "DeltaStats",
    "DeltaUnsupported",
    "STRATEGIES",
    "DEFAULT_STRATEGY",
    "ModelChecker",
    "AssumptionAnalyzer",
    "literal_closure",
    "ModelEnumerator",
    "SearchBudget",
    "OrderedSemantics",
]
