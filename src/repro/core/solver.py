"""Model enumeration for ground ordered programs.

Enumerating models is exponential in the worst case (the paper notes
that finding a total model is hard even for seminegative programs), so
the enumerator is an explicit-budget backtracking search rather than a
polynomial pretender:

* :meth:`ModelEnumerator.models` — all Definition-3 models.  Branches
  three ways (true / false / undefined) over every base atom, pruning
  branches that already violate condition (a) restricted to decided
  atoms.
* :meth:`ModelEnumerator.assumption_free_models` — branches only over
  *head* atoms: by Theorem 1(a) every literal of an assumption-free
  model is the head of an applied rule, so atoms that head no rule are
  necessarily undefined, and a sign is only tried when some rule
  actually derives it.
* :meth:`ModelEnumerator.stable_models` — the maximal assumption-free
  models (Definition 9).

Budgets are enforced up front (estimated leaf count) and during the
search (visited leaves); exceeding either raises
:class:`~repro.lang.errors.SearchBudgetExceeded`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from ..lang.errors import SearchBudgetExceeded
from ..lang.literals import Atom, Literal
from ..obs import Level, get_instrumentation
from .assumptions import AssumptionAnalyzer
from .interpretation import Interpretation
from .models import ModelChecker
from .statuses import StatusEvaluator
from .transform import DEFAULT_STRATEGY, OrderedTransform

__all__ = ["SearchBudget", "ModelEnumerator"]


@dataclass(frozen=True)
class SearchBudget:
    """Limits for enumeration.

    Attributes:
        max_leaves: upper bound on the *estimated* number of leaves of
            the search tree — refuse to start a search bigger than this.
        max_visited: upper bound on leaves actually visited.
    """

    max_leaves: int = 50_000_000
    max_visited: int = 5_000_000


class ModelEnumerator:
    """Backtracking enumeration over a fixed evaluator/base."""

    def __init__(
        self,
        evaluator: StatusEvaluator,
        base,
        budget: SearchBudget = SearchBudget(),
        strategy: str = DEFAULT_STRATEGY,
    ) -> None:
        self._eval = evaluator
        self._base = frozenset(base)
        self._checker = ModelChecker(evaluator, self._base)
        self._analyzer = AssumptionAnalyzer(evaluator, self._base)
        self._budget = budget
        self._transform = OrderedTransform(evaluator, self._base, strategy=strategy)
        self._least: Optional[Interpretation] = None

    def _least_model(self) -> Interpretation:
        """``V↑ω(∅)`` — by Theorem 1(b) it is contained in every model,
        so its literals can be fixed up-front and the search branches
        only over the atoms it leaves undefined.

        Computed through the enumerator's one transform, so every
        fixpoint the search triggers shares the evaluator's semi-naive
        :class:`~repro.core.incremental.RuleIndex` instead of
        rebuilding watch lists per call.
        """
        if self._least is None:
            self._least = self._transform.least_fixpoint()
        return self._least

    # ------------------------------------------------------------------
    # Raw interpretation space
    # ------------------------------------------------------------------
    def interpretations(self) -> Iterator[Interpretation]:
        """Every interpretation over the base (3^n of them) — intended
        for exhaustive property checks on small programs."""
        atoms = sorted(self._base, key=str)
        self._check_estimate(3 ** len(atoms))
        yield from self._expand(atoms, 0, [])

    def candidate_models(self) -> Iterator[Interpretation]:
        """Every interpretation that *could* be a model: by Theorem 1(b)
        all models contain the least model, so its literals are fixed
        and only the atoms it leaves undefined are branched 3-ways."""
        least = self._least_model()
        atoms = sorted(least.undefined_atoms(), key=str)
        self._check_estimate(3 ** len(atoms))
        yield from self._expand(atoms, 0, list(least.literals))

    def _expand(
        self, atoms: list[Atom], index: int, chosen: list[Literal]
    ) -> Iterator[Interpretation]:
        if index == len(atoms):
            yield Interpretation(chosen, self._base)
            return
        atom = atoms[index]
        yield from self._expand(atoms, index + 1, chosen)
        chosen.append(Literal(atom, True))
        yield from self._expand(atoms, index + 1, chosen)
        chosen[-1] = Literal(atom, False)
        yield from self._expand(atoms, index + 1, chosen)
        chosen.pop()

    # ------------------------------------------------------------------
    # Models (Definition 3)
    # ------------------------------------------------------------------
    def models(self, limit: Optional[int] = None) -> list[Interpretation]:
        """All models for ``P`` in ``C`` (optionally at most ``limit``)."""
        obs = get_instrumentation()
        found: list[Interpretation] = []
        visited = 0
        try:
            with obs.span("search.models"):
                for interp in self.candidate_models():
                    visited += 1
                    if visited > self._budget.max_visited:
                        raise self._budget_exhausted(
                            "model enumeration", visited - 1
                        )
                    if self._checker.is_model(interp):
                        found.append(interp)
                        if limit is not None and len(found) >= limit:
                            break
        finally:
            obs.count("search.leaves_visited", visited)
            obs.count("search.models_found", len(found))
        return found

    def total_models(self) -> list[Interpretation]:
        return [m for m in self.models() if m.is_total]

    def exhaustive_models(self) -> list[Interpretation]:
        """Models with no proper model superset (Definition 5b)."""
        all_models = self.models()
        literal_sets = [m.literals for m in all_models]
        result = []
        for m in all_models:
            if not any(m.literals < other for other in literal_sets):
                result.append(m)
        return result

    # ------------------------------------------------------------------
    # Assumption-free and stable models
    # ------------------------------------------------------------------
    def _head_choices(self) -> list[tuple[Atom, list[Optional[Literal]]]]:
        """Per-atom decision lists for AF-model search.

        Three sound restrictions compose:

        * only atoms *undefined in the least model* are branched
          (Theorem 1(b) fixes the rest);
        * a sign is only offered when it heads at least one ground rule
          (every AF-model literal is the head of an applied rule,
          Theorem 1(a));
        * a sign is only offered when it lies in the literal closure of
          *all* ground rules — an AF model is ``T↑ω`` of its enabled
          rules, which is contained in ``T↑ω`` of all rules, so
          literals outside that closure can never be T-supported.
        """
        from .assumptions import literal_closure

        undecided = self._least_model().undefined_atoms()
        possible = literal_closure(self._eval.rules)
        positive_heads: set[Atom] = set()
        negative_heads: set[Atom] = set()
        for r in self._eval.rules:
            if r.head.atom not in undecided:
                continue
            if r.head not in possible:
                continue
            if r.head.positive:
                positive_heads.add(r.head.atom)
            else:
                negative_heads.add(r.head.atom)
        choices = []
        for atom in sorted(positive_heads | negative_heads, key=str):
            options: list[Optional[Literal]] = [None]
            if atom in positive_heads:
                options.append(Literal(atom, True))
            if atom in negative_heads:
                options.append(Literal(atom, False))
            choices.append((atom, options))
        return choices

    def assumption_free_models(
        self, limit: Optional[int] = None
    ) -> list[Interpretation]:
        """All assumption-free models (Definition 7)."""
        obs = get_instrumentation()
        choices = self._head_choices()
        estimate = 1
        for _, options in choices:
            estimate *= len(options)
        self._check_estimate(estimate)
        if obs.enabled:
            obs.gauge("search.branch_atoms", len(choices))
            obs.gauge("search.estimated_leaves", estimate)
        found: list[Interpretation] = []
        visited = 0
        branches = 0
        backtracks = 0
        seed = list(self._least_model().literals)

        def recurse(index: int, chosen: list[Literal]) -> bool:
            nonlocal visited, branches, backtracks
            if index == len(choices):
                visited += 1
                if visited > self._budget.max_visited:
                    raise self._budget_exhausted("AF-model search", visited - 1)
                interp = Interpretation(chosen, self._base)
                if self._checker.is_model(interp) and self._analyzer.is_assumption_free(
                    interp
                ):
                    found.append(interp)
                    if limit is not None and len(found) >= limit:
                        return True
                return False
            for option in choices[index][1]:
                branches += 1
                if option is None:
                    if recurse(index + 1, chosen):
                        return True
                else:
                    chosen.append(option)
                    if recurse(index + 1, chosen):
                        return True
                    chosen.pop()
                    backtracks += 1
            return False

        try:
            with obs.span("search.af_models"):
                recurse(0, seed)
        finally:
            obs.count("search.branches", branches)
            obs.count("search.backtracks", backtracks)
            obs.count("search.leaves_visited", visited)
            obs.count("search.models_found", len(found))
        return found

    def stable_models(self) -> list[Interpretation]:
        """Maximal assumption-free models (Definition 9)."""
        af_models = self.assumption_free_models()
        literal_sets = [m.literals for m in af_models]
        return [
            m
            for m in af_models
            if not any(m.literals < other for other in literal_sets)
        ]

    def least_model_check(self, candidate: Interpretation) -> bool:
        """True when ``candidate`` is contained in every model —
        a direct (exponential) verification of Theorem 1(b)."""
        return all(candidate.literals <= m.literals for m in self.models())

    # ------------------------------------------------------------------
    # Budget plumbing
    # ------------------------------------------------------------------
    def _check_estimate(self, estimate: int) -> None:
        if estimate > self._budget.max_leaves:
            obs = get_instrumentation()
            obs.count("search.budget_refusals")
            obs.event(
                "search.budget_refused",
                Level.WARN,
                estimate=estimate,
                max_leaves=self._budget.max_leaves,
            )
            raise SearchBudgetExceeded(
                f"search tree has about {estimate} leaves, over the budget "
                f"of {self._budget.max_leaves}; raise SearchBudget.max_leaves "
                "if you really want this",
                estimate=estimate,
                budget=self._budget.max_leaves,
            )

    def _budget_exhausted(self, what: str, visited: int) -> SearchBudgetExceeded:
        """Build the mid-search budget failure, reporting how far the
        search got (the ``visited`` count at the moment of failure)."""
        obs = get_instrumentation()
        obs.count("search.budget_exhaustions")
        obs.event(
            "search.budget_exhausted",
            Level.WARN,
            search=what,
            visited=visited,
            max_visited=self._budget.max_visited,
        )
        return SearchBudgetExceeded(
            f"{what} exceeded the visit budget after {visited} of at most "
            f"{self._budget.max_visited} visited candidates; raise "
            "SearchBudget.max_visited if you really want this",
            visited=visited,
            budget=self._budget.max_visited,
        )
