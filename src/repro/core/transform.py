"""The ordered immediate transformation ``V_{P,C}`` (Definition 4).

``V(I) = { H(r) | r ∈ ground(C*), B(r) ⊆ I, and r is neither overruled
nor defeated w.r.t. I }``.

``V`` is monotone (Lemma 1): growing ``I`` only makes more bodies true
and blocks more potential overrulers/defeaters, never the reverse.  Its
least fixpoint ``V↑ω(∅)`` is

* a model of ``P`` in ``C`` (Proposition 1),
* assumption-free, and
* the intersection of all models (Theorem 1b) — the *least model*.

The fixpoint is computed by naive iteration from the empty
interpretation, asserting consistency of every iterate (consistency is
an invariant: two applicable contradicting rules always overrule or
defeat one another, so at most one head survives).
"""

from __future__ import annotations

from typing import Optional

from ..lang.errors import InconsistencyError
from ..lang.literals import Literal, is_consistent
from .interpretation import Interpretation
from .statuses import StatusEvaluator

__all__ = ["OrderedTransform"]


class OrderedTransform:
    """``V_{P,C}`` over a fixed evaluator (ground rules + order)."""

    def __init__(self, evaluator: StatusEvaluator, base) -> None:
        self._eval = evaluator
        self._base = frozenset(base)

    @property
    def evaluator(self) -> StatusEvaluator:
        return self._eval

    def step(self, interp: Interpretation) -> Interpretation:
        """One application of ``V`` to an interpretation."""
        derived: set[Literal] = set()
        snapshot = self._eval.snapshot(interp)
        for r in self._eval.rules:
            if not snapshot.applicable(r):
                continue
            if snapshot.overruled(r) or snapshot.defeated(r):
                continue
            derived.add(r.head)
        if not is_consistent(derived):
            conflict = next(
                l for l in derived if l.complement() in derived
            )
            raise InconsistencyError(
                f"V produced both {conflict} and {conflict.complement()}; "
                "the input interpretation was inconsistent or the order is broken"
            )
        return Interpretation(derived, self._base)

    def least_fixpoint(self, max_iterations: Optional[int] = None) -> Interpretation:
        """``V↑ω(∅)``: iterate from the empty interpretation to a fixpoint.

        Termination is guaranteed for finite ground programs: ``V`` is
        monotone and the literal space is finite, so the iterates form a
        strictly increasing chain of length at most ``2·|base|``.
        """
        bound = max_iterations if max_iterations is not None else 2 * len(self._base) + 2
        current = Interpretation((), self._base)
        for _ in range(bound + 1):
            nxt = self.step(current)
            if nxt.literals == current.literals:
                return current
            current = nxt
        raise InconsistencyError(
            "V failed to reach a fixpoint within the iteration bound; "
            "this indicates non-monotone behaviour (a bug)"
        )

    def is_fixpoint(self, interp: Interpretation) -> bool:
        """True when ``V(I) = I``."""
        return self.step(interp).literals == interp.literals

    def is_prefixpoint(self, interp: Interpretation) -> bool:
        """True when ``V(I) ⊆ I``.

        Every model is a pre-fixpoint of ``V`` (the Theorem 1b proof
        sketch says "fixpoint", but that is an overstatement: the model
        ``{b}`` of Example 3 has ``V({b}) = ∅``; the pre-fixpoint
        property is what holds and is all Tarski needs to place the least
        fixpoint inside every model).  Used as a solver prune.
        """
        return self.step(interp).literals <= interp.literals
