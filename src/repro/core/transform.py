"""The ordered immediate transformation ``V_{P,C}`` (Definition 4).

``V(I) = { H(r) | r ∈ ground(C*), B(r) ⊆ I, and r is neither overruled
nor defeated w.r.t. I }``.

``V`` is monotone (Lemma 1): growing ``I`` only makes more bodies true
and blocks more potential overrulers/defeaters, never the reverse.  Its
least fixpoint ``V↑ω(∅)`` is

* a model of ``P`` in ``C`` (Proposition 1),
* assumption-free, and
* the intersection of all models (Theorem 1b) — the *least model*.

The fixpoint is computed by one of two interchangeable strategies
(cross-checked literal-for-literal by the differential property suite
and CI job):

* ``"seminaive"`` (the default) — the delta-driven evaluation of
  :mod:`repro.core.incremental`: each stage touches only the rules
  watching a literal of the previous stage's delta;
* ``"naive"`` — iterate ``step`` from the empty interpretation,
  rebuilding a full :class:`~repro.core.statuses.StatusSnapshot` and
  rescanning every ground rule per stage.  Kept as the executable
  reading of Definition 4 and as the differential-testing oracle.

Consistency of every iterate is asserted under both strategies
(consistency is an invariant: two applicable contradicting rules always
overrule or defeat one another, so at most one head survives).
"""

from __future__ import annotations

from typing import Optional

from ..lang.errors import InconsistencyError
from ..lang.literals import Literal, is_consistent
from ..obs import Level, get_instrumentation
from ..obs.instruments import NULL_SPAN
from .incremental import SemiNaiveFixpoint
from .interpretation import Interpretation
from .statuses import StatusEvaluator

__all__ = [
    "OrderedTransform",
    "STRATEGIES",
    "DEFAULT_STRATEGY",
    "AUTO_STRATEGY",
    "CLASSICAL_STRATEGY",
    "DEMAND_STRATEGY",
    "SEMANTICS_STRATEGIES",
    "engine_strategy",
]

#: Recognised fixpoint *engine* strategies (how ``V↑ω`` is iterated).
STRATEGIES = ("naive", "seminaive")

#: Engine strategy used when none is requested explicitly.
DEFAULT_STRATEGY = "seminaive"

#: Semantics-level strategy: route single-component stratified views to
#: the classical backend when eligible, else fall back to the default
#: engine.  See ``repro.analysis.static.classify_view``.
AUTO_STRATEGY = "auto"

#: Semantics-level strategy: *require* classical routing (raises when
#: the view is not eligible).  The differential-testing counterpart of
#: ``"auto"``.
CLASSICAL_STRATEGY = "classical"

#: Semantics-level strategy: answer queries goal-directed through the
#: magic-sets rewrite (``repro.query``) where sound, falling back to
#: materialization otherwise.  For whole-model operations it behaves
#: like ``"auto"``.  See ``docs/query.md``.
DEMAND_STRATEGY = "demand"

#: Everything ``OrderedSemantics(strategy=...)`` accepts.  The engine
#: strategies double as escape hatches that disable routing.
SEMANTICS_STRATEGIES = (
    AUTO_STRATEGY,
    CLASSICAL_STRATEGY,
    DEMAND_STRATEGY,
    *STRATEGIES,
)


def validate_strategy(strategy: str) -> str:
    if strategy not in STRATEGIES:
        raise ValueError(
            f"unknown fixpoint strategy {strategy!r}; "
            f"expected one of {', '.join(STRATEGIES)}"
        )
    return strategy


def validate_semantics_strategy(strategy: str) -> str:
    if strategy not in SEMANTICS_STRATEGIES:
        raise ValueError(
            f"unknown fixpoint strategy {strategy!r}; "
            f"expected one of {', '.join(SEMANTICS_STRATEGIES)}"
        )
    return strategy


def engine_strategy(strategy: str) -> str:
    """The engine strategy backing a semantics-level strategy: the
    routing strategies fall back to the default engine for everything
    the classical backend does not cover (model enumeration, statuses,
    non-routable views)."""
    validate_semantics_strategy(strategy)
    if strategy in (AUTO_STRATEGY, CLASSICAL_STRATEGY, DEMAND_STRATEGY):
        return DEFAULT_STRATEGY
    return strategy


class OrderedTransform:
    """``V_{P,C}`` over a fixed evaluator (ground rules + order).

    Args:
        evaluator: the Definition-2 status evaluator for ``ground(C*)``.
        base: the Herbrand base of ``C*``.
        strategy: default :meth:`least_fixpoint` strategy —
            ``"seminaive"`` or ``"naive"``.
    """

    def __init__(
        self,
        evaluator: StatusEvaluator,
        base,
        strategy: str = DEFAULT_STRATEGY,
    ) -> None:
        self._eval = evaluator
        self._base = frozenset(base)
        self._strategy = validate_strategy(strategy)

    @property
    def evaluator(self) -> StatusEvaluator:
        return self._eval

    @property
    def strategy(self) -> str:
        return self._strategy

    def step(self, interp: Interpretation) -> Interpretation:
        """One application of ``V`` to an interpretation."""
        derived: set[Literal] = set()
        snapshot = self._eval.snapshot(interp)
        if get_instrumentation().enabled:
            self._instrumented_scan(snapshot, derived)
        else:
            for r in self._eval.rules:
                if not snapshot.applicable(r):
                    continue
                if snapshot.overruled(r) or snapshot.defeated(r):
                    continue
                derived.add(r.head)
        if not is_consistent(derived):
            conflict = next(
                l for l in derived if l.complement() in derived
            )
            raise InconsistencyError(
                f"V produced both {conflict} and {conflict.complement()}; "
                "the input interpretation was inconsistent or the order is broken"
            )
        return Interpretation(derived, self._base)

    def _instrumented_scan(self, snapshot, derived: set[Literal]) -> None:
        """The ``step`` rule scan with a Definition-2 status breakdown.

        Kept separate from the plain loop so that disabled
        instrumentation costs exactly one ``enabled`` check per step.
        Note ``overruled``/``defeated`` are both evaluated here (no
        short-circuit), which is what the breakdown requires.
        """
        obs = get_instrumentation()
        blocked = overruled = defeated = applied = inert = 0
        for r in self._eval.rules:
            if not snapshot.applicable(r):
                if snapshot.blocked(r):
                    blocked += 1
                else:
                    inert += 1
                continue
            r_overruled = snapshot.overruled(r)
            r_defeated = snapshot.defeated(r)
            if r_overruled:
                overruled += 1
            if r_defeated:
                defeated += 1
            if not r_overruled and not r_defeated:
                derived.add(r.head)
                applied += 1
        obs.count("fixpoint.rules_scanned", len(self._eval.rules))
        obs.count("fixpoint.rules_applied", applied)
        obs.count("fixpoint.rules_blocked", blocked)
        obs.count("fixpoint.rules_overruled", overruled)
        obs.count("fixpoint.rules_defeated", defeated)
        obs.count("fixpoint.rules_inert", inert)

    def least_fixpoint(
        self,
        max_iterations: Optional[int] = None,
        strategy: Optional[str] = None,
    ) -> Interpretation:
        """``V↑ω(∅)``: iterate from the empty interpretation to a fixpoint.

        Termination is guaranteed for finite ground programs: ``V`` is
        monotone and the literal space is finite, so the iterates form a
        strictly increasing chain of length at most ``2·|base|``.

        Args:
            max_iterations: override the stage bound (mainly for tests).
            strategy: override the transform's default strategy for this
                call only.
        """
        chosen = (
            self._strategy if strategy is None else validate_strategy(strategy)
        )
        obs = get_instrumentation()
        if chosen == "seminaive":
            run = SemiNaiveFixpoint(self._eval.index, self._base)
            # span() hands back NULL_SPAN only when the registry is off
            # AND no trace context is active — the true zero-cost path.
            span = obs.span("fixpoint", rules=len(self._eval.rules), strategy=chosen)
            if span is NULL_SPAN:
                return run.run(max_iterations)
            with span:
                result = run.run(max_iterations)
                obs.gauge("fixpoint.least_model_size", len(result.literals))
                obs.event(
                    "fixpoint.converged",
                    Level.INFO,
                    stages=len(run.stage_deltas),
                    literals=len(result.literals),
                )
            return result
        return self._naive_least_fixpoint(max_iterations)

    def _naive_least_fixpoint(
        self, max_iterations: Optional[int] = None
    ) -> Interpretation:
        """The ``"naive"`` strategy: repeated full applications of
        :meth:`step` — the differential oracle for the semi-naive path."""
        bound = max_iterations if max_iterations is not None else 2 * len(self._base) + 2
        obs = get_instrumentation()
        if not obs.enabled:
            current = Interpretation((), self._base)
            for _ in range(bound + 1):
                nxt = self.step(current)
                if nxt.literals == current.literals:
                    return current
                current = nxt
        else:
            with obs.span(
                "fixpoint", rules=len(self._eval.rules), strategy="naive"
            ):
                current = Interpretation((), self._base)
                for stage in range(1, bound + 2):
                    nxt = self.step(current)
                    new = len(nxt.literals - current.literals)
                    if nxt.literals == current.literals:
                        obs.gauge("fixpoint.least_model_size", len(current.literals))
                        obs.event(
                            "fixpoint.converged",
                            Level.INFO,
                            stages=stage - 1,
                            literals=len(current.literals),
                        )
                        return current
                    obs.count("fixpoint.stages")
                    obs.count("fixpoint.literals_derived", new)
                    obs.observe("fixpoint.stage_literals", new)
                    obs.event(
                        "fixpoint.stage", Level.DEBUG, stage=stage, new_literals=new
                    )
                    current = nxt
        raise InconsistencyError(
            "V failed to reach a fixpoint within the iteration bound; "
            "this indicates non-monotone behaviour (a bug)"
        )

    def is_fixpoint(self, interp: Interpretation) -> bool:
        """True when ``V(I) = I``."""
        return self.step(interp).literals == interp.literals

    def is_prefixpoint(self, interp: Interpretation) -> bool:
        """True when ``V(I) ⊆ I``.

        Every model is a pre-fixpoint of ``V`` (the Theorem 1b proof
        sketch says "fixpoint", but that is an overstatement: the model
        ``{b}`` of Example 3 has ``V({b}) = ∅``; the pre-fixpoint
        property is what holds and is all Tarski needs to place the least
        fixpoint inside every model).  Used as a solver prune.
        """
        return self.step(interp).literals <= interp.literals
