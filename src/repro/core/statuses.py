"""Rule statuses — Definition 2 of the paper.

Given an interpretation ``I`` for ``P`` in component ``C``, a rule ``r``
in ``ground(C*)`` is

* **applicable** if ``B(r) ⊆ I``;
* **applied** if applicable and ``H(r) ∈ I``;
* **blocked** if some ``A ∈ B(r)`` has ``¬A ∈ I``;
* **overruled** if a *non-blocked* rule ``r̂`` with ``H(r̂) = ¬H(r)``
  exists in a component *strictly below* ``C(r)``;
* **defeated** if a *non-blocked* rule ``r̂`` with ``H(r̂) = ¬H(r)``
  exists in a component *incomparable to or equal to* ``C(r)``.

Definition 3(a) additionally asks whether a contradicting rule is
"overruled by an *applied* rule", so the evaluator exposes both the plain
Definition-2 ``overruled`` and the stronger ``overruled_by_applied``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator, Optional

from ..grounding.grounder import AtomTable, GroundRule
from ..lang.literals import Literal
from ..lang.poset import PartialOrder
from .interpretation import Interpretation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .incremental import RuleIndex

__all__ = ["ComponentOrder", "StatusReport", "StatusEvaluator", "StatusSnapshot"]


class ComponentOrder:
    """Comparability of components, as the statuses need it.

    Wraps the program's :class:`~repro.lang.poset.PartialOrder`; a
    flattened program (one component, empty order) compares every rule as
    *equal component*, which is exactly the paper's Example 2 behaviour
    (mutual defeat).
    """

    __slots__ = ("_poset",)

    def __init__(self, poset: PartialOrder) -> None:
        self._poset = poset

    def strictly_below(self, a: str, b: str) -> bool:
        """``a < b``: a is more specific than b."""
        return self._poset.less(a, b)

    def incomparable_or_equal(self, a: str, b: str) -> bool:
        """The defeat condition of Definition 2: ``a <> b`` or ``a = b``."""
        return a == b or self._poset.incomparable(a, b)


@dataclass(frozen=True)
class StatusReport:
    """All five Definition-2 statuses of one rule at once, plus the
    Definition-3(a) refinement.  Handy for tests and for the CLI's
    ``explain`` output."""

    rule: GroundRule
    applicable: bool
    applied: bool
    blocked: bool
    overruled: bool
    defeated: bool
    overruled_by_applied: bool

    def __str__(self) -> str:
        flags = [
            name
            for name, value in (
                ("applicable", self.applicable),
                ("applied", self.applied),
                ("blocked", self.blocked),
                ("overruled", self.overruled),
                ("defeated", self.defeated),
            )
            if value
        ]
        return f"{self.rule}  [{', '.join(flags) if flags else 'inert'}]"


class StatusEvaluator:
    """Evaluates Definition-2 statuses over a fixed set of ground rules.

    The evaluator indexes rules by head literal so that the "does a
    contradicting rule exist below / beside me" queries are a lookup over
    the (usually short) list of rules with the complementary head.
    """

    def __init__(
        self,
        rules: Iterable[GroundRule],
        order: ComponentOrder,
        atom_table: Optional["AtomTable"] = None,
    ) -> None:
        self._rules = tuple(rules)
        self._order = order
        self._by_head: dict[Literal, list[GroundRule]] = {}
        self._index: Optional["RuleIndex"] = None
        #: The grounding-time atom table, when the caller has one — the
        #: compiled watch-list index reuses its dense ids instead of
        #: re-interning every literal.
        self.atom_table = atom_table
        for r in self._rules:
            self._by_head.setdefault(r.head, []).append(r)

    @property
    def rules(self) -> tuple[GroundRule, ...]:
        return self._rules

    @property
    def order(self) -> ComponentOrder:
        return self._order

    def rules_with_head(self, head: Literal) -> tuple[GroundRule, ...]:
        return tuple(self._by_head.get(head, ()))

    @property
    def index(self) -> "RuleIndex":
        """The semi-naive watch-list index over these rules.

        Built lazily on first use and cached for the evaluator's
        lifetime, so repeated fixpoints (the solver visits one per
        search tree, the reductions one per reduced program) share a
        single index.
        """
        if self._index is None:
            from .incremental import RuleIndex

            self._index = RuleIndex(self)
        return self._index

    # ------------------------------------------------------------------
    # Definition 2
    # ------------------------------------------------------------------
    @staticmethod
    def applicable(r: GroundRule, interp: Interpretation) -> bool:
        """``B(r) ⊆ I``."""
        return all(l in interp for l in r.body)

    @staticmethod
    def applied(r: GroundRule, interp: Interpretation) -> bool:
        """Applicable with the head also in ``I``."""
        return r.head in interp and all(l in interp for l in r.body)

    @staticmethod
    def blocked(r: GroundRule, interp: Interpretation) -> bool:
        """Some body literal's complement is in ``I``."""
        return any(l.complement() in interp for l in r.body)

    def contradictors(self, r: GroundRule) -> tuple[GroundRule, ...]:
        """Rules with head ``¬H(r)`` (in any component)."""
        return self.rules_with_head(r.head.complement())

    def overruled(self, r: GroundRule, interp: Interpretation) -> bool:
        """A non-blocked contradicting rule exists strictly below."""
        return any(
            self._order.strictly_below(other.component, r.component)
            and not self.blocked(other, interp)
            for other in self.contradictors(r)
        )

    def overruled_by_applied(self, r: GroundRule, interp: Interpretation) -> bool:
        """Definition 3(a)'s stronger test: the overruler is *applied*."""
        return any(
            self._order.strictly_below(other.component, r.component)
            and self.applied(other, interp)
            for other in self.contradictors(r)
        )

    def defeated(self, r: GroundRule, interp: Interpretation) -> bool:
        """A non-blocked contradicting rule exists in an incomparable or
        equal component."""
        return any(
            self._order.incomparable_or_equal(other.component, r.component)
            and not self.blocked(other, interp)
            for other in self.contradictors(r)
        )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    # ------------------------------------------------------------------
    # Batched evaluation
    # ------------------------------------------------------------------
    def snapshot(self, interp: Interpretation) -> "StatusSnapshot":
        """Precompute per-interpretation state for bulk status queries.

        ``V``'s fixpoint iteration asks ``overruled``/``defeated`` for
        every rule at every stage; the snapshot computes the blocked set
        once per interpretation and memoizes the per-(head, component)
        answers, turning each query into a dictionary lookup.
        """
        return StatusSnapshot(self, interp)

    def report(self, r: GroundRule, interp: Interpretation) -> StatusReport:
        applicable = self.applicable(r, interp)
        return StatusReport(
            rule=r,
            applicable=applicable,
            applied=applicable and r.head in interp,
            blocked=self.blocked(r, interp),
            overruled=self.overruled(r, interp),
            defeated=self.defeated(r, interp),
            overruled_by_applied=self.overruled_by_applied(r, interp),
        )

    def reports(self, interp: Interpretation) -> Iterator[StatusReport]:
        for r in self._rules:
            yield self.report(r, interp)


class StatusSnapshot:
    """Status queries against one fixed interpretation, with the
    blocked set computed once and (head, component) verdicts memoized.

    Produces identical answers to the per-call methods of
    :class:`StatusEvaluator` (cross-checked by property tests)."""

    __slots__ = ("_eval", "_interp", "_blocked", "_overruled", "_defeated")

    def __init__(self, evaluator: StatusEvaluator, interp: Interpretation) -> None:
        self._eval = evaluator
        self._interp = interp
        self._blocked = frozenset(
            r
            for r in evaluator.rules
            if any(l.complement() in interp for l in r.body)
        )
        self._overruled: dict[tuple[Literal, str], bool] = {}
        self._defeated: dict[tuple[Literal, str], bool] = {}

    def blocked(self, r: GroundRule) -> bool:
        return r in self._blocked

    def applicable(self, r: GroundRule) -> bool:
        return all(l in self._interp for l in r.body)

    def applied(self, r: GroundRule) -> bool:
        return r.head in self._interp and self.applicable(r)

    def overruled_by_applied(self, r: GroundRule) -> bool:
        order = self._eval.order
        return any(
            order.strictly_below(other.component, r.component)
            and self.applied(other)
            for other in self._eval.rules_with_head(r.head.complement())
        )

    def overruled(self, r: GroundRule) -> bool:
        key = (r.head, r.component)
        cached = self._overruled.get(key)
        if cached is None:
            order = self._eval.order
            cached = any(
                other not in self._blocked
                and order.strictly_below(other.component, r.component)
                for other in self._eval.rules_with_head(r.head.complement())
            )
            self._overruled[key] = cached
        return cached

    def defeated(self, r: GroundRule) -> bool:
        key = (r.head, r.component)
        cached = self._defeated.get(key)
        if cached is None:
            order = self._eval.order
            cached = any(
                other not in self._blocked
                and order.incomparable_or_equal(other.component, r.component)
                for other in self._eval.rules_with_head(r.head.complement())
            )
            self._defeated[key] = cached
        return cached
