"""Semi-naive (delta-driven) evaluation of ``V_{P,C}`` (Definition 4).

Naive iteration recomputes ``V(I)`` from scratch at every stage: it
rebuilds a :class:`~repro.core.statuses.StatusSnapshot` and rescans
every ground rule, so a fixpoint reached after ``k`` stages over ``n``
rules costs ``O(k · n)`` status evaluations even when each stage only
derives a literal or two.  This module evaluates the same fixpoint
incrementally, in the delta-driven style of semi-naive Datalog
evaluation, adapted to the three extra moving parts of ordered
programs: blocking, overruling and defeating.

The key observation is Lemma 1 (monotonicity) specialised to the
ascending chain ``∅ ⊆ V(∅) ⊆ V²(∅) ⊆ …``: along that chain every
status flip is one-way.

* ``B(r) ⊆ I`` (*applicable*) flips false → true only, so it can be
  tracked by a per-rule **satisfied counter** incremented when a body
  literal enters the interpretation;
* *blocked* flips false → true only, triggered the first time the
  complement of a body literal is derived;
* *overruled* / *defeated* flip true → **false** only: a contradicting
  rule stops being a threat exactly when it becomes blocked, so a
  per-rule **live-contradictor counter** (decremented when a watched
  contradictor becomes blocked) reaches zero precisely when the rule is
  no longer overruled / defeated.

Because every flip is one-way, a rule's "fires under ``I``" verdict is
itself monotone along the chain, and only rules *watching* a literal of
the current delta can change verdict.  Each stage therefore touches
``O(|delta| · watchers)`` rules instead of all of them; the whole
fixpoint does ``O(total watch-list traffic)`` work, which is the
semi-naive bound.

:class:`RuleIndex` holds the static watch lists (built once per
:class:`~repro.core.statuses.StatusEvaluator` and shared by every
fixpoint run — the solver re-enters the fixpoint once per search tree,
all on the same index); :class:`SemiNaiveFixpoint` holds the per-run
counters.  The least model produced is literal-for-literal identical to
naive iteration — enforced by ``tests/properties/
test_seminaive_differential.py`` and the differential CI job.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..lang.errors import InconsistencyError
from ..lang.literals import Literal
from ..obs import Level, get_instrumentation
from ..obs.trace import current_trace
from .interpretation import Interpretation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .statuses import StatusEvaluator

__all__ = ["RuleIndex", "SemiNaiveFixpoint"]


class RuleIndex:
    """Static literal→rule watch lists over one evaluator's ground rules.

    Built once per :class:`~repro.core.statuses.StatusEvaluator` (reach
    it through :attr:`StatusEvaluator.index`) and reused by every
    semi-naive run over those rules — model enumeration in particular
    re-enters the fixpoint machinery with the same evaluator many times.

    Attributes:
        rules: the evaluator's ground rules, positionally identified —
            every other structure speaks in rule *ids* (indices here).
        heads: ``rules[i].head`` for each rule id.
        body_sizes: ``len(rules[i].body)`` — the satisfied-counter
            target for applicability.
        body_watch: literal → ids of rules with the literal in their
            body (deriving it advances their satisfied counters).
        block_watch: literal → ids of rules *blocked* by it (the
            literal's complement appears in their bodies).
        overrulers: rule id → ids of its potential overrulers (rules
            with the complementary head in a strictly lower component).
        defeaters: rule id → ids of its potential defeaters (rules with
            the complementary head in an incomparable or equal
            component).
        contradiction_watch: reverse of the previous two: rule id ``j``
            → list of ``(i, is_overruler)`` pairs such that ``j``
            threatens ``i``; when ``j`` becomes blocked, each watching
            ``i`` has its live-overruler or live-defeater counter
            decremented.
    """

    __slots__ = (
        "rules",
        "heads",
        "body_sizes",
        "body_watch",
        "block_watch",
        "overrulers",
        "defeaters",
        "contradiction_watch",
    )

    def __init__(self, evaluator: "StatusEvaluator") -> None:
        rules = evaluator.rules
        order = evaluator.order
        self.rules = rules
        self.heads = tuple(r.head for r in rules)
        self.body_sizes = tuple(len(r.body) for r in rules)

        body_watch: dict[Literal, list[int]] = {}
        block_watch: dict[Literal, list[int]] = {}
        by_head: dict[Literal, list[int]] = {}
        for i, r in enumerate(rules):
            by_head.setdefault(r.head, []).append(i)
            for lit in r.body:
                body_watch.setdefault(lit, []).append(i)
                block_watch.setdefault(lit.complement(), []).append(i)
        self.body_watch = body_watch
        self.block_watch = block_watch

        contradiction_watch: list[list[tuple[int, bool]]] = [[] for _ in rules]
        overrulers: list[tuple[int, ...]] = []
        defeaters: list[tuple[int, ...]] = []
        for i, r in enumerate(rules):
            over_ids = []
            defeat_ids = []
            for j in by_head.get(r.head.complement(), ()):
                other = rules[j]
                if order.strictly_below(other.component, r.component):
                    over_ids.append(j)
                    contradiction_watch[j].append((i, True))
                elif order.incomparable_or_equal(other.component, r.component):
                    defeat_ids.append(j)
                    contradiction_watch[j].append((i, False))
            overrulers.append(tuple(over_ids))
            defeaters.append(tuple(defeat_ids))
        self.overrulers = tuple(overrulers)
        self.defeaters = tuple(defeaters)
        self.contradiction_watch = tuple(
            tuple(watchers) for watchers in contradiction_watch
        )

    def __len__(self) -> int:
        return len(self.rules)


class SemiNaiveFixpoint:
    """One delta-driven computation of ``V↑ω(∅)`` over a shared index.

    The run's mutable state is public so that tests (and debuggers) can
    audit counter soundness against the Definition-2 statuses after
    :meth:`run`:

    Attributes:
        satisfied: per-rule count of body literals currently derived.
        blocked: per-rule blocked flag.
        live_overrulers: per-rule count of not-yet-blocked potential
            overrulers; the rule is *overruled* iff the count is > 0.
        live_defeaters: likewise for defeaters.
        fired: per-rule flag — the rule fires under the least model
            (applicable, not overruled, not defeated).
        stage_deltas: the literals first derived at each stage, in
            order; their union is the least model.
    """

    def __init__(self, index: RuleIndex, base) -> None:
        self._index = index
        self._base = frozenset(base)
        n = len(index)
        self.satisfied = [0] * n
        self.blocked = [False] * n
        self.live_overrulers = [len(ids) for ids in index.overrulers]
        self.live_defeaters = [len(ids) for ids in index.defeaters]
        self.fired = [False] * n
        self.stage_deltas: list[frozenset[Literal]] = []

    def run(self, max_iterations: Optional[int] = None) -> Interpretation:
        """Compute ``V↑ω(∅)``; stage boundaries match naive iteration.

        Raises :class:`~repro.lang.errors.InconsistencyError` if the
        chain does not converge within the stage bound (impossible for a
        correct engine unless ``max_iterations`` is set too low) or if
        two contradicting rules both fire — the same surfacing as the
        naive strategy.
        """
        index = self._index
        heads = index.heads
        body_sizes = index.body_sizes
        body_watch = index.body_watch
        block_watch = index.block_watch
        contradiction_watch = index.contradiction_watch
        satisfied = self.satisfied
        blocked = self.blocked
        live_over = self.live_overrulers
        live_defeat = self.live_defeaters
        fired = self.fired

        bound = (
            max_iterations
            if max_iterations is not None
            else 2 * len(self._base) + 2
        )
        obs = get_instrumentation()
        derived: set[Literal] = set()
        stages = 0
        # Stage 1 candidates: only empty-body rules can be applicable
        # at the empty interpretation.
        candidates = {i for i, size in enumerate(body_sizes) if size == 0}
        while candidates:
            new_literals: set[Literal] = set()
            applied = overruled = defeated = 0
            for i in candidates:
                if fired[i] or blocked[i]:
                    continue
                if satisfied[i] != body_sizes[i]:
                    continue
                threatened = False
                if live_over[i]:
                    overruled += 1
                    threatened = True
                if live_defeat[i]:
                    defeated += 1
                    threatened = True
                if threatened:
                    continue
                fired[i] = True
                applied += 1
                head = heads[i]
                if head in derived or head in new_literals:
                    continue
                complement = head.complement()
                if complement in derived or complement in new_literals:
                    raise InconsistencyError(
                        f"V produced both {head} and {complement}; "
                        "the input interpretation was inconsistent or the "
                        "order is broken"
                    )
                new_literals.add(head)
            if not new_literals:
                break
            stages += 1
            if stages > bound:
                raise InconsistencyError(
                    "V failed to reach a fixpoint within the iteration "
                    "bound; this indicates non-monotone behaviour (a bug)"
                )
            if obs.enabled:
                obs.count("fixpoint.stages")
                obs.count("fixpoint.rules_touched", len(candidates))
                obs.count("fixpoint.rules_applied", applied)
                obs.count("fixpoint.rules_overruled", overruled)
                obs.count("fixpoint.rules_defeated", defeated)
                obs.count("fixpoint.literals_derived", len(new_literals))
                obs.observe("fixpoint.stage_literals", len(new_literals))
                obs.observe("fixpoint.delta_size", len(new_literals))
                obs.event(
                    "fixpoint.stage",
                    Level.DEBUG,
                    stage=stages,
                    new_literals=len(new_literals),
                )
            self.stage_deltas.append(frozenset(new_literals))
            # Propagate the delta: advance satisfied counters, flip
            # blocked flags, release overruled/defeated watchers.  The
            # affected rules are the next stage's candidates.
            next_candidates: set[int] = set()
            for lit in new_literals:
                derived.add(lit)
                for i in body_watch.get(lit, ()):
                    satisfied[i] += 1
                    next_candidates.add(i)
                for j in block_watch.get(lit, ()):
                    if not blocked[j]:
                        blocked[j] = True
                        for i, is_overruler in contradiction_watch[j]:
                            if is_overruler:
                                live_over[i] -= 1
                            else:
                                live_defeat[i] -= 1
                            next_candidates.add(i)
            candidates = next_candidates
        ctx = current_trace()
        if ctx is not None:
            # Cost attribution for request tracing / the slow-query log:
            # everything here is already computed, so an inactive trace
            # costs one contextvar read.
            ctx.add_cost(
                fixpoint_stages=stages,
                rules_fired=sum(fired),
                literals_derived=len(derived),
                max_stage_delta=max(
                    (len(d) for d in self.stage_deltas), default=0
                ),
            )
        return Interpretation(derived, self._base)
