"""Semi-naive (delta-driven) evaluation of ``V_{P,C}`` (Definition 4).

Naive iteration recomputes ``V(I)`` from scratch at every stage: it
rebuilds a :class:`~repro.core.statuses.StatusSnapshot` and rescans
every ground rule, so a fixpoint reached after ``k`` stages over ``n``
rules costs ``O(k · n)`` status evaluations even when each stage only
derives a literal or two.  This module evaluates the same fixpoint
incrementally, in the delta-driven style of semi-naive Datalog
evaluation, adapted to the three extra moving parts of ordered
programs: blocking, overruling and defeating.

The key observation is Lemma 1 (monotonicity) specialised to the
ascending chain ``∅ ⊆ V(∅) ⊆ V²(∅) ⊆ …``: along that chain every
status flip is one-way.

* ``B(r) ⊆ I`` (*applicable*) flips false → true only, so it can be
  tracked by a per-rule **satisfied counter** incremented when a body
  literal enters the interpretation;
* *blocked* flips false → true only, triggered the first time the
  complement of a body literal is derived;
* *overruled* / *defeated* flip true → **false** only: a contradicting
  rule stops being a threat exactly when it becomes blocked, so a
  per-rule **live-contradictor counter** (decremented when a watched
  contradictor becomes blocked) reaches zero precisely when the rule is
  no longer overruled / defeated.

Because every flip is one-way, a rule's "fires under ``I``" verdict is
itself monotone along the chain, and only rules *watching* a literal of
the current delta can change verdict.  Each stage therefore touches
``O(|delta| · watchers)`` rules instead of all of them; the whole
fixpoint does ``O(total watch-list traffic)`` work, which is the
semi-naive bound.

:class:`RuleIndex` holds the static watch lists (built once per
:class:`~repro.core.statuses.StatusEvaluator` and shared by every
fixpoint run — the solver re-enters the fixpoint once per search tree,
all on the same index); :class:`SemiNaiveFixpoint` holds the per-run
counters.  The least model produced is literal-for-literal identical to
naive iteration — enforced by ``tests/properties/
test_seminaive_differential.py`` and the differential CI job.

Since the dense compilation of the hot path, the counters themselves
advance over **integer** deltas: the watch lists are flattened once per
index into a :class:`~repro.core.compiled.index.CompiledRuleIndex`
(CSR arrays over :class:`~repro.grounding.grounder.AtomTable` literal
ids) and :class:`SemiNaiveFixpoint` drives the
:class:`~repro.core.compiled.fixpoint.DenseFixpoint` kernel, exposing
the same public counters and decoding literal objects only at the API
boundary.  See ``docs/performance.md``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..lang.literals import Literal
from ..obs import get_instrumentation
from ..obs.trace import current_trace
from .compiled.fixpoint import DenseFixpoint
from .compiled.index import CompiledRuleIndex
from .interpretation import Interpretation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .statuses import StatusEvaluator

__all__ = ["RuleIndex", "SemiNaiveFixpoint"]


class RuleIndex:
    """Static literal→rule watch lists over one evaluator's ground rules.

    Built once per :class:`~repro.core.statuses.StatusEvaluator` (reach
    it through :attr:`StatusEvaluator.index`) and reused by every
    semi-naive run over those rules — model enumeration in particular
    re-enters the fixpoint machinery with the same evaluator many times.

    Attributes:
        rules: the evaluator's ground rules, positionally identified —
            every other structure speaks in rule *ids* (indices here).
        heads: ``rules[i].head`` for each rule id.
        body_sizes: ``len(rules[i].body)`` — the satisfied-counter
            target for applicability.
        body_watch: literal → ids of rules with the literal in their
            body (deriving it advances their satisfied counters).
        block_watch: literal → ids of rules *blocked* by it (the
            literal's complement appears in their bodies).
        overrulers: rule id → ids of its potential overrulers (rules
            with the complementary head in a strictly lower component).
        defeaters: rule id → ids of its potential defeaters (rules with
            the complementary head in an incomparable or equal
            component).
        contradiction_watch: reverse of the previous two: rule id ``j``
            → list of ``(i, is_overruler)`` pairs such that ``j``
            threatens ``i``; when ``j`` becomes blocked, each watching
            ``i`` has its live-overruler or live-defeater counter
            decremented.
    """

    __slots__ = (
        "rules",
        "heads",
        "body_sizes",
        "body_watch",
        "block_watch",
        "overrulers",
        "defeaters",
        "contradiction_watch",
        "_atom_table",
        "_compiled",
    )

    def __init__(self, evaluator: "StatusEvaluator") -> None:
        rules = evaluator.rules
        order = evaluator.order
        self._atom_table = getattr(evaluator, "atom_table", None)
        self._compiled: Optional[CompiledRuleIndex] = None
        self.rules = rules
        self.heads = tuple(r.head for r in rules)
        self.body_sizes = tuple(len(r.body) for r in rules)

        body_watch: dict[Literal, list[int]] = {}
        block_watch: dict[Literal, list[int]] = {}
        by_head: dict[Literal, list[int]] = {}
        for i, r in enumerate(rules):
            by_head.setdefault(r.head, []).append(i)
            for lit in r.body:
                body_watch.setdefault(lit, []).append(i)
                block_watch.setdefault(lit.complement(), []).append(i)
        self.body_watch = body_watch
        self.block_watch = block_watch

        contradiction_watch: list[list[tuple[int, bool]]] = [[] for _ in rules]
        overrulers: list[tuple[int, ...]] = []
        defeaters: list[tuple[int, ...]] = []
        for i, r in enumerate(rules):
            over_ids = []
            defeat_ids = []
            for j in by_head.get(r.head.complement(), ()):
                other = rules[j]
                if order.strictly_below(other.component, r.component):
                    over_ids.append(j)
                    contradiction_watch[j].append((i, True))
                elif order.incomparable_or_equal(other.component, r.component):
                    defeat_ids.append(j)
                    contradiction_watch[j].append((i, False))
            overrulers.append(tuple(over_ids))
            defeaters.append(tuple(defeat_ids))
        self.overrulers = tuple(overrulers)
        self.defeaters = tuple(defeaters)
        self.contradiction_watch = tuple(
            tuple(watchers) for watchers in contradiction_watch
        )

    def __len__(self) -> int:
        return len(self.rules)

    @property
    def compiled(self) -> CompiledRuleIndex:
        """The watch lists flattened to dense integer arrays.

        Compiled lazily and cached for the index's lifetime, so the
        many fixpoint runs of model enumeration share one compilation.
        When the evaluator carries the grounding-time
        :class:`~repro.grounding.grounder.AtomTable`, its atom ids are
        reused; otherwise a private table is interned on the spot.
        """
        if self._compiled is None:
            self._compiled = CompiledRuleIndex(self, self._atom_table)
        return self._compiled


class SemiNaiveFixpoint:
    """One delta-driven computation of ``V↑ω(∅)`` over a shared index.

    Since the dense compilation this class is a thin object-level shell:
    the counters live in the flat arrays of a
    :class:`~repro.core.compiled.fixpoint.DenseFixpoint` kernel and the
    attributes below alias them directly (``blocked``/``fired`` read as
    0/1 ints, which compare equal to the booleans the audits expect).
    The run's state stays public so that tests (and debuggers) can audit
    counter soundness against the Definition-2 statuses after
    :meth:`run`:

    Attributes:
        satisfied: per-rule count of body literals currently derived.
        blocked: per-rule blocked flag.
        live_overrulers: per-rule count of not-yet-blocked potential
            overrulers; the rule is *overruled* iff the count is > 0.
        live_defeaters: likewise for defeaters.
        fired: per-rule flag — the rule fires under the least model
            (applicable, not overruled, not defeated).
        stage_deltas: the literals first derived at each stage, in
            order; their union is the least model (decoded lazily from
            the kernel's literal-id stages).
    """

    def __init__(self, index: RuleIndex, base) -> None:
        self._index = index
        self._base = frozenset(base)
        self._dense = DenseFixpoint(index.compiled)
        self._stage_cache: Optional[list[frozenset[Literal]]] = None
        self.satisfied = self._dense.satisfied
        self.blocked = self._dense.blocked
        self.live_overrulers = self._dense.live_overrulers
        self.live_defeaters = self._dense.live_defeaters
        self.fired = self._dense.fired

    @property
    def stage_deltas(self) -> list[frozenset[Literal]]:
        """The stage deltas as literal sets, decoded once on demand."""
        stage_ids = self._dense.stage_ids
        cache = self._stage_cache
        if cache is None or len(cache) != len(stage_ids):
            decode = self._dense.index.table.literal
            cache = [
                frozenset(decode(i) for i in ids) for ids in stage_ids
            ]
            self._stage_cache = cache
        return cache

    def run(self, max_iterations: Optional[int] = None) -> Interpretation:
        """Compute ``V↑ω(∅)``; stage boundaries match naive iteration.

        Raises :class:`~repro.lang.errors.InconsistencyError` if the
        chain does not converge within the stage bound (impossible for a
        correct engine unless ``max_iterations`` is set too low) or if
        two contradicting rules both fire — the same surfacing as the
        naive strategy.
        """
        bound = (
            max_iterations
            if max_iterations is not None
            else 2 * len(self._base) + 2
        )
        obs = get_instrumentation()
        data = self._dense.run(bound, obs if obs.enabled else None)
        ctx = current_trace()
        if ctx is not None:
            # Cost attribution for request tracing / the slow-query log:
            # everything here is already computed, so an inactive trace
            # costs one contextvar read.
            stage_ids = self._dense.stage_ids
            ctx.add_cost(
                fixpoint_stages=len(stage_ids),
                rules_fired=sum(self._dense.fired),
                literals_derived=len(data),
                max_stage_delta=max(
                    (len(ids) for ids in stage_ids), default=0
                ),
            )
        return Interpretation.deferred(data.literals, self._base)
