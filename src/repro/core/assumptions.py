"""Assumption sets and assumption-free models — Definitions 6–8,
Lemma 2 and Theorem 1(a).

A non-empty ``X ⊆ I`` is an **assumption set** w.r.t. ``I`` when for each
``A ∈ X``, every rule ``r ∈ ground(C*)`` with ``H(r) = A`` is

(a) non-applicable, or (b) overruled, or (c) defeated, or
(d) has ``B(r) ∩ X ≠ ∅``.

Members of an assumption set only support each other — nothing grounds
them in the rules.  A model is **assumption-free** when it includes no
assumption set.

Assumption sets are closed under union (each condition is per-literal,
and (d) is monotone in ``X``), so a *greatest* assumption set exists and
is computed here by a shrinking iteration; the model is assumption-free
iff that set is empty.  Independently, Theorem 1(a) characterises
assumption-free models via the **enabled version** ``C^M`` (the applied
rules, Definition 8): ``M`` is assumption-free iff the least fixpoint of
the immediate-consequence transformation over ``C^M`` equals ``M``.
Both routes are implemented; the test-suite cross-checks them.
"""

from __future__ import annotations

from typing import AbstractSet, Iterable

from ..grounding.grounder import GroundRule
from ..lang.literals import Literal
from .interpretation import Interpretation
from .statuses import StatusEvaluator

__all__ = ["AssumptionAnalyzer", "literal_closure"]


def literal_closure(
    rules: Iterable[GroundRule], seed: AbstractSet[Literal] = frozenset()
) -> frozenset[Literal]:
    """Least fixpoint of the immediate-consequence transformation ``T``
    over ground rules, treating literals atomically (Definition 8 applies
    ``T`` to the enabled version, where no contradictions can arise).

    Semi-naive evaluation: only rules whose bodies gained a new literal
    are re-fired.
    """
    rules = tuple(rules)
    derived: set[Literal] = set(seed)
    # Index rules by body literal so new facts wake only relevant rules.
    waiting: dict[Literal, list[GroundRule]] = {}
    no_body: list[GroundRule] = []
    for r in rules:
        if r.body:
            for l in r.body:
                waiting.setdefault(l, []).append(r)
        else:
            no_body.append(r)
    frontier: list[Literal] = []
    for r in no_body:
        if r.head not in derived:
            derived.add(r.head)
            frontier.append(r.head)
    frontier.extend(seed)
    while frontier:
        current = frontier.pop()
        for r in waiting.get(current, ()):
            if r.head in derived:
                continue
            if all(l in derived for l in r.body):
                derived.add(r.head)
                frontier.append(r.head)
    return frozenset(derived)


class AssumptionAnalyzer:
    """Assumption-set machinery over a fixed evaluator."""

    def __init__(self, evaluator: StatusEvaluator, base) -> None:
        self._eval = evaluator
        self._base = frozenset(base)

    # ------------------------------------------------------------------
    # Definition 6
    # ------------------------------------------------------------------
    def is_assumption_set(
        self, candidate: AbstractSet[Literal], interp: Interpretation
    ) -> bool:
        """Direct Definition-6 check of one candidate set."""
        if not candidate:
            return False
        if not frozenset(candidate) <= interp.literals:
            return False
        ev = self._eval
        for literal in candidate:
            for r in ev.rules_with_head(literal):
                if not ev.applicable(r, interp):
                    continue
                if ev.overruled(r, interp):
                    continue
                if ev.defeated(r, interp):
                    continue
                if r.body & frozenset(candidate):
                    continue
                return False
        return True

    def greatest_assumption_set(self, interp: Interpretation) -> frozenset[Literal]:
        """The union of all assumption sets w.r.t. ``I`` (possibly empty).

        Shrinking iteration from ``X = I``: remove ``A`` whenever some
        rule with head ``A`` is applied-able (applicable, not overruled,
        not defeated) and draws no body support from ``X``.
        """
        ev = self._eval
        snapshot = ev.snapshot(interp)
        # Pre-compute, per member literal, the rules that ground it.
        grounding_rules: dict[Literal, list[frozenset[Literal]]] = {}
        for literal in interp:
            bodies = []
            for r in ev.rules_with_head(literal):
                if not snapshot.applicable(r):
                    continue
                if snapshot.overruled(r) or snapshot.defeated(r):
                    continue
                bodies.append(r.body)
            grounding_rules[literal] = bodies
        current: set[Literal] = set(interp.literals)
        changed = True
        while changed:
            changed = False
            for literal in list(current):
                for body in grounding_rules[literal]:
                    if not (body & current):
                        current.discard(literal)
                        changed = True
                        break
        return frozenset(current)

    # ------------------------------------------------------------------
    # Definition 7
    # ------------------------------------------------------------------
    def is_assumption_free(self, interp: Interpretation) -> bool:
        """No subset of ``I`` is an assumption set w.r.t. ``I``."""
        return not self.greatest_assumption_set(interp)

    # ------------------------------------------------------------------
    # Definition 8 / Theorem 1(a)
    # ------------------------------------------------------------------
    def enabled_version(self, interp: Interpretation) -> tuple[GroundRule, ...]:
        """``C^M``: the applied, effective rules of ``ground(C*)``.

        Definition 8 says "all applied rules", but the Theorem 1(a)
        proof sketch immediately asserts that "no rule in C^M is
        non-applicable, overruled or defeated" — which is false for
        applied rules in general (an applied CWA fact can be overruled
        by a non-blocked more-specific rule, as in the ``3V`` reduction
        of ``{a., -a :- -a.}`` at ``{-a}``).  Reading the enabled
        version as the applied rules that are *neither overruled nor
        defeated* makes Theorem 1(a) hold — verified against the
        independent Definition-6 route by the property tests.
        """
        snapshot = self._eval.snapshot(interp)
        return tuple(
            r
            for r in self._eval.rules
            if snapshot.applied(r)
            and not snapshot.overruled(r)
            and not snapshot.defeated(r)
        )

    def t_least_fixpoint(self, interp: Interpretation) -> frozenset[Literal]:
        """``T↑ω_{C^M}(∅)`` over the enabled version (Lemma 2)."""
        return literal_closure(self.enabled_version(interp))

    def is_assumption_free_via_theorem1(self, interp: Interpretation) -> bool:
        """Theorem 1(a): for a *model* M, assumption-freeness is
        equivalent to ``T↑ω_{C^M}(∅) = M``.  (For non-models the two
        notions may diverge; callers should check modelhood first.)"""
        return self.t_least_fixpoint(interp) == interp.literals
