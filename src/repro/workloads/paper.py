"""Every program that appears in the paper, verbatim.

Figures 1–3 and the programs of Examples 2–9 are encoded exactly as
printed (Section 2's ``P1 .. P5``, Section 3's Examples 6–7, Section 4's
Examples 8–9).  The integration tests in ``tests/paper`` assert the
outcomes the paper states for each of them, and the figure benchmarks
regenerate them at scale.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from ..lang.parser import parse_program, parse_rules
from ..lang.program import OrderedProgram
from ..lang.rules import Rule

__all__ = [
    "figure1",
    "figure1_flat",
    "figure2",
    "figure3",
    "example3",
    "example4",
    "example4_extended",
    "example5",
    "example6_ancestor",
    "example7",
    "example8_birds",
    "example9_colored",
    "scaled_figure1",
    "scaled_figure2",
    "scaled_figure3",
]


def figure1() -> OrderedProgram:
    """Figure 1 — ordered program ``P1`` with overruling.

    ``C2`` holds the general bird knowledge; the more specific ``C1``
    knows the penguin is a ground animal and that ground animals do not
    fly.  In ``C1`` the penguin does not fly while the pigeon (inherited
    rule) does.
    """
    return parse_program(
        """
        component c2 {
            bird(penguin).
            bird(pigeon).
            fly(X) :- bird(X).
            -ground_animal(X) :- bird(X).
        }
        component c1 {
            ground_animal(penguin).
            -fly(X) :- ground_animal(X).
        }
        order c1 < c2.
        """
    )


def figure1_flat() -> OrderedProgram:
    """Example 2's ``P̂1``: all Figure-1 rules merged into one component.

    With the hierarchy flattened, contradicting rules *defeat* each other
    instead of being overruled: ``fly(penguin)`` and
    ``ground_animal(penguin)`` become undefined.
    """
    rules = parse_rules(
        """
        bird(penguin).
        bird(pigeon).
        fly(X) :- bird(X).
        -ground_animal(X) :- bird(X).
        ground_animal(penguin).
        -fly(X) :- ground_animal(X).
        """
    )
    return OrderedProgram.single(rules, name="c")


def figure2() -> OrderedProgram:
    """Figure 2 — ordered program ``P2`` with defeating.

    ``C3`` says mimmo is rich, ``C2`` says he is poor; from ``C1``'s
    point of view neither expert outranks the other, both claims are
    defeated, and ``free_ticket(mimmo)`` stays undefined.
    """
    return parse_program(
        """
        component c3 {
            rich(mimmo).
            -poor(X) :- rich(X).
        }
        component c2 {
            poor(mimmo).
            -rich(X) :- poor(X).
        }
        component c1 {
            free_ticket(X) :- poor(X).
        }
        order c1 < c2.
        order c1 < c3.
        """
    )


def figure3(myself_facts: Iterable[str] = ()) -> OrderedProgram:
    """Figure 3 — the loan program, with scenario facts for ``c1``.

    ``c2`` (Expert2) is independent; ``c3`` (Expert3) refines ``c4``
    (Expert4).  The ``myself`` component ``c1`` sits below everything and
    holds the scenario facts, e.g. ``["inflation(12)."]``.

    The three scenarios discussed in the introduction:

    * no facts — nothing can be inferred;
    * ``inflation(12).`` — Expert2 fires, ``take_loan`` holds;
    * ``inflation(12). loan_rate(16).`` — Expert2 and Expert4 defeat
      each other, nothing can be said about taking loans;
    * ``inflation(19). loan_rate(16).`` — Expert3 overrules Expert4 and
      ``take_loan`` holds.
    """
    facts = "\n".join(myself_facts)
    return parse_program(
        f"""
        component c2 {{
            take_loan :- inflation(X), X > 11.
        }}
        component c4 {{
            -take_loan :- loan_rate(X), X > 14.
        }}
        component c3 {{
            take_loan :- inflation(X), loan_rate(Y), X > Y + 2.
        }}
        component c1 {{
            {facts}
        }}
        order c1 < c2.
        order c1 < c3 < c4.
        """
    )


def example3() -> OrderedProgram:
    """Example 3's ``P3``: one component ``{a :- b.  -a :- b.}``.

    Its models are exactly ``{b}``, ``{-b}``, ``{a,-b}``, ``{-a,-b}``
    and ``{}`` — in particular the Herbrand base is *not* a model.
    """
    return OrderedProgram.single(parse_rules("a :- b.  -a :- b."), name="c")


def example4() -> OrderedProgram:
    """Example 4's ``P4``: the single rule ``a :- b.`` — the only
    assumption-free model is empty."""
    return OrderedProgram.single(parse_rules("a :- b."), name="c1")


def example4_extended() -> OrderedProgram:
    """Example 4's second program: ``P4`` plus a component ``c2`` above
    with the explicit defaults ``-a.`` and ``-b.`` — now ``{-a,-b}`` is
    the unique assumption-free model in ``c1``."""
    return parse_program(
        """
        component c2 {
            -a.
            -b.
        }
        component c1 {
            a :- b.
        }
        order c1 < c2.
        """
    )


def example5() -> OrderedProgram:
    """Example 5's ``P5``: two stable models ``{a,-b,c}`` and
    ``{-a,b,c}``; ``{c}`` is assumption-free but not stable."""
    return parse_program(
        """
        component c2 {
            a.
            b.
            c.
        }
        component c1 {
            -a :- b, c.
            -b :- a.
            -b :- -b.
        }
        order c1 < c2.
        """
    )


def example6_ancestor(parents: Sequence[tuple[str, str]] = (
    ("adam", "cain"),
    ("adam", "abel"),
    ("cain", "enoch"),
)) -> list[Rule]:
    """Example 6's ancestor program (a seminegative program ``C`` to be
    wrapped by ``OV``/``EV``); ``parent`` is the database relation."""
    lines = [f"parent({a}, {b})." for a, b in parents]
    lines.append("anc(X, Y) :- parent(X, Y).")
    lines.append("anc(X, Y) :- parent(X, Z), anc(Z, Y).")
    return parse_rules("\n".join(lines))


def example7() -> list[Rule]:
    """Example 7's program ``{p <- ¬p}``: ``{p}`` is a 3-valued model of
    ``C`` but not a model of ``OV(C)`` in ``C`` (the implicit fact ``¬p``
    is not overruled by a non-blocked rule); it *is* a model of
    ``EV(C)`` thanks to the reflexive rule ``p <- p``."""
    return parse_rules("p :- -p.")


def example8_birds(
    birds: Sequence[str] = ("penguin", "pigeon"),
    ground_animals: Sequence[str] = ("penguin",),
) -> list[Rule]:
    """Example 8's negative program: flying birds with ground-animal
    exceptions, as a plain negative program (no components — the 3-level
    reduction of Section 4 supplies them)."""
    lines = [f"bird({b})." for b in birds]
    lines += [f"ground_animal({g})." for g in ground_animals]
    lines.append("fly(X) :- bird(X).")
    lines.append("-fly(X) :- ground_animal(X).")
    return parse_rules("\n".join(lines))


def example9_colored(
    colors: Sequence[str] = ("red", "green", "blue"),
    ugly: Sequence[str] = ("green",),
) -> list[Rule]:
    """Example 9's choice program: "select exactly one of the available
    non-ugly colors".  Under the 3-level semantics it has one stable
    model per non-ugly color."""
    lines = [f"color({c})." for c in colors]
    lines += [f"ugly_color({u})." for u in ugly]
    lines += [f"color({u})." for u in ugly if u not in colors]
    lines.append("colored(X) :- color(X), -colored(Y), X != Y.")
    lines.append("-colored(X) :- ugly_color(X).")
    return parse_rules("\n".join(lines))


# ----------------------------------------------------------------------
# Scaled variants for the figure benchmarks
# ----------------------------------------------------------------------

def scaled_figure1(n_birds: int, n_penguins: int) -> OrderedProgram:
    """Figure 1 at scale: ``n_birds`` birds of which ``n_penguins`` are
    ground animals.  The expected meaning in ``c1``: exactly the
    non-penguin birds fly."""
    if n_penguins > n_birds:
        raise ValueError("n_penguins cannot exceed n_birds")
    general = ["fly(X) :- bird(X).", "-ground_animal(X) :- bird(X)."]
    general += [f"bird(b{i})." for i in range(n_birds)]
    specific = ["-fly(X) :- ground_animal(X)."]
    specific += [f"ground_animal(b{i})." for i in range(n_penguins)]
    return OrderedProgram(
        {
            "c2": parse_rules("\n".join(general)),
            "c1": parse_rules("\n".join(specific)),
        },
        [("c1", "c2")],
    )


def scaled_figure2(n_people: int, n_contested: int) -> OrderedProgram:
    """Figure 2 at scale: ``n_people`` individuals; the first
    ``n_contested`` are claimed rich by one expert and poor by the other
    (defeated), the rest are uncontested (poor only, so they do get the
    free ticket).

    The experts state *ground facts* about the people they know (the
    shape of the original figure restricted to mimmo).  A non-ground
    rule ``-poor(X) :- rich(X)`` would instead defeat ``poor(p)`` for
    *every* person — a Definition-2 defeater need only be non-blocked,
    not applicable — leaving nobody with a ticket; see EXPERIMENTS.md.
    """
    if n_contested > n_people:
        raise ValueError("n_contested cannot exceed n_people")
    rich_rules = [f"rich(p{i})." for i in range(n_contested)]
    rich_rules += [f"-poor(p{i})." for i in range(n_contested)]
    poor_rules = [f"poor(p{i})." for i in range(n_people)]
    poor_rules += [f"-rich(p{i})." for i in range(n_contested)]
    return OrderedProgram(
        {
            "c3": parse_rules("\n".join(rich_rules)),
            "c2": parse_rules("\n".join(poor_rules)),
            "c1": parse_rules("free_ticket(X) :- poor(X)."),
        },
        [("c1", "c2"), ("c1", "c3")],
    )


def scaled_figure3(
    scenarios: Mapping[str, tuple[int, int]],
) -> dict[str, OrderedProgram]:
    """Figure 3 over many ``(inflation, loan_rate)`` scenarios; returns
    one loan program per named scenario."""
    return {
        name: figure3(
            (f"inflation({inflation}).", f"loan_rate({rate}).")
        )
        for name, (inflation, rate) in scenarios.items()
    }
