"""Workload generators: the paper's programs, scalable hierarchies,
classic deductive-database programs, and seeded random programs."""

from . import (
    classic,
    clients,
    experts,
    hierarchies,
    paper,
    point_query,
    random_programs,
    sessions,
)
from .classic import ancestor_chain, even_odd, two_stable, win_move
from .clients import build_server_kb, client_traces, replay_traces
from .experts import contradicting_panel, expert_panel
from .hierarchies import diamond, override_chain, release_chain, taxonomy
from .point_query import forest_program, load_forest_edb, point_goals
from .random_programs import (
    random_negative_rules,
    random_ordered_program,
    random_rules,
    random_seminegative_rules,
)
from .sessions import (
    build_session_kb,
    interactive_session,
    run_session,
    session_ops,
    session_program,
)

__all__ = [
    "paper",
    "classic",
    "experts",
    "hierarchies",
    "point_query",
    "random_programs",
    "sessions",
    "clients",
    "forest_program",
    "load_forest_edb",
    "point_goals",
    "client_traces",
    "replay_traces",
    "build_server_kb",
    "interactive_session",
    "session_program",
    "session_ops",
    "build_session_kb",
    "run_session",
    "expert_panel",
    "contradicting_panel",
    "ancestor_chain",
    "win_move",
    "even_odd",
    "two_stable",
    "override_chain",
    "diamond",
    "taxonomy",
    "release_chain",
    "random_rules",
    "random_seminegative_rules",
    "random_negative_rules",
    "random_ordered_program",
]
