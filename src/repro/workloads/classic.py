"""Classic deductive-database workloads for the Section-3 machinery.

* :func:`ancestor_chain` — Example 6's ancestor program over a linear
  ``parent`` chain (for ``OV`` / least-model scaling);
* :func:`win_move` — the win–move game, the canonical well-founded
  workload: over a linear move graph the win/lose pattern alternates
  and a trailing cycle leaves positions undefined;
* :func:`even_odd` — mutual recursion through negation (stratified);
* :func:`two_stable` — ``n`` independent choice pairs, giving ``2^n``
  stable models (stable-enumeration scaling).
"""

from __future__ import annotations

from ..lang.parser import parse_rules
from ..lang.rules import Rule

__all__ = ["ancestor_chain", "win_move", "even_odd", "two_stable"]


def ancestor_chain(length: int) -> list[Rule]:
    """Ancestor over a chain ``p0 -> p1 -> ... -> p<length>``."""
    if length < 1:
        raise ValueError("length must be positive")
    lines = [f"parent(p{i}, p{i + 1})." for i in range(length)]
    lines.append("anc(X, Y) :- parent(X, Y).")
    lines.append("anc(X, Y) :- parent(X, Z), anc(Z, Y).")
    return parse_rules("\n".join(lines))


def win_move(
    chain: int, cycle: int = 0
) -> list[Rule]:
    """The win–move game: ``win(X) <- move(X, Y), ¬win(Y)``.

    A linear chain of ``chain`` moves ends in a sink (losing position),
    so chain positions alternate won/lost from the sink backwards; an
    optional *disjoint* cycle of length ``cycle`` leaves its positions
    undefined under the well-founded semantics (the classic partiality
    witness).
    """
    if chain < 1:
        raise ValueError("chain must be positive")
    lines = [f"move(n{i}, n{i + 1})." for i in range(chain)]
    if cycle:
        members = [f"m{i}" for i in range(cycle)]
        lines += [
            f"move({members[i]}, {members[(i + 1) % cycle]})."
            for i in range(cycle)
        ]
    lines.append("win(X) :- move(X, Y), -win(Y).")
    return parse_rules("\n".join(lines))


def even_odd(limit: int) -> list[Rule]:
    """Even/odd over a successor chain — a 2-stratum stratified program:
    ``even(X) <- succ(Y, X), ¬even(Y)`` with ``even(z0)``."""
    if limit < 1:
        raise ValueError("limit must be positive")
    lines = [f"succ(z{i}, z{i + 1})." for i in range(limit)]
    lines.append("even(z0).")
    lines.append("odd(X) :- succ(Y, X), even(Y).")
    lines.append("even(X) :- succ(Y, X), odd(Y).")
    return parse_rules("\n".join(lines))


def two_stable(n_pairs: int) -> list[Rule]:
    """``n`` independent pairs ``a_i <- ¬b_i;  b_i <- ¬a_i`` — the
    program with ``2^n`` (total) stable models and a fully undefined
    well-founded model."""
    if n_pairs < 1:
        raise ValueError("n_pairs must be positive")
    lines = []
    for i in range(n_pairs):
        lines.append(f"a{i} :- -b{i}.")
        lines.append(f"b{i} :- -a{i}.")
    return parse_rules("\n".join(lines))
