"""Classic deductive-database workloads for the Section-3 machinery.

* :func:`ancestor_chain` — Example 6's ancestor program over a linear
  ``parent`` chain (for ``OV`` / least-model scaling);
* :func:`win_move` — the win–move game, the canonical well-founded
  workload: over a linear move graph the win/lose pattern alternates
  and a trailing cycle leaves positions undefined;
* :func:`even_odd` — mutual recursion through negation (stratified);
* :func:`two_stable` — ``n`` independent choice pairs, giving ``2^n``
  stable models (stable-enumeration scaling);
* :func:`sparse_pairs` — a sparse-domain workload where most of the
  Herbrand universe is irrelevant to the join rule, built to measure
  the abstract-interpretation domain pruning of the grounder.
"""

from __future__ import annotations

from ..lang.parser import parse_rules
from ..lang.rules import Rule

__all__ = ["ancestor_chain", "win_move", "even_odd", "two_stable", "sparse_pairs"]


def ancestor_chain(length: int) -> list[Rule]:
    """Ancestor over a chain ``p0 -> p1 -> ... -> p<length>``."""
    if length < 1:
        raise ValueError("length must be positive")
    lines = [f"parent(p{i}, p{i + 1})." for i in range(length)]
    lines.append("anc(X, Y) :- parent(X, Y).")
    lines.append("anc(X, Y) :- parent(X, Z), anc(Z, Y).")
    return parse_rules("\n".join(lines))


def win_move(
    chain: int, cycle: int = 0
) -> list[Rule]:
    """The win–move game: ``win(X) <- move(X, Y), ¬win(Y)``.

    A linear chain of ``chain`` moves ends in a sink (losing position),
    so chain positions alternate won/lost from the sink backwards; an
    optional *disjoint* cycle of length ``cycle`` leaves its positions
    undefined under the well-founded semantics (the classic partiality
    witness).
    """
    if chain < 1:
        raise ValueError("chain must be positive")
    lines = [f"move(n{i}, n{i + 1})." for i in range(chain)]
    if cycle:
        members = [f"m{i}" for i in range(cycle)]
        lines += [
            f"move({members[i]}, {members[(i + 1) % cycle]})."
            for i in range(cycle)
        ]
    lines.append("win(X) :- move(X, Y), -win(Y).")
    return parse_rules("\n".join(lines))


def even_odd(limit: int) -> list[Rule]:
    """Even/odd over a successor chain — a 2-stratum stratified program:
    ``even(X) <- succ(Y, X), ¬even(Y)`` with ``even(z0)``."""
    if limit < 1:
        raise ValueError("limit must be positive")
    lines = [f"succ(z{i}, z{i + 1})." for i in range(limit)]
    lines.append("even(z0).")
    lines.append("odd(X) :- succ(Y, X), even(Y).")
    lines.append("even(X) :- succ(Y, X), odd(Y).")
    return parse_rules("\n".join(lines))


def sparse_pairs(n_pool: int, n_active: int) -> list[Rule]:
    """A sparse-domain join: ``pair`` ranges over the few ``active``
    constants while the universe holds ``n_pool`` pool constants.

    Naive grounding instantiates the ``pair`` rule ``n_pool**2`` times;
    with abstract domain pruning the grounder restricts both variables
    to the inferred ``active`` sort and emits only ``n_active**2``
    instances.  A guard-emptied ``phantom`` predicate feeds a ``ghost``
    rule that the analysis proves dead, so the workload also exercises
    whole-rule pruning (``grounding.pruned_rules``).
    """
    if n_pool < 1 or n_active < 1:
        raise ValueError("n_pool and n_active must be positive")
    if n_active > n_pool:
        raise ValueError("n_active cannot exceed n_pool")
    lines = [f"d({i})." for i in range(n_pool)]
    lines += [f"active({i})." for i in range(n_active)]
    lines.append("pair(X, Y) :- active(X), active(Y).")
    # Guard over the *active* sort: it stays below the analyzer's
    # finite-set cap at every pool size, so the emptiness proof (and
    # with it the dead ghost rule) survives widening of the d sort.
    lines.append("phantom(X) :- active(X), X < 0.")
    lines.append("ghost(X) :- phantom(X), d(X).")
    return parse_rules("\n".join(lines))


def two_stable(n_pairs: int) -> list[Rule]:
    """``n`` independent pairs ``a_i <- ¬b_i;  b_i <- ¬a_i`` — the
    program with ``2^n`` (total) stable models and a fully undefined
    well-founded model."""
    if n_pairs < 1:
        raise ValueError("n_pairs must be positive")
    lines = []
    for i in range(n_pairs):
        lines.append(f"a{i} :- -b{i}.")
        lines.append(f"b{i} :- -a{i}.")
    return parse_rules("\n".join(lines))
