"""Mixed read/write client traces for the query server.

Extends the ``interactive_session`` workload (docs/maintenance.md) to
the serving layer: :func:`client_traces` produces per-client streams of
protocol request dicts (docs/server.md) over the same membership
registry hierarchy, and :func:`replay_traces` drives them concurrently
against a :class:`~repro.server.engine.ServerEngine`, interleaving
clients at await points the way a real socket front end would.

The traces are deterministic per seed — the server differential suite
replays them against a serialized single-threaded oracle — and include
a small fraction of invalid retracts (facts never told) to exercise
per-request error isolation inside coalesced write batches.
"""

from __future__ import annotations

import asyncio
import random
from typing import TYPE_CHECKING, Sequence

from .sessions import _entities, build_session_kb

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..server.engine import ServerEngine

__all__ = ["client_traces", "replay_traces", "build_server_kb"]

#: Entity constant that is never told anywhere: retracting a fact about
#: it is guaranteed to be rejected with a ``semantics`` error.
GHOST = "ghost"

build_server_kb = build_session_kb


def client_traces(
    depth: int = 4,
    n_entities: int = 8,
    n_clients: int = 4,
    ops_per_client: int = 25,
    seed: int = 0xC11E,
    read_fraction: float = 0.5,
    invalid_fraction: float = 0.05,
) -> list[list[dict]]:
    """Per-client request streams over the session hierarchy.

    Each request is a protocol dict carrying a unique ``id``
    (``"c<client>-<index>"``).  The mix per op: ``read_fraction``
    queries/asks; the rest splits ~2:1 between tells and retracts of
    previously told facts, with ``invalid_fraction`` of the retracts
    targeting a never-told fact (expected to be rejected).
    """
    rng = random.Random(seed)
    entities = _entities(n_entities)
    patterns = ["member", "ok", "flagged", "-member", "-flagged"]
    traces: list[list[dict]] = []
    told: list[tuple[str, str]] = []  # shared pool across clients
    for client in range(n_clients):
        trace: list[dict] = []
        for index in range(ops_per_client):
            request_id = f"c{client}-{index}"
            roll = rng.random()
            if roll < read_fraction:
                level = rng.randrange(depth)
                pred = rng.choice(patterns)
                arg = rng.choice(entities + ["X"])
                op = rng.choice(["query", "ask"])
                trace.append(
                    {
                        "id": request_id,
                        "op": op,
                        "view": f"level{level}",
                        "pattern": f"{pred}({arg})",
                    }
                )
            elif roll < read_fraction + (1 - read_fraction) * 2 / 3 or not told:
                level = rng.randrange(depth)
                pred = rng.choice([f"enrolled_{level}", f"sus_{level}"])
                fact = f"{pred}({rng.choice(entities)})."
                trace.append(
                    {
                        "id": request_id,
                        "op": "tell",
                        "view": f"level{level}",
                        "rules": fact,
                    }
                )
                told.append((f"level{level}", fact))
            elif rng.random() < invalid_fraction:
                level = rng.randrange(depth)
                trace.append(
                    {
                        "id": request_id,
                        "op": "retract",
                        "view": f"level{level}",
                        "rules": f"enrolled_{level}({GHOST}).",
                    }
                )
            else:
                view, fact = told.pop(rng.randrange(len(told)))
                trace.append(
                    {
                        "id": request_id,
                        "op": "retract",
                        "view": view,
                        "rules": fact,
                    }
                )
        traces.append(trace)
    return traces


async def replay_traces(
    engine: "ServerEngine",
    traces: Sequence[Sequence[dict]],
    seed: int = 0,
    yield_probability: float = 0.5,
) -> list[list[tuple[dict, dict]]]:
    """Drive one concurrent client coroutine per trace.

    Clients yield to the event loop between requests with the given
    probability (seeded — interleavings are reproducible), so write
    batches of varying size form in the engine's queue and reads land
    at different snapshot versions.  Returns, per client, the
    ``(request, response)`` pairs in submission order.
    """
    from ..server.protocol import parse_request

    results: list[list[tuple[dict, dict]]] = [[] for _ in traces]

    async def client(index: int, trace: Sequence[dict]) -> None:
        rng = random.Random((seed << 8) ^ index)
        for payload in trace:
            if rng.random() < yield_probability:
                await asyncio.sleep(0)
            response = await engine.handle(parse_request(payload))
            results[index].append((payload, response))

    await asyncio.gather(
        *(client(i, trace) for i, trace in enumerate(traces))
    )
    return results
