"""Expert-panel workloads: Figure 3 generalised.

``expert_panel(n_chains, chain_length)`` builds a ``myself`` component
consulting ``n_chains`` independent chains of experts.  Within a chain,
each expert refines (sits below) the previous one and flips the
conclusion about its chain's topic; across chains the experts are
incomparable.  The meaning at ``myself``:

* within a chain, the **most specific** expert's verdict wins
  (overruling at depth — the Expert3/Expert4 pattern);
* the topic of a chain is decided iff the chain exists; independent
  chains never interfere (their literals are about different topics).

A second generator, :func:`contradicting_panel`, makes all chains argue
about the *same* topic, producing defeat across chains unless exactly
one chain survives.
"""

from __future__ import annotations

from ..lang.parser import parse_rules
from ..lang.program import Component, OrderedProgram

__all__ = ["expert_panel", "contradicting_panel"]


def expert_panel(n_chains: int, chain_length: int) -> OrderedProgram:
    """Independent refinement chains over per-chain topics.

    Chain ``i`` has experts ``e_i_0 < e_i_1 < ... < e_i_{L-1}`` (0 most
    specific).  Expert ``j`` asserts ``verdict(t_i)`` when ``L - 1 - j``
    is even and ``-verdict(t_i)`` otherwise, so the *top* expert always
    asserts positively and each refinement flips it; the most specific
    expert's sign is positive iff ``chain_length`` is odd.
    """
    if n_chains < 1 or chain_length < 1:
        raise ValueError("n_chains and chain_length must be positive")
    components = [Component("myself", parse_rules(
        "\n".join(f"topic(t{i})." for i in range(n_chains))
    ))]
    pairs = []
    for i in range(n_chains):
        for j in range(chain_length):
            sign = "" if (chain_length - 1 - j) % 2 == 0 else "-"
            name = f"e{i}_{j}"
            components.append(
                Component(name, parse_rules(f"{sign}verdict(t{i}) :- topic(t{i})."))
            )
            if j + 1 < chain_length:
                pairs.append((name, f"e{i}_{j + 1}"))
        pairs.append(("myself", f"e{i}_0"))
    return OrderedProgram(components, pairs)


def contradicting_panel(n_experts: int, topic: str = "go") -> OrderedProgram:
    """``n_experts`` incomparable experts alternating about one topic.

    Expert ``i`` asserts ``verdict(go)`` when ``i`` is even and its
    negation otherwise.  With ``n_experts >= 2`` the verdict is defeated
    at ``myself``; with one expert it holds.
    """
    if n_experts < 1:
        raise ValueError("n_experts must be positive")
    components = [Component("myself", parse_rules(f"topic({topic})."))]
    pairs = []
    for i in range(n_experts):
        sign = "" if i % 2 == 0 else "-"
        name = f"expert{i}"
        components.append(
            Component(name, parse_rules(f"{sign}verdict({topic}) :- topic({topic})."))
        )
        pairs.append(("myself", name))
    return OrderedProgram(components, pairs)
