"""Seeded random program generators for property tests and fuzzing.

All generators are deterministic given a seed and produce *ground
propositional* programs: small Herbrand bases keep the exhaustive
(3^n) verification of the paper's theorems tractable, and propositional
programs already exercise every definition in the paper (grounding is
tested separately on first-order workloads).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence

from ..lang.literals import Atom, Literal
from ..lang.program import Component, OrderedProgram
from ..lang.rules import Rule
from ..lang.terms import Compound, Constant, Variable

__all__ = [
    "random_rules",
    "random_seminegative_rules",
    "random_negative_rules",
    "random_ordered_program",
    "random_clean_program",
    "random_stratified_program",
    "seeded_defect_program",
    "DEFECT_KINDS",
    "InjectedDefect",
    "DefectSeededProgram",
]


def _atoms(n_atoms: int) -> list[Atom]:
    return [Atom(f"p{i}") for i in range(n_atoms)]


def random_rules(
    rng: random.Random,
    n_atoms: int,
    n_rules: int,
    max_body: int = 2,
    neg_head_prob: float = 0.3,
    neg_body_prob: float = 0.3,
) -> list[Rule]:
    """Random ground rules over ``n_atoms`` propositional atoms."""
    atoms = _atoms(n_atoms)
    rules = []
    for _ in range(n_rules):
        head_atom = rng.choice(atoms)
        head = Literal(head_atom, rng.random() >= neg_head_prob)
        body_size = rng.randint(0, max_body)
        body = []
        for _ in range(body_size):
            atom = rng.choice(atoms)
            body.append(Literal(atom, rng.random() >= neg_body_prob))
        rules.append(Rule(head, tuple(body)))
    return rules


def random_seminegative_rules(
    rng: random.Random,
    n_atoms: int,
    n_rules: int,
    max_body: int = 2,
    neg_body_prob: float = 0.4,
) -> list[Rule]:
    """Random ground seminegative rules (positive heads)."""
    return random_rules(
        rng,
        n_atoms,
        n_rules,
        max_body=max_body,
        neg_head_prob=0.0,
        neg_body_prob=neg_body_prob,
    )


def random_negative_rules(
    rng: random.Random,
    n_atoms: int,
    n_rules: int,
    max_body: int = 2,
    neg_head_prob: float = 0.35,
) -> list[Rule]:
    """Random ground negative-program rules, guaranteed to contain at
    least one negative-head rule when ``n_rules > 0``."""
    rules = random_rules(
        rng, n_atoms, n_rules, max_body=max_body, neg_head_prob=neg_head_prob
    )
    if rules and all(r.head.positive for r in rules):
        first = rules[0]
        rules[0] = Rule(first.head.complement(), first.body)
    return rules


def random_ordered_program(
    rng: random.Random,
    n_atoms: int = 4,
    n_components: int = 3,
    n_rules: int = 8,
    max_body: int = 2,
    neg_head_prob: float = 0.35,
    neg_body_prob: float = 0.3,
    order_density: float = 0.5,
    component_names: Optional[Sequence[str]] = None,
    seed_defects: Optional[Sequence[str]] = None,
) -> OrderedProgram:
    """A random ground ordered program.

    Rules are distributed uniformly over the components; each pair
    ``(c_i, c_j)`` with ``i < j`` is put in the order with probability
    ``order_density`` (taking ``c_i < c_j``, which keeps the relation
    acyclic by construction).

    With ``seed_defects`` (a sequence of :data:`DEFECT_KINDS` entries),
    the program is first repaired into a warning-clean version and then
    the named defect patterns are injected under fresh ``seeded_*``
    predicate names; use :func:`seeded_defect_program` to also get the
    clean twin and the defect manifest.
    """
    names = list(component_names or (f"c{i}" for i in range(n_components)))
    rules = random_rules(
        rng,
        n_atoms,
        n_rules,
        max_body=max_body,
        neg_head_prob=neg_head_prob,
        neg_body_prob=neg_body_prob,
    )
    buckets: dict[str, list[Rule]] = {name: [] for name in names}
    for r in rules:
        buckets[rng.choice(names)].append(r)
    pairs = []
    for i in range(len(names)):
        for j in range(i + 1, len(names)):
            if rng.random() < order_density:
                pairs.append((names[i], names[j]))
    program = OrderedProgram(
        [Component(name, bucket) for name, bucket in buckets.items()], pairs
    )
    if seed_defects is not None:
        program, _ = _inject_defects(rng, _repair(program), seed_defects)
    return program


# ----------------------------------------------------------------------
# Defect seeding (the static-analyzer property-test oracle)
# ----------------------------------------------------------------------

#: Defect patterns :func:`seeded_defect_program` can inject, with the
#: diagnostic code each one must trigger in ``repro.analysis.static``.
DEFECT_KINDS: Sequence[str] = (
    "unsafe",
    "undefined",
    "defeat",
    "arity",
    "growth",
    "unreachable",
)

_DEFECT_CODES = {
    "unsafe": "unsafe-rule",
    "undefined": "undefined-predicate",
    "defeat": "potential-defeat",
    "arity": "arity-clash",
    "growth": "function-growth",
    "unreachable": "unreachable-component",
}


@dataclass(frozen=True)
class InjectedDefect:
    """One injected defect: the pattern kind, the diagnostic code it
    must trigger, a marker string that must appear in the diagnostic's
    location or message, and the component it was planted in."""

    kind: str
    code: str
    marker: str
    component: str


@dataclass(frozen=True)
class DefectSeededProgram:
    """A warning-clean program, its defective twin, and the manifest."""

    clean: OrderedProgram
    defective: OrderedProgram
    defects: tuple[InjectedDefect, ...]


def _repair(program: OrderedProgram) -> OrderedProgram:
    """Make a random program warning-clean: relate isolated components
    to the rest of the order, then add defining facts for body atoms no
    view can otherwise see.  (Defeat patterns between unordered
    components remain — those are informational, not warnings.)"""
    order = program.order
    names = sorted(program.component_names)
    pairs = set(order.pairs())
    if pairs and len(names) >= 2:
        related = {c for pair in pairs for c in pair}
        anchor = sorted(related)[0]
        for name in names:
            if name not in related:
                pairs.add((name, anchor))
    buckets = {c.name: list(c.rules) for c in program.components()}
    repaired = OrderedProgram(
        [Component(name, buckets[name]) for name in names], pairs
    )
    # Visibility rule: a body atom of component X is defined when it is
    # headed in upset(C) for some C <= X (some view that contains X).
    heads = {
        name: {l.atom for l in repaired.component(name).head_literals()}
        for name in names
    }
    view_heads = {
        name: set().union(*(heads[c] for c in repaired.order.upset(name)))
        for name in names
    }
    for name in names:
        defined = set().union(
            *(view_heads[c] for c in repaired.order.downset(name))
        )
        missing = {
            l.atom
            for r in buckets[name]
            for l in r.body_literals()
            if l.atom not in defined
        }
        for atom in sorted(missing, key=str):
            buckets[name].append(Rule(Literal(atom, True)))
    return OrderedProgram(
        [Component(name, buckets[name]) for name in names], pairs
    )


def _inject_defects(
    rng: random.Random,
    program: OrderedProgram,
    kinds: Sequence[str],
) -> tuple[OrderedProgram, tuple[InjectedDefect, ...]]:
    names = sorted(program.component_names)
    buckets = {c.name: list(c.rules) for c in program.components()}
    pairs = set(program.order.pairs())
    defects: list[InjectedDefect] = []

    def plant(kind: str) -> None:
        target = rng.choice(names)
        marker: str
        if kind == "unsafe":
            marker = "seeded_unsafe"
            buckets[target].append(
                Rule(Literal(Atom(marker, (Variable("U0"),))))
            )
        elif kind == "undefined":
            marker = "seeded_missing"
            buckets[target].append(
                Rule(
                    Literal(Atom("seeded_undef")),
                    (Literal(Atom(marker)),),
                )
            )
        elif kind == "defeat":
            marker = "seeded_clash"
            buckets[target].append(Rule(Literal(Atom(marker))))
            buckets[target].append(Rule(Literal(Atom(marker), False)))
        elif kind == "arity":
            marker = "seeded_arity"
            buckets[target].append(Rule(Literal(Atom(marker))))
            buckets[target].append(
                Rule(Literal(Atom(marker, (Constant("k0"),))))
            )
        elif kind == "growth":
            marker = "seeded_grow"
            z = Variable("Z0")
            buckets[target].append(
                Rule(Literal(Atom(marker, (Constant("k0"),))))
            )
            buckets[target].append(
                Rule(
                    Literal(Atom(marker, (Compound("f", (z,)),))),
                    (Literal(Atom(marker, (z,))),),
                )
            )
        elif kind == "unreachable":
            marker = "seeded_stray"
            target = marker
            if not pairs:
                # An isolated component only counts as unreachable when
                # the rest of the program does use the order.
                if len(names) >= 2:
                    pairs.add((names[0], names[1]))
                else:
                    buckets.setdefault("seeded_anchor", []).append(
                        Rule(Literal(Atom("seeded_anchor_mark")))
                    )
                    pairs.add(("seeded_anchor", names[0]))
            buckets[target] = [Rule(Literal(Atom(f"{marker}_mark")))]
        else:
            raise ValueError(
                f"unknown defect kind {kind!r}; "
                f"expected one of {', '.join(DEFECT_KINDS)}"
            )
        defects.append(
            InjectedDefect(kind, _DEFECT_CODES[kind], marker, target)
        )

    for kind in kinds:
        plant(kind)
    return (
        OrderedProgram(
            [Component(name, rules) for name, rules in sorted(buckets.items())],
            pairs,
        ),
        tuple(defects),
    )


def random_clean_program(
    rng: random.Random, **kwargs
) -> OrderedProgram:
    """A random ordered program repaired to be warning-clean under
    ``repro.analysis.static.analyze_program`` (informational notes such
    as potential defeats may remain)."""
    return _repair(random_ordered_program(rng, **kwargs))


def seeded_defect_program(
    rng: random.Random,
    kinds: Sequence[str] = DEFECT_KINDS,
    **kwargs,
) -> DefectSeededProgram:
    """A warning-clean random program plus a defective twin with the
    requested defect patterns injected (fresh ``seeded_*`` predicates),
    and the manifest of what was planted where.  The property suite uses
    this as the analyzer's oracle: every manifest entry must be
    reported, and the clean twin must stay warning-free."""
    clean = random_clean_program(rng, **kwargs)
    defective, defects = _inject_defects(rng, clean, kinds)
    return DefectSeededProgram(clean, defective, defects)


def random_stratified_program(
    rng: random.Random,
    n_atoms: int = 6,
    n_rules: int = 10,
    max_body: int = 3,
    neg_body_prob: float = 0.35,
    component_name: str = "main",
) -> OrderedProgram:
    """A random *stratified seminegative* single-component program —
    eligible for the classical-backend routing of ``OrderedSemantics``.

    Stratified by construction: atom ``p_i`` lives on stratum ``i``;
    positive body atoms are drawn from ``p_0 .. p_i`` and negative body
    atoms from ``p_0 .. p_{i-1}`` (strictly below the head), so no
    cycle can pass through a negative edge.
    """
    atoms = _atoms(n_atoms)
    rules = []
    for _ in range(n_rules):
        i = rng.randrange(n_atoms)
        head = Literal(atoms[i], True)
        body = []
        for _ in range(rng.randint(0, max_body)):
            if i > 0 and rng.random() < neg_body_prob:
                body.append(Literal(atoms[rng.randrange(i)], False))
            else:
                body.append(Literal(atoms[rng.randrange(i + 1)], True))
        rules.append(Rule(head, tuple(body)))
    return OrderedProgram.single(rules, name=component_name)
