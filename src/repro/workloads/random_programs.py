"""Seeded random program generators for property tests and fuzzing.

All generators are deterministic given a seed and produce *ground
propositional* programs: small Herbrand bases keep the exhaustive
(3^n) verification of the paper's theorems tractable, and propositional
programs already exercise every definition in the paper (grounding is
tested separately on first-order workloads).
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from ..lang.literals import Atom, Literal
from ..lang.program import Component, OrderedProgram
from ..lang.rules import Rule

__all__ = [
    "random_rules",
    "random_seminegative_rules",
    "random_negative_rules",
    "random_ordered_program",
]


def _atoms(n_atoms: int) -> list[Atom]:
    return [Atom(f"p{i}") for i in range(n_atoms)]


def random_rules(
    rng: random.Random,
    n_atoms: int,
    n_rules: int,
    max_body: int = 2,
    neg_head_prob: float = 0.3,
    neg_body_prob: float = 0.3,
) -> list[Rule]:
    """Random ground rules over ``n_atoms`` propositional atoms."""
    atoms = _atoms(n_atoms)
    rules = []
    for _ in range(n_rules):
        head_atom = rng.choice(atoms)
        head = Literal(head_atom, rng.random() >= neg_head_prob)
        body_size = rng.randint(0, max_body)
        body = []
        for _ in range(body_size):
            atom = rng.choice(atoms)
            body.append(Literal(atom, rng.random() >= neg_body_prob))
        rules.append(Rule(head, tuple(body)))
    return rules


def random_seminegative_rules(
    rng: random.Random,
    n_atoms: int,
    n_rules: int,
    max_body: int = 2,
    neg_body_prob: float = 0.4,
) -> list[Rule]:
    """Random ground seminegative rules (positive heads)."""
    return random_rules(
        rng,
        n_atoms,
        n_rules,
        max_body=max_body,
        neg_head_prob=0.0,
        neg_body_prob=neg_body_prob,
    )


def random_negative_rules(
    rng: random.Random,
    n_atoms: int,
    n_rules: int,
    max_body: int = 2,
    neg_head_prob: float = 0.35,
) -> list[Rule]:
    """Random ground negative-program rules, guaranteed to contain at
    least one negative-head rule when ``n_rules > 0``."""
    rules = random_rules(
        rng, n_atoms, n_rules, max_body=max_body, neg_head_prob=neg_head_prob
    )
    if rules and all(r.head.positive for r in rules):
        first = rules[0]
        rules[0] = Rule(first.head.complement(), first.body)
    return rules


def random_ordered_program(
    rng: random.Random,
    n_atoms: int = 4,
    n_components: int = 3,
    n_rules: int = 8,
    max_body: int = 2,
    neg_head_prob: float = 0.35,
    neg_body_prob: float = 0.3,
    order_density: float = 0.5,
    component_names: Optional[Sequence[str]] = None,
) -> OrderedProgram:
    """A random ground ordered program.

    Rules are distributed uniformly over the components; each pair
    ``(c_i, c_j)`` with ``i < j`` is put in the order with probability
    ``order_density`` (taking ``c_i < c_j``, which keeps the relation
    acyclic by construction).
    """
    names = list(component_names or (f"c{i}" for i in range(n_components)))
    rules = random_rules(
        rng,
        n_atoms,
        n_rules,
        max_body=max_body,
        neg_head_prob=neg_head_prob,
        neg_body_prob=neg_body_prob,
    )
    buckets: dict[str, list[Rule]] = {name: [] for name in names}
    for r in rules:
        buckets[rng.choice(names)].append(r)
    pairs = []
    for i in range(len(names)):
        for j in range(i + 1, len(names)):
            if rng.random() < order_density:
                pairs.append((names[i], names[j]))
    return OrderedProgram(
        [Component(name, bucket) for name, bucket in buckets.items()], pairs
    )
