"""Large-EDB point-query workloads: a wide forest of small ownership
trees.

The shape is deliberately *wide*, not deep: ``n_trees`` disjoint
complete binary trees of ``depth`` levels, each root owned by one
person.  A ground or half-ground goal (``ancestor(r17_0, X)``,
``owns(p17, n)``) touches exactly one tree, so goal-directed (demand)
evaluation does work proportional to one tree while full
materialization grounds and closes the whole forest — the demand
speedup grows linearly with ``n_trees``.  A deep chain would *not*
show this: transitive closure from a chain node is inherently
quadratic in the suffix, whichever strategy runs it.

``forest_program`` builds the in-memory program (benchmarks);
``load_forest_edb`` bulk-loads the same facts into a disk-backed
:class:`~repro.db.edb.EdbStore` and returns the rules-only program
(the ``olp serve --edb`` / 10M-fact path).
"""

from __future__ import annotations

import random
from typing import Iterator

from ..lang.literals import Atom, Literal
from ..lang.parser import parse_rules
from ..lang.program import Component, OrderedProgram
from ..lang.rules import Rule
from ..lang.terms import Constant

__all__ = [
    "FOREST_RULES",
    "forest_facts",
    "forest_program",
    "forest_rules",
    "load_forest_edb",
    "point_goals",
]

#: The intensional part: reachability inside a tree plus ownership of
#: every node under an owned root.
FOREST_RULES = """
ancestor(X, Y) <- parent(X, Y).
ancestor(X, Z) <- parent(X, Y), ancestor(Y, Z).
owns(P, N) <- owner(P, R), ancestor(R, N).
"""


def forest_rules() -> tuple[Rule, ...]:
    return tuple(parse_rules(FOREST_RULES))


def forest_facts(
    n_trees: int, depth: int = 4
) -> Iterator[tuple[str, tuple[Constant, ...]]]:
    """``(predicate, row)`` pairs for the forest: ``parent`` edges of
    each complete binary tree and one ``owner`` fact per root.

    A tree of ``depth`` levels has ``2**depth - 1`` nodes; node ``j``
    of tree ``i`` is the constant ``n<i>_<j>`` (``j = 0`` is the root).
    """
    n_nodes = 2**depth - 1
    for i in range(n_trees):
        yield "owner", (Constant(f"p{i}"), Constant(f"n{i}_0"))
        for j in range(1, n_nodes):
            parent = Constant(f"n{i}_{(j - 1) // 2}")
            yield "parent", (parent, Constant(f"n{i}_{j}"))


def forest_program(n_trees: int, depth: int = 4) -> OrderedProgram:
    """The forest as a single-component in-memory program."""
    rules = list(forest_rules())
    for predicate, row in forest_facts(n_trees, depth):
        rules.append(Rule(Literal(Atom(predicate, row))))
    return OrderedProgram([Component("main", rules)], ())


def load_forest_edb(store, n_trees: int, depth: int = 4) -> OrderedProgram:
    """Bulk-load the forest facts into an :class:`~repro.db.edb.EdbStore`
    and return the rules-only program to pair it with."""
    parents = []
    owners = []
    for predicate, row in forest_facts(n_trees, depth):
        (parents if predicate == "parent" else owners).append(row)
    store.bulk_load("parent", 2, parents)
    store.bulk_load("owner", 2, owners)
    return OrderedProgram([Component("main", list(forest_rules()))], ())


def point_goals(
    rng: random.Random, n_trees: int, depth: int = 4, count: int = 1
) -> list[str]:
    """Point-query goals, each touching one random tree: the subtree
    below a root and one membership check of a deepest-level node."""
    n_nodes = 2**depth - 1
    goals = []
    for _ in range(count):
        i = rng.randrange(n_trees)
        goals.append(f"ancestor(n{i}_0, X)")
        goals.append(f"owns(p{i}, n{i}_{n_nodes - 1})")
    return goals[:count] if count == 1 else goals
