"""Inheritance-hierarchy workloads: chains, diamonds and taxonomies.

These exercise the two contradiction-resolution mechanisms at scale:

* :func:`override_chain` — a linear isa chain where every level flips a
  default, so the meaning at the bottom depends on the chain's parity
  (pure *overruling* at depth);
* :func:`diamond` — the classic multiple-inheritance diamond whose two
  middle components disagree (pure *defeating*);
* :func:`taxonomy` — a synthetic animal-style taxonomy with defaults and
  per-species exceptions, the paper's Figure-1 pattern grown to
  realistic size;
* :func:`release_chain` — the Figure-1 blocked-overruler *release*
  serialized: the fixpoint advances one level every two stages, the
  worst case for naive full-rescan iteration.
"""

from __future__ import annotations

from ..lang.parser import parse_rules
from ..lang.program import Component, OrderedProgram

__all__ = ["override_chain", "diamond", "taxonomy", "release_chain"]


def override_chain(depth: int) -> OrderedProgram:
    """A chain ``c0 < c1 < ... < c<depth>`` where the top asserts ``p(a)``
    and each level below flips the sign.

    At the bottom component the value of ``p(a)`` is positive when
    ``depth`` is even (the bottom-most flip wins and flips an odd number
    of times from the top's positive assertion when depth is odd).
    Expected meaning at ``c0``: ``p(a)`` if depth is even, ``-p(a)``
    otherwise — each component overrules everything above it.
    """
    if depth < 0:
        raise ValueError("depth must be non-negative")
    components = []
    pairs = []
    for level in range(depth + 1):
        sign = "" if (depth - level) % 2 == 0 else "-"
        components.append(Component(f"c{level}", parse_rules(f"{sign}p(a).")))
        if level + 1 <= depth:
            pairs.append((f"c{level}", f"c{level + 1}"))
    return OrderedProgram(components, pairs)


def diamond(n_atoms: int = 1) -> OrderedProgram:
    """A diamond ``bottom < left``, ``bottom < right``, ``left < top``,
    ``right < top``: the top says ``q(i)`` for each atom, ``left``
    refines it to ``p(i)`` and ``right`` to ``-p(i)``.

    ``left`` and ``right`` are incomparable, so at ``bottom`` every
    ``p(i)`` is *defeated* (undefined) while ``q(i)`` survives.
    """
    if n_atoms < 1:
        raise ValueError("n_atoms must be positive")
    tops = [f"q(v{i})." for i in range(n_atoms)]
    return OrderedProgram(
        [
            Component("top", parse_rules("\n".join(tops))),
            Component("left", parse_rules("p(X) :- q(X).")),
            Component("right", parse_rules("-p(X) :- q(X).")),
            Component("bottom", ()),
        ],
        [
            ("bottom", "left"),
            ("bottom", "right"),
            ("left", "top"),
            ("right", "top"),
        ],
    )


def taxonomy(n_species: int, n_exceptional: int) -> OrderedProgram:
    """A two-level taxonomy in the Figure-1 pattern.

    ``general`` says every animal moves and does not swim; the specific
    component marks the first ``n_exceptional`` species aquatic, and
    aquatic animals swim (overruling the default).  Expected meaning at
    ``specific``: ``swims(s<i>)`` for exceptional species, ``-swims``
    for the rest; ``moves`` for everyone.
    """
    if n_exceptional > n_species:
        raise ValueError("n_exceptional cannot exceed n_species")
    general_lines = [
        "moves(X) :- animal(X).",
        "-swims(X) :- animal(X).",
        # Default closure in the Figure-1 pattern: animals are presumed
        # non-aquatic unless a more specific component says otherwise.
        "-aquatic(X) :- animal(X).",
    ]
    general_lines += [f"animal(s{i})." for i in range(n_species)]
    specific_lines = ["swims(X) :- aquatic(X)."]
    specific_lines += [f"aquatic(s{i})." for i in range(n_exceptional)]
    return OrderedProgram(
        {
            "general": parse_rules("\n".join(general_lines)),
            "specific": parse_rules("\n".join(specific_lines)),
        },
        [("specific", "general")],
    )


def release_chain(depth: int) -> OrderedProgram:
    """A serialized ladder of Figure-1 overruler releases.

    For each level ``i`` in ``1..depth`` the upper component carries
    ``p(i) :- p(i-1)`` and ``-q(i) :- p(i-1)`` while the lower
    component threatens with ``-p(i) :- q(i)``.  The threat is *not
    blocked* until ``-q(i)`` is derived, so ``p(i)`` stays overruled
    for exactly one extra stage: deriving ``p(i-1)`` first unlocks
    ``-q(i)``, whose derivation blocks the threat, which releases
    ``p(i)``.  The least model therefore grows by one level every two
    stages — ``2·depth + 1`` stages in all — and every literal
    ``p(0..depth)`` and ``-q(1..depth)`` is eventually true.

    Naive iteration rescans all ``3·depth + 1`` ground rules at each of
    those stages (``O(depth²)`` work); the semi-naive engine touches
    each watch list O(1) times (``O(depth)``), which is what
    ``benchmarks/bench_fixpoint_scaling.py`` measures.
    """
    if depth < 1:
        raise ValueError("depth must be positive")
    upper_lines = ["p(0)."]
    lower_lines = []
    for i in range(1, depth + 1):
        upper_lines.append(f"p({i}) :- p({i - 1}).")
        upper_lines.append(f"-q({i}) :- p({i - 1}).")
        lower_lines.append(f"-p({i}) :- q({i}).")
    return OrderedProgram(
        [
            Component("threats", parse_rules("\n".join(lower_lines))),
            Component("ladder", parse_rules("\n".join(upper_lines))),
        ],
        [("threats", "ladder")],
    )
