"""The ``interactive_session`` workload: a stream of tell/ask/retract
operations against a deep isa hierarchy.

Section 5 of the paper pitches ordered logic as the kernel of an
interactive knowledge base system; the implemented descendants of that
line (DLV:sup:`<`, OLP solvers) treat programs as long-lived artifacts
queried and *updated* repeatedly.  This module generates that workload
shape for the incremental-maintenance engine (docs/maintenance.md):

* :func:`session_program` — a membership registry over a deep isa
  chain.  The root holds the defaults (members are ok and not flagged;
  nothing is enrolled or suspicious unless said so — the paper's
  situation (i) closure assumptions as explicit default rules); each
  level ``level<j>`` below turns its local ``enrolled_<j>``/``sus_<j>``
  facts into membership and flags.  Telling ``enrolled_<j>(e)`` at
  ``level<j>`` *overrules* the root's closure default (the fact sits in
  a strictly lower component), which unblocks the membership rule;
  retracting it *un-overrules* the default, silently restoring the
  closed-world reading — the exact status dance the maintenance engine
  must re-evaluate.
* :func:`session_ops` — a deterministic, seeded stream of
  tell/ask/retract operations against the bottom view.
* :func:`build_session_kb` / :func:`run_session` — a ready-to-drive
  :class:`~repro.kb.knowledge_base.KnowledgeBase` and the driver used
  by ``benchmarks/bench_incremental_maintenance.py`` to compare the
  delta path against rebuild-from-scratch.

Every entity constant is pre-declared at the root via ``known`` facts,
so session tells stay inside the grounded Herbrand base and the delta
engine never needs to fall back to re-grounding.
"""

from __future__ import annotations

import random
from typing import Sequence

from ..kb.knowledge_base import KnowledgeBase
from ..lang.program import Component, OrderedProgram

__all__ = [
    "interactive_session",
    "session_program",
    "session_ops",
    "build_session_kb",
    "run_session",
]

#: One session operation: ``("tell"|"retract", object, fact)`` or
#: ``("ask", object, literal)``.
SessionOp = tuple[str, str, str]


def _entities(n_entities: int) -> list[str]:
    return [f"e{i}" for i in range(n_entities)]


def _root_rules(depth: int, n_entities: int) -> str:
    lines = [f"known({e})." for e in _entities(n_entities)]
    lines += [
        "ok(X) :- member(X).",
        "-flagged(X) :- member(X).",
        "-member(X) :- known(X).",
    ]
    for level in range(depth):
        lines.append(f"-enrolled_{level}(X) :- known(X).")
        lines.append(f"-sus_{level}(X) :- known(X).")
    return "\n".join(lines)


def _level_rules(level: int) -> str:
    return "\n".join(
        [
            f"member(X) :- enrolled_{level}(X).",
            f"flagged(X) :- sus_{level}(X).",
        ]
    )


def session_program(depth: int, n_entities: int) -> OrderedProgram:
    """The registry hierarchy as an immutable ordered program:
    ``level0 < level1 < ... < level<depth-1> < root``."""
    if depth < 1:
        raise ValueError("depth must be positive")
    if n_entities < 1:
        raise ValueError("n_entities must be positive")
    from ..lang.parser import parse_rules

    components = [Component("root", parse_rules(_root_rules(depth, n_entities)))]
    pairs = []
    for level in range(depth):
        components.append(
            Component(f"level{level}", parse_rules(_level_rules(level)))
        )
        above = "root" if level == depth - 1 else f"level{level + 1}"
        pairs.append((f"level{level}", above))
    return OrderedProgram(components, pairs)


def interactive_session(depth: int = 6, n_entities: int = 8) -> OrderedProgram:
    """Alias of :func:`session_program` under the workload's name."""
    return session_program(depth, n_entities)


def build_session_kb(
    depth: int, n_entities: int, maintenance: bool = True
) -> KnowledgeBase:
    """The same hierarchy as a mutable knowledge base.

    ``maintenance=False`` disables the delta engine so every mutation
    invalidates and every ask recomputes — the rebuild-from-scratch
    baseline the benchmark compares against.
    """
    from ..core.maintenance import MaintenanceConfig

    kb = KnowledgeBase(maintenance=MaintenanceConfig(enabled=maintenance))
    kb.define("root", _root_rules(depth, n_entities))
    below = "root"
    for level in reversed(range(depth)):
        kb.define(f"level{level}", _level_rules(level), isa=[below])
        below = f"level{level}"
    return kb


def session_ops(
    depth: int,
    n_entities: int,
    n_ops: int,
    seed: int = 0x5E55,
) -> list[SessionOp]:
    """A deterministic tell/ask/retract stream against the bottom view.

    The mix is roughly 40% tells, 20% retracts (of previously told
    facts) and 40% asks, which keeps a growing-but-churning fact set —
    the interactive-session shape.  Operations target random levels;
    asks query membership/flags at the most specific object ``level0``.
    """
    rng = random.Random(seed)
    entities = _entities(n_entities)
    told: list[tuple[str, str]] = []
    ops: list[SessionOp] = []
    for _ in range(n_ops):
        roll = rng.random()
        if roll < 0.4 or (roll < 0.6 and not told):
            level = rng.randrange(depth)
            pred = rng.choice([f"enrolled_{level}", f"sus_{level}"])
            fact = f"{pred}({rng.choice(entities)})."
            ops.append(("tell", f"level{level}", fact))
            told.append((f"level{level}", fact))
        elif roll < 0.6:
            obj, fact = told.pop(rng.randrange(len(told)))
            ops.append(("retract", obj, fact))
        else:
            pred = rng.choice(["member", "ok", "flagged", "-member", "-flagged"])
            ops.append(("ask", "level0", f"{pred}({rng.choice(entities)})"))
    return ops


def run_session(kb: KnowledgeBase, ops: Sequence[SessionOp]) -> dict[str, int]:
    """Drive a knowledge base through a session; returns op counts plus
    the number of positive answers (a cheap checksum the benchmark uses
    to assert delta and rebuild modes agree)."""
    counts = {"tell": 0, "retract": 0, "ask": 0, "yes": 0}
    for kind, obj, payload in ops:
        if kind == "tell":
            kb.tell(obj, payload)
        elif kind == "retract":
            kb.retract(obj, payload)
        else:
            if kb.ask(obj, payload):
                counts["yes"] += 1
        counts[kind] += 1
    return counts
