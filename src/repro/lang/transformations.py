"""Structural transformations of ordered programs.

* :func:`flatten` — Example 2's construction: merge every component
  into one, *changing the meaning* (overruling between components
  becomes mutual defeat inside the single component — the paper's
  ``P̂1`` demonstration that the hierarchy is semantically load-bearing).
* :func:`restrict` — the sub-program a component actually sees:
  ``C*`` as a standalone ordered program (meaning-preserving for that
  component).
* :func:`merge` — disjoint union of two ordered programs, with
  optional extra order pairs connecting them (how a knowledge base
  adopts a library of modules).
* :func:`relabel` — rename components consistently.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from .errors import SemanticsError
from .program import Component, OrderedProgram

__all__ = ["flatten", "restrict", "merge", "relabel"]


def flatten(program: OrderedProgram, name: str = "flat") -> OrderedProgram:
    """All rules in a single component with an empty order.

    This is *not* meaning-preserving: rules that used to overrule each
    other now defeat each other (Example 2: ``fly(penguin)`` goes from
    false in ``P1``'s ``c1`` to undefined in ``P̂1``).  Duplicated rules
    collapse (a component is a set of rules).
    """
    rules = [r for comp in program.components() for r in comp.rules]
    return OrderedProgram.single(rules, name=name)


def restrict(program: OrderedProgram, component: str) -> OrderedProgram:
    """The ordered program ``C*``: the component plus everything above
    it, with the order restricted accordingly.

    Meaning-preserving for ``component`` (Definition 1(b): its
    interpretations and models are those of ``C*``), and for every
    surviving component (their upsets are unchanged).
    """
    if component not in program:
        raise SemanticsError(f"no component named {component!r}")
    keep = program.order.upset(component)
    components = [
        comp for comp in program.components() if comp.name in keep
    ]
    pairs = [
        (low, high)
        for low, high in program.order.pairs()
        if low in keep and high in keep
    ]
    return OrderedProgram(components, pairs)


def merge(
    first: OrderedProgram,
    second: OrderedProgram,
    extra_order: Iterable[tuple[str, str]] = (),
) -> OrderedProgram:
    """The union of two ordered programs with disjoint component names.

    ``extra_order`` may relate components across (or within) the two;
    cycles are rejected as usual.

    Raises:
        SemanticsError: if the name sets overlap.
    """
    overlap = first.component_names & second.component_names
    if overlap:
        raise SemanticsError(
            f"component names overlap: {sorted(overlap)}; relabel first"
        )
    components = list(first.components()) + list(second.components())
    pairs = list(first.order.pairs()) + list(second.order.pairs())
    pairs.extend(extra_order)
    return OrderedProgram(components, pairs)


def relabel(
    program: OrderedProgram, mapping: Mapping[str, str]
) -> OrderedProgram:
    """Rename components; names missing from the mapping are kept.

    Raises:
        SemanticsError: if the renaming collides.
    """
    new_names = {
        name: mapping.get(name, name) for name in program.component_names
    }
    if len(set(new_names.values())) != len(new_names):
        raise SemanticsError(f"relabelling collides: {mapping}")
    components = [
        Component(new_names[comp.name], comp.rules)
        for comp in program.components()
    ]
    pairs = [
        (new_names[low], new_names[high])
        for low, high in program.order.pairs()
    ]
    return OrderedProgram(components, pairs)
