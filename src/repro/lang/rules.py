"""Rules (Section 2 of the paper).

A *rule* is ``Q0 <- Q1, ..., Qm`` where the ``Qi`` are literals; ``Q0``
is the head and ``Q1 .. Qm`` the body.  Following the paper:

* a **negative rule** (the general case, just "rule") allows negative
  literals anywhere, including the head;
* a **seminegative rule** has a positive head (negative literals may
  still occur in the body);
* a **positive rule** (Horn clause) has only positive literals;
* a **fact** is a rule with an empty body, and a rule is **ground**
  when it is variable free.

Bodies may additionally contain :class:`~repro.lang.builtins.Comparison`
guards (Figure 3 uses ``X > 11``); guards are resolved away during
grounding, so *ground* rules produced by the grounder carry literals
only.
"""

from __future__ import annotations

from typing import Iterable, Union

from .builtins import Comparison
from .literals import Literal
from .terms import Variable

__all__ = ["BodyItem", "Rule", "rule", "fact"]

#: Items allowed in rule bodies: literals and comparison guards.
BodyItem = Union[Literal, Comparison]


class Rule:
    """An immutable rule ``head <- body``.

    The paper's accessors are provided verbatim: :attr:`head` is ``H(r)``
    and :meth:`body_literals` is ``B(r)`` (the *set* of literals in the
    body; guards are not part of ``B(r)``).
    """

    __slots__ = ("head", "body", "_hash")

    def __init__(self, head: Literal, body: Iterable[BodyItem] = ()) -> None:
        if not isinstance(head, Literal):
            raise TypeError(f"rule head must be a Literal, got {head!r}")
        body = tuple(body)
        for item in body:
            if not isinstance(item, (Literal, Comparison)):
                raise TypeError(
                    f"rule body items must be Literal or Comparison, got {item!r}"
                )
        object.__setattr__(self, "head", head)
        object.__setattr__(self, "body", body)
        object.__setattr__(self, "_hash", hash(("rule", head, body)))

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("Rule is immutable")

    # ------------------------------------------------------------------
    # Paper notation
    # ------------------------------------------------------------------
    def body_literals(self) -> tuple[Literal, ...]:
        """``B(r)``: the literals of the body, in order (guards excluded)."""
        return tuple(item for item in self.body if isinstance(item, Literal))

    def body_literal_set(self) -> frozenset[Literal]:
        """``B(r)`` as a set, the form used by Definition 2."""
        return frozenset(self.body_literals())

    def guards(self) -> tuple[Comparison, ...]:
        """The comparison guards of the body, in order."""
        return tuple(item for item in self.body if isinstance(item, Comparison))

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    @property
    def is_fact(self) -> bool:
        """True when the body is empty (guards count as body)."""
        return not self.body

    @property
    def is_ground(self) -> bool:
        """True when the rule is variable free."""
        return not self.variables()

    @property
    def is_seminegative(self) -> bool:
        """True when the head is positive (body may contain ``¬``)."""
        return self.head.positive

    @property
    def is_positive(self) -> bool:
        """True for Horn clauses: positive head and all-positive body."""
        return self.head.positive and all(
            item.positive for item in self.body if isinstance(item, Literal)
        )

    @property
    def has_negative_head(self) -> bool:
        """True for the paper's 'negative rules' proper: ``¬A <- ...``."""
        return not self.head.positive

    def variables(self) -> frozenset[Variable]:
        result = self.head.variables()
        for item in self.body:
            result |= item.variables()
        return result

    def rename(self, suffix: str) -> "Rule":
        """A copy of the rule with every variable renamed by appending
        ``suffix`` — used to standardise rules apart."""
        from ..grounding.substitution import Substitution

        mapping = {v: Variable(v.name + suffix) for v in self.variables()}
        return Substitution(mapping).apply_rule(self)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Rule)
            and other._hash == self._hash
            and other.head == self.head
            and other.body == self.body
        )

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other: "Rule") -> bool:
        if not isinstance(other, Rule):
            return NotImplemented
        return str(self) < str(other)

    def __str__(self) -> str:
        if not self.body:
            return f"{self.head}."
        body = ", ".join(str(item) for item in self.body)
        return f"{self.head} :- {body}."

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return f"Rule({self})"


def rule(head: Literal, *body: BodyItem) -> Rule:
    """Shorthand constructor: ``rule(pos('fly', 'X'), pos('bird', 'X'))``."""
    return Rule(head, body)


def fact(head: Literal) -> Rule:
    """Shorthand constructor for a fact."""
    return Rule(head, ())
