"""Pretty-printer: render programs back to parseable ``.olp`` source.

``parse_program(render_program(p))`` is equivalent to ``p`` — the
round-trip property is part of the test-suite.  Rules and literals use
the same ``str`` renderings as their classes; this module adds the
program-level layout (component blocks and order declarations).
"""

from __future__ import annotations

from .program import Component, OrderedProgram
from .rules import Rule

__all__ = ["render_rule", "render_component", "render_program"]


def render_rule(r: Rule, indent: str = "") -> str:
    """One rule as source text."""
    return f"{indent}{r}"


def render_component(comp: Component, indent: str = "  ") -> str:
    """A component block as source text."""
    lines = [f"component {comp.name} {{"]
    lines.extend(render_rule(r, indent) for r in comp.rules)
    lines.append("}")
    return "\n".join(lines)


def render_program(program: OrderedProgram) -> str:
    """A whole ordered program as source text.

    Components are emitted most-general-first; the order relation is
    emitted as its transitive reduction (one ``order`` line per covering
    pair), which parses back to the same transitive closure.
    """
    parts = [render_component(program.component(name))
             for name in program.order.topological()]
    for low, high in sorted(program.order.covering_pairs()):
        parts.append(f"order {low} < {high}.")
    return "\n\n".join(parts) + "\n"
