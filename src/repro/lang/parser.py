"""Recursive-descent parser for the ``.olp`` surface syntax.

Grammar (EBNF, ``%`` comments handled by the lexer)::

    program     ::= (component | order_decl | rule)*
    component   ::= "component" IDENT "{" rule* "}"
    order_decl  ::= "order" IDENT ("<" IDENT)+ "."
    rule        ::= head ((":-" | "<-") body)? "."
    head        ::= literal
    body        ::= body_item ("," body_item)*
    body_item   ::= literal | comparison
    literal     ::= ("-" | "~")? atom
    atom        ::= IDENT ("(" term ("," term)* ")")?
    term        ::= VARIABLE | INTEGER | "-" INTEGER
                  | IDENT ("(" term ("," term)* ")")?
    comparison  ::= expr cmp_op expr
    cmp_op      ::= "<" | "<=" | ">" | ">=" | "=" | "!="
    expr        ::= mul (("+" | "-") mul)*
    mul         ::= unary (("*" | "/") unary)*
    unary       ::= "-" unary | INTEGER | VARIABLE | "(" expr ")"

Rules outside any ``component`` block belong to the implicit component
``main``.  An ``order`` chain ``order c1 < c2 < c3.`` declares both
pairs.  ``-``/``~`` before an atom is the paper's classical negation; in
comparisons ``-`` is arithmetic minus (the parser disambiguates by
attempting an expression and backtracking to a literal).
"""

from __future__ import annotations

from typing import Optional

from .builtins import ArithExpr, BinaryOp, Comparison
from .errors import ParseError
from .lexer import Token, TokenType, tokenize
from .literals import Atom, Literal
from .program import Component, OrderedProgram
from .rules import BodyItem, Rule
from .terms import Constant, Compound, Term, Variable

__all__ = [
    "parse_program",
    "parse_rules",
    "parse_rule",
    "parse_literal",
    "parse_term",
    "DEFAULT_COMPONENT",
]

#: Name of the implicit component for top-level rules.
DEFAULT_COMPONENT = "main"

_CMP_TOKENS = {
    TokenType.LT: "<",
    TokenType.LE: "<=",
    TokenType.GT: ">",
    TokenType.GE: ">=",
    TokenType.EQ: "=",
    TokenType.NE: "!=",
}


class _Parser:
    def __init__(self, source: str) -> None:
        self._tokens = tokenize(source)
        self._index = 0

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        i = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[i]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.type is not TokenType.EOF:
            self._index += 1
        return token

    def _check(self, ttype: TokenType) -> bool:
        return self._peek().type is ttype

    def _accept(self, ttype: TokenType) -> Optional[Token]:
        if self._check(ttype):
            return self._advance()
        return None

    def _expect(self, ttype: TokenType, context: str) -> Token:
        token = self._peek()
        if token.type is not ttype:
            raise ParseError(
                f"expected {ttype.value!r} {context}, found {token.text!r}",
                token.line,
                token.column,
            )
        return self._advance()

    def _error(self, message: str) -> ParseError:
        token = self._peek()
        return ParseError(message, token.line, token.column)

    # ------------------------------------------------------------------
    # Program structure
    # ------------------------------------------------------------------
    def program(self) -> OrderedProgram:
        components: dict[str, list[Rule]] = {}
        order: list[tuple[str, str]] = []
        while not self._check(TokenType.EOF):
            token = self._peek()
            if token.type is TokenType.IDENT and token.text == "component":
                name, rules = self._component()
                components.setdefault(name, []).extend(rules)
            elif token.type is TokenType.IDENT and token.text == "order":
                order.extend(self._order_decl())
            else:
                components.setdefault(DEFAULT_COMPONENT, []).append(self.rule())
        for low, high in order:
            for name in (low, high):
                if name not in components:
                    components[name] = []
        comps = [Component(name, rules) for name, rules in components.items()]
        return OrderedProgram(comps, order)

    def _component(self) -> tuple[str, list[Rule]]:
        self._advance()  # 'component'
        name_token = self._expect(TokenType.IDENT, "as component name")
        self._expect(TokenType.LBRACE, "to open the component body")
        rules: list[Rule] = []
        while not self._check(TokenType.RBRACE):
            if self._check(TokenType.EOF):
                raise self._error("unterminated component body")
            rules.append(self.rule())
        self._advance()  # '}'
        return name_token.text, rules

    def _order_decl(self) -> list[tuple[str, str]]:
        self._advance()  # 'order'
        names = [self._expect(TokenType.IDENT, "as component name in order").text]
        while self._accept(TokenType.LT):
            names.append(
                self._expect(TokenType.IDENT, "as component name in order").text
            )
        if len(names) < 2:
            raise self._error("order declaration needs at least two components")
        self._expect(TokenType.DOT, "to end the order declaration")
        return [(names[i], names[i + 1]) for i in range(len(names) - 1)]

    # ------------------------------------------------------------------
    # Rules
    # ------------------------------------------------------------------
    def rule(self) -> Rule:
        head = self.literal()
        body: list[BodyItem] = []
        if self._accept(TokenType.IF):
            body.append(self.body_item())
            while self._accept(TokenType.COMMA):
                body.append(self.body_item())
        self._expect(TokenType.DOT, "to end the rule")
        return Rule(head, tuple(body))

    def body_item(self) -> BodyItem:
        # Unambiguous literal starts: negation sign, or an identifier that
        # is not followed by an arithmetic/comparison continuation.
        token = self._peek()
        if token.type in (TokenType.MINUS, TokenType.TILDE):
            nxt = self._peek(1)
            if nxt.type is TokenType.IDENT:
                return self.literal()
            # '-3 < X' style guard
            return self._comparison()
        if token.type is TokenType.IDENT:
            return self.literal()
        if token.type in (TokenType.VARIABLE, TokenType.INTEGER, TokenType.LPAREN):
            return self._comparison()
        raise self._error(f"cannot start a body item with {token.text!r}")

    def _comparison(self) -> Comparison:
        left = self._expr()
        op_token = self._peek()
        op = _CMP_TOKENS.get(op_token.type)
        if op is None:
            raise self._error(
                f"expected a comparison operator after expression, found {op_token.text!r}"
            )
        self._advance()
        right = self._expr()
        return Comparison(op, left, right)

    # ------------------------------------------------------------------
    # Literals, atoms, terms
    # ------------------------------------------------------------------
    def literal(self) -> Literal:
        positive = True
        if self._accept(TokenType.MINUS) or self._accept(TokenType.TILDE):
            positive = False
        return Literal(self.atom(), positive)

    def atom(self) -> Atom:
        name = self._expect(TokenType.IDENT, "as predicate symbol")
        args: list[Term] = []
        if self._accept(TokenType.LPAREN):
            args.append(self.term())
            while self._accept(TokenType.COMMA):
                args.append(self.term())
            self._expect(TokenType.RPAREN, "to close the argument list")
        return Atom(name.text, tuple(args))

    def term(self) -> Term:
        token = self._peek()
        if token.type is TokenType.VARIABLE:
            self._advance()
            return Variable(token.text)
        if token.type is TokenType.INTEGER:
            self._advance()
            return Constant(int(token.text))
        if token.type is TokenType.MINUS and self._peek(1).type is TokenType.INTEGER:
            self._advance()
            value = self._advance()
            return Constant(-int(value.text))
        if token.type is TokenType.IDENT:
            self._advance()
            if self._accept(TokenType.LPAREN):
                args = [self.term()]
                while self._accept(TokenType.COMMA):
                    args.append(self.term())
                self._expect(TokenType.RPAREN, "to close the term argument list")
                return Compound(token.text, tuple(args))
            return Constant(token.text)
        raise self._error(f"expected a term, found {token.text!r}")

    # ------------------------------------------------------------------
    # Arithmetic expressions
    # ------------------------------------------------------------------
    def _expr(self) -> ArithExpr:
        left = self._mul()
        while True:
            if self._accept(TokenType.PLUS):
                left = BinaryOp("+", left, self._mul())
            elif self._check(TokenType.MINUS) and not self._minus_starts_literal():
                self._advance()
                left = BinaryOp("-", left, self._mul())
            else:
                return left

    def _minus_starts_literal(self) -> bool:
        """In expression position a '-' followed by an identifier would be
        a negated literal of the *next* body item; that is a parse error
        here and will be reported by the caller, so treat it as ending
        the expression."""
        return self._peek(1).type is TokenType.IDENT

    def _mul(self) -> ArithExpr:
        left = self._unary()
        while True:
            if self._accept(TokenType.STAR):
                left = BinaryOp("*", left, self._unary())
            elif self._accept(TokenType.SLASH):
                left = BinaryOp("/", left, self._unary())
            else:
                return left

    def _unary(self) -> ArithExpr:
        if self._accept(TokenType.MINUS):
            inner = self._unary()
            if isinstance(inner, Constant) and isinstance(inner.value, int):
                return Constant(-inner.value)
            return BinaryOp("-", Constant(0), inner)
        token = self._peek()
        if token.type is TokenType.INTEGER:
            self._advance()
            return Constant(int(token.text))
        if token.type is TokenType.VARIABLE:
            self._advance()
            return Variable(token.text)
        if self._accept(TokenType.LPAREN):
            inner = self._expr()
            self._expect(TokenType.RPAREN, "to close the expression")
            return inner
        raise self._error(
            f"expected an arithmetic operand, found {token.text!r}"
        )

    # ------------------------------------------------------------------
    # End-of-input helpers for the standalone entry points
    # ------------------------------------------------------------------
    def expect_eof(self, what: str) -> None:
        token = self._peek()
        if token.type is not TokenType.EOF:
            raise ParseError(
                f"unexpected trailing input after {what}: {token.text!r}",
                token.line,
                token.column,
            )


def parse_program(source: str) -> OrderedProgram:
    """Parse an ``.olp`` source into an :class:`OrderedProgram`."""
    parser = _Parser(source)
    program = parser.program()
    parser.expect_eof("program")
    return program


def parse_rules(source: str) -> list[Rule]:
    """Parse a bare sequence of rules (no component syntax)."""
    parser = _Parser(source)
    rules: list[Rule] = []
    while not parser._check(TokenType.EOF):
        rules.append(parser.rule())
    return rules


def parse_rule(source: str) -> Rule:
    """Parse exactly one rule."""
    parser = _Parser(source)
    result = parser.rule()
    parser.expect_eof("rule")
    return result


def parse_literal(source: str) -> Literal:
    """Parse exactly one literal, e.g. ``-fly(penguin)``."""
    parser = _Parser(source)
    result = parser.literal()
    parser.expect_eof("literal")
    return result


def parse_term(source: str) -> Term:
    """Parse exactly one term."""
    parser = _Parser(source)
    result = parser.term()
    parser.expect_eof("term")
    return result
