"""Programs: components and ordered programs (Definition 1).

* :class:`Component` — a named *negative program*: a finite set of rules,
  possibly with negated heads.  It doubles as the representation of the
  paper's classical programs (a seminegative program is a component whose
  rules all have positive heads).
* :class:`OrderedProgram` — a finite partially ordered set of components.
  ``C_i < C_j`` means ``C_i`` is *more specific* than ``C_j``; every
  component sees its own rules as local rules and the rules of the
  components above it as global (inherited) rules.  ``C*`` (the rules a
  component sees) is :meth:`OrderedProgram.visible_rules`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Union

from .builtins import expr_leaf_terms
from .errors import SemanticsError
from .literals import Literal
from .poset import PartialOrder
from .rules import Rule
from .terms import Compound, Constant, Term, walk_terms

__all__ = ["Component", "OrderedProgram"]


class Component:
    """A named negative program — a finite sequence of rules.

    Rules keep their textual order (useful for printing) but compare as a
    multiset: two components with the same rules are equal.  Components
    are immutable; :meth:`extend` returns a new component.
    """

    __slots__ = ("name", "rules", "_hash")

    def __init__(self, name: str, rules: Iterable[Rule] = ()) -> None:
        if not name:
            raise ValueError("component name must be non-empty")
        rules = tuple(rules)
        for r in rules:
            if not isinstance(r, Rule):
                raise TypeError(f"component rules must be Rule, got {r!r}")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "rules", rules)
        object.__setattr__(self, "_hash", hash(("component", name, frozenset(rules))))

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("Component is immutable")

    # ------------------------------------------------------------------
    # Classification (paper Section 2)
    # ------------------------------------------------------------------
    @property
    def is_positive(self) -> bool:
        """True when every rule is a Horn clause."""
        return all(r.is_positive for r in self.rules)

    @property
    def is_seminegative(self) -> bool:
        """True when every rule has a positive head."""
        return all(r.is_seminegative for r in self.rules)

    @property
    def is_ground(self) -> bool:
        return all(r.is_ground for r in self.rules)

    # ------------------------------------------------------------------
    # Symbol inventories
    # ------------------------------------------------------------------
    def predicate_signatures(self) -> frozenset[tuple[str, int]]:
        """All ``(predicate, arity)`` pairs occurring in the component."""
        sigs = set()
        for r in self.rules:
            sigs.add(r.head.signature)
            for item in r.body_literals():
                sigs.add(item.signature)
        return frozenset(sigs)

    def constants(self) -> frozenset[Constant]:
        """All constants occurring in the component's rules."""
        found: set[Constant] = set()
        for term in self._all_terms():
            for sub in walk_terms(term):
                if isinstance(sub, Constant):
                    found.add(sub)
        return frozenset(found)

    def function_symbols(self) -> frozenset[tuple[str, int]]:
        """All ``(functor, arity)`` pairs occurring in the component."""
        found: set[tuple[str, int]] = set()
        for term in self._all_terms():
            for sub in walk_terms(term):
                if isinstance(sub, Compound):
                    found.add((sub.functor, sub.arity))
        return frozenset(found)

    def _all_terms(self) -> Iterator[Term]:
        for r in self.rules:
            yield from r.head.args
            for item in r.body_literals():
                yield from item.args
            # Guard constants (``X > 11``) occur in the program, so they
            # belong to the Herbrand universe.
            for guard in r.guards():
                yield from expr_leaf_terms(guard.left)
                yield from expr_leaf_terms(guard.right)

    def head_literals(self) -> frozenset[Literal]:
        """The set of (possibly non-ground) head literals."""
        return frozenset(r.head for r in self.rules)

    # ------------------------------------------------------------------
    # Manipulation
    # ------------------------------------------------------------------
    def extend(self, extra: Iterable[Rule], name: Union[str, None] = None) -> "Component":
        """A new component with ``extra`` rules appended."""
        return Component(name or self.name, self.rules + tuple(extra))

    def renamed(self, name: str) -> "Component":
        return Component(name, self.rules)

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self) -> Iterator[Rule]:
        return iter(self.rules)

    def __contains__(self, r: object) -> bool:
        return r in self.rules

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Component)
            and other.name == self.name
            and frozenset(other.rules) == frozenset(self.rules)
        )

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        body = "\n".join(f"  {r}" for r in self.rules)
        return f"component {self.name} {{\n{body}\n}}"

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return f"Component({self.name!r}, {len(self.rules)} rules)"


class OrderedProgram:
    """An ordered program ``P = <C, <>`` (Definition 1).

    Args:
        components: the components, either as :class:`Component` objects
            or as a mapping ``name -> iterable of rules``.
        order: pairs ``(low, high)`` asserting ``low < high`` — *low
            inherits from high*.  The transitive closure is taken; cycles
            raise :class:`~repro.lang.errors.OrderError`.
    """

    __slots__ = ("_components", "_order")

    def __init__(
        self,
        components: Union[Iterable[Component], Mapping[str, Iterable[Rule]]],
        order: Iterable[tuple[str, str]] = (),
    ) -> None:
        comps: dict[str, Component] = {}
        if isinstance(components, Mapping):
            for name, rules in components.items():
                comps[name] = Component(name, rules)
        else:
            for comp in components:
                if not isinstance(comp, Component):
                    raise TypeError(f"expected Component, got {comp!r}")
                if comp.name in comps:
                    raise SemanticsError(f"duplicate component name {comp.name!r}")
                comps[comp.name] = comp
        poset: PartialOrder = PartialOrder(comps.keys())
        for low, high in order:
            if low not in comps:
                raise SemanticsError(f"order refers to unknown component {low!r}")
            if high not in comps:
                raise SemanticsError(f"order refers to unknown component {high!r}")
            poset.add_pair(low, high)
        object.__setattr__(self, "_components", comps)
        object.__setattr__(self, "_order", poset)

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("OrderedProgram is immutable")

    # ------------------------------------------------------------------
    # Alternative constructors
    # ------------------------------------------------------------------
    @classmethod
    def single(cls, rules: Iterable[Rule], name: str = "main") -> "OrderedProgram":
        """An ordered program with one component and an empty order —
        the paper's flattened programs such as ``P̂1`` in Example 2."""
        return cls([Component(name, rules)])

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def order(self) -> PartialOrder:
        """The ``<`` relation (a strict partial order over names)."""
        return self._order

    @property
    def component_names(self) -> frozenset[str]:
        return frozenset(self._components)

    def component(self, name: str) -> Component:
        try:
            return self._components[name]
        except KeyError:
            raise SemanticsError(f"no component named {name!r}") from None

    def components(self) -> tuple[Component, ...]:
        """All components, most general first (deterministic order)."""
        return tuple(self._components[n] for n in self._order.topological())

    def __contains__(self, name: object) -> bool:
        return name in self._components

    def __len__(self) -> int:
        return len(self._components)

    # ------------------------------------------------------------------
    # Visibility (Definition 1b)
    # ------------------------------------------------------------------
    def visible_components(self, name: str) -> tuple[Component, ...]:
        """The components whose rules ``name`` sees: itself plus every
        component above it, most general first."""
        self.component(name)
        upset = self._order.upset(name)
        return tuple(
            self._components[n] for n in self._order.topological() if n in upset
        )

    def visible_rules(self, name: str) -> tuple[tuple[str, Rule], ...]:
        """``C*`` tagged with provenance: ``(component name, rule)`` pairs
        for every rule the component sees."""
        return tuple(
            (comp.name, r)
            for comp in self.visible_components(name)
            for r in comp.rules
        )

    # ------------------------------------------------------------------
    # Classification and inventories (aggregated over all components)
    # ------------------------------------------------------------------
    @property
    def is_seminegative(self) -> bool:
        return all(c.is_seminegative for c in self._components.values())

    @property
    def is_positive(self) -> bool:
        return all(c.is_positive for c in self._components.values())

    @property
    def is_ground(self) -> bool:
        return all(c.is_ground for c in self._components.values())

    def predicate_signatures(self) -> frozenset[tuple[str, int]]:
        sigs: frozenset[tuple[str, int]] = frozenset()
        for comp in self._components.values():
            sigs |= comp.predicate_signatures()
        return sigs

    def constants(self) -> frozenset[Constant]:
        found: frozenset[Constant] = frozenset()
        for comp in self._components.values():
            found |= comp.constants()
        return found

    def function_symbols(self) -> frozenset[tuple[str, int]]:
        found: frozenset[tuple[str, int]] = frozenset()
        for comp in self._components.values():
            found |= comp.function_symbols()
        return found

    def rule_count(self) -> int:
        return sum(len(c) for c in self._components.values())

    # ------------------------------------------------------------------
    # Manipulation
    # ------------------------------------------------------------------
    def with_component(
        self,
        comp: Component,
        below: Iterable[str] = (),
        above: Iterable[str] = (),
    ) -> "OrderedProgram":
        """A new program with ``comp`` added (or replaced), ordered below
        the components in ``below`` and above those in ``above``."""
        comps = dict(self._components)
        comps[comp.name] = comp
        pairs = set()
        for low, high in self._order.pairs():
            pairs.add((low, high))
        for high in below:
            pairs.add((comp.name, high))
        for low in above:
            pairs.add((low, comp.name))
        return OrderedProgram(list(comps.values()), pairs)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, OrderedProgram)
            and other._components == self._components
            and other._order == self._order
        )

    def __str__(self) -> str:
        parts = [str(self._components[n]) for n in self._order.topological()]
        pairs = sorted(self._order.covering_pairs())
        for low, high in pairs:
            parts.append(f"order {low} < {high}.")
        return "\n".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return (
            f"OrderedProgram({sorted(self._components)}, "
            f"{sorted(self._order.covering_pairs())})"
        )
