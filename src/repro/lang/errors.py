"""Exception hierarchy for the ordered logic programming library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing parse errors, grounding errors and semantic errors
when they need to.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ParseError",
    "LexerError",
    "OrderError",
    "GroundingError",
    "UnsafeRuleError",
    "SemanticsError",
    "InconsistencyError",
    "SearchBudgetExceeded",
    "QueryError",
]


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class LexerError(ReproError):
    """Raised when the lexer meets a character it cannot tokenize.

    Attributes:
        line: 1-based line of the offending character.
        column: 1-based column of the offending character.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class ParseError(ReproError):
    """Raised when the parser meets an unexpected token.

    Attributes:
        line: 1-based line of the offending token.
        column: 1-based column of the offending token.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class OrderError(ReproError):
    """Raised for an ill-formed component order.

    The ``<`` relation of an ordered program must be a strict partial
    order: adding a pair that would create a cycle, or referring to an
    unknown component, raises this error.
    """


class GroundingError(ReproError):
    """Raised when a program cannot be grounded.

    Typical causes: an unbounded Herbrand universe (function symbols
    without a ``max_depth``), or a grounding blow-up beyond the configured
    instance budget.
    """


class UnsafeRuleError(GroundingError):
    """Raised in strict mode for a rule whose variables are not range
    restricted (i.e. do not all occur in a positive body literal)."""


class SemanticsError(ReproError):
    """Raised for semantic-level misuse, e.g. asking for the meaning of a
    component that does not exist in the program."""


class InconsistencyError(SemanticsError):
    """Raised when an operation requires a consistent literal set but the
    given set contains a complementary pair ``A`` / ``¬A``."""


class SearchBudgetExceeded(SemanticsError):
    """Raised when model enumeration would exceed the configured search
    budget (number of branch literals or visited nodes).

    Enumerating models of ordered programs is exponential in the worst
    case (the paper notes that finding a total model is hard even for
    seminegative programs); the budget makes that explicit instead of
    silently hanging.

    Attributes:
        visited: leaves actually visited before giving up (None when the
            search was refused up front).
        estimate: estimated leaf count that triggered an up-front
            refusal (None when the budget was hit mid-search).
        budget: the limit that was exceeded.
    """

    def __init__(
        self,
        message: str,
        *,
        visited: "int | None" = None,
        estimate: "int | None" = None,
        budget: "int | None" = None,
    ) -> None:
        super().__init__(message)
        self.visited = visited
        self.estimate = estimate
        self.budget = budget


class QueryError(ReproError):
    """Raised for malformed queries against a knowledge base."""
