"""Lexer for the ``.olp`` surface syntax.

The token stream feeds the recursive-descent parser in
:mod:`repro.lang.parser`.  Conventions follow Prolog/Datalog usage:

* identifiers starting with a lowercase letter are constants, predicate
  symbols, function symbols or keywords (``component``, ``order``);
* identifiers starting with an uppercase letter or ``_`` are variables;
* ``%`` starts a comment running to end of line;
* ``-`` doubles as classical negation (before an atom) and arithmetic
  minus — the parser disambiguates; ``~`` is an unambiguous negation
  alternative.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

from .errors import LexerError

__all__ = ["TokenType", "Token", "tokenize"]


class TokenType(enum.Enum):
    IDENT = "ident"          # lowercase-first identifier
    VARIABLE = "variable"    # uppercase/underscore-first identifier
    INTEGER = "integer"
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    COMMA = ","
    DOT = "."
    IF = ":-"                # also accepts "<-"
    MINUS = "-"
    PLUS = "+"
    STAR = "*"
    SLASH = "/"
    TILDE = "~"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    EQ = "="
    NE = "!="
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    type: TokenType
    text: str
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.type.name}({self.text!r})@{self.line}:{self.column}"


_SINGLE = {
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    "{": TokenType.LBRACE,
    "}": TokenType.RBRACE,
    ",": TokenType.COMMA,
    ".": TokenType.DOT,
    "+": TokenType.PLUS,
    "*": TokenType.STAR,
    "/": TokenType.SLASH,
    "~": TokenType.TILDE,
    "=": TokenType.EQ,
}


def tokenize(source: str) -> list[Token]:
    """Turn source text into a token list ending with an EOF token.

    Raises:
        LexerError: on any character outside the language.
    """
    return list(_scan(source))


def _scan(source: str) -> Iterator[Token]:
    line = 1
    column = 1
    index = 0
    length = len(source)

    def make(ttype: TokenType, text: str) -> Token:
        return Token(ttype, text, line, column)

    while index < length:
        ch = source[index]
        # Whitespace
        if ch == "\n":
            index += 1
            line += 1
            column = 1
            continue
        if ch in " \t\r":
            index += 1
            column += 1
            continue
        # Comments
        if ch == "%":
            while index < length and source[index] != "\n":
                index += 1
            continue
        # Multi-character operators
        two = source[index : index + 2]
        if two == ":-" or two == "<-":
            yield make(TokenType.IF, two)
            index += 2
            column += 2
            continue
        if two == "<=":
            yield make(TokenType.LE, two)
            index += 2
            column += 2
            continue
        if two == ">=":
            yield make(TokenType.GE, two)
            index += 2
            column += 2
            continue
        if two == "!=":
            yield make(TokenType.NE, two)
            index += 2
            column += 2
            continue
        if ch == "<":
            yield make(TokenType.LT, ch)
            index += 1
            column += 1
            continue
        if ch == ">":
            yield make(TokenType.GT, ch)
            index += 1
            column += 1
            continue
        if ch == "-":
            yield make(TokenType.MINUS, ch)
            index += 1
            column += 1
            continue
        if ch in _SINGLE:
            yield make(_SINGLE[ch], ch)
            index += 1
            column += 1
            continue
        # Numbers
        if ch.isdigit():
            start = index
            while index < length and source[index].isdigit():
                index += 1
            text = source[start:index]
            yield make(TokenType.INTEGER, text)
            column += index - start
            continue
        # Identifiers and variables
        if ch.isalpha() or ch == "_":
            start = index
            while index < length and (source[index].isalnum() or source[index] == "_"):
                index += 1
            text = source[start:index]
            ttype = (
                TokenType.VARIABLE
                if text[0].isupper() or text[0] == "_"
                else TokenType.IDENT
            )
            yield make(ttype, text)
            column += index - start
            continue
        raise LexerError(f"unexpected character {ch!r}", line, column)
    yield Token(TokenType.EOF, "", line, column)
