"""Strict partial orders over component names.

The ``<`` relation among the components of an ordered program
(Definition 1) must be a strict partial order.  :class:`PartialOrder`
maintains its transitive closure incrementally, rejects cycles, and
answers the three queries the semantics needs:

* ``a < b`` — strictly below (``a`` is *more specific* than ``b``; in the
  paper a component inherits the rules of every component *above* it);
* ``a <= b`` — below or equal;
* ``a <> b`` — incomparable (used by the *defeated* status).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, TypeVar

from .errors import OrderError

__all__ = ["PartialOrder"]

T = TypeVar("T", bound=Hashable)


class PartialOrder:
    """A strict partial order over a finite set of elements.

    Pairs are added with :meth:`add_pair`; the closure is maintained so
    that :meth:`less` is O(1).  Elements may also be registered without
    any order pair (isolated components are legal and common — Figure 3's
    ``Expert2`` is incomparable to the other experts).
    """

    def __init__(
        self,
        elements: Iterable[T] = (),
        pairs: Iterable[tuple[T, T]] = (),
    ) -> None:
        self._elements: set[T] = set()
        #: transitive closure: _below[a] = set of elements strictly above a
        self._above: dict[T, set[T]] = {}
        self._below: dict[T, set[T]] = {}
        for element in elements:
            self.add_element(element)
        for low, high in pairs:
            self.add_pair(low, high)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_element(self, element: T) -> None:
        """Register an element (idempotent)."""
        if element not in self._elements:
            self._elements.add(element)
            self._above[element] = set()
            self._below[element] = set()

    def add_pair(self, low: T, high: T) -> None:
        """Record ``low < high``, extending the transitive closure.

        Raises:
            OrderError: if the pair is reflexive or would create a cycle.
        """
        if low == high:
            raise OrderError(f"order must be irreflexive: {low!r} < {low!r}")
        self.add_element(low)
        self.add_element(high)
        if low in self._above[high]:
            raise OrderError(
                f"adding {low!r} < {high!r} creates a cycle: {high!r} < {low!r} holds"
            )
        if high in self._above[low]:
            return  # already known
        # every x <= low is now below every y >= high
        lows = self._below[low] | {low}
        highs = self._above[high] | {high}
        for x in lows:
            for y in highs:
                if x == y:
                    raise OrderError(
                        f"adding {low!r} < {high!r} creates a cycle through {x!r}"
                    )
                self._above[x].add(y)
                self._below[y].add(x)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def elements(self) -> frozenset[T]:
        return frozenset(self._elements)

    def __contains__(self, element: object) -> bool:
        return element in self._elements

    def __len__(self) -> int:
        return len(self._elements)

    def __iter__(self) -> Iterator[T]:
        return iter(self._elements)

    def _require(self, element: T) -> None:
        if element not in self._elements:
            raise OrderError(f"unknown element {element!r}")

    def less(self, a: T, b: T) -> bool:
        """``a < b`` in the strict order (transitive closure)."""
        self._require(a)
        self._require(b)
        return b in self._above[a]

    def less_equal(self, a: T, b: T) -> bool:
        """``a <= b``: equal or strictly below."""
        return a == b or self.less(a, b)

    def incomparable(self, a: T, b: T) -> bool:
        """The paper's ``a <> b``: distinct and neither below the other."""
        self._require(a)
        self._require(b)
        return a != b and b not in self._above[a] and a not in self._above[b]

    def strictly_above(self, element: T) -> frozenset[T]:
        """All elements strictly above ``element``."""
        self._require(element)
        return frozenset(self._above[element])

    def upset(self, element: T) -> frozenset[T]:
        """``{x | element <= x}`` — the components whose rules ``element``
        sees (Definition 1(b): ``C*``)."""
        self._require(element)
        return frozenset(self._above[element]) | {element}

    def downset(self, element: T) -> frozenset[T]:
        """``{x | x <= element}``."""
        self._require(element)
        return frozenset(self._below[element]) | {element}

    def pairs(self) -> frozenset[tuple[T, T]]:
        """All ``(low, high)`` pairs of the transitive closure."""
        return frozenset(
            (low, high) for low in self._elements for high in self._above[low]
        )

    def covering_pairs(self) -> frozenset[tuple[T, T]]:
        """The transitive reduction: pairs ``(low, high)`` with nothing
        strictly between them.  Useful for printing Hasse diagrams."""
        result = set()
        for low in self._elements:
            for high in self._above[low]:
                if not any(
                    mid in self._above[low] and high in self._above[mid]
                    for mid in self._elements
                ):
                    result.add((low, high))
        return frozenset(result)

    def minimal_elements(self) -> frozenset[T]:
        """Elements with nothing below them (the most specific ones)."""
        return frozenset(e for e in self._elements if not self._below[e])

    def maximal_elements(self) -> frozenset[T]:
        """Elements with nothing above them (the most general ones)."""
        return frozenset(e for e in self._elements if not self._above[e])

    def topological(self) -> list[T]:
        """Elements sorted from most general to most specific, ties broken
        by string rendering for determinism."""
        remaining = set(self._elements)
        result: list[T] = []
        while remaining:
            roots = sorted(
                (e for e in remaining if not (self._above[e] & remaining)),
                key=str,
            )
            result.extend(roots)
            remaining -= set(roots)
        return result

    def copy(self) -> "PartialOrder":
        clone = PartialOrder()
        clone._elements = set(self._elements)
        clone._above = {k: set(v) for k, v in self._above.items()}
        clone._below = {k: set(v) for k, v in self._below.items()}
        return clone

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PartialOrder)
            and other._elements == self._elements
            and other._above == self._above
        )

    def __repr__(self) -> str:  # pragma: no cover - convenience
        pairs = ", ".join(f"{a!r}<{b!r}" for a, b in sorted(self.pairs(), key=str))
        return f"PartialOrder({sorted(self._elements, key=str)!r}, [{pairs}])"
