"""The ordered-logic language: terms, literals, rules, programs, parsing.

This package defines the abstract syntax of Section 2 of the paper plus a
concrete ``.olp`` surface syntax (lexer/parser/printer) and the strict
partial order used for the component hierarchy.
"""

from .builtins import ArithExpr, BinaryOp, Comparison
from .errors import (
    GroundingError,
    InconsistencyError,
    LexerError,
    OrderError,
    ParseError,
    QueryError,
    ReproError,
    SearchBudgetExceeded,
    SemanticsError,
    UnsafeRuleError,
)
from .literals import (
    Atom,
    Literal,
    complement_set,
    is_consistent,
    lit,
    neg,
    negative_part,
    pos,
    positive_part,
)
from .poset import PartialOrder
from .program import Component, OrderedProgram
from .rules import BodyItem, Rule, fact, rule
from .transformations import flatten, merge, relabel, restrict
from .terms import (
    Compound,
    Constant,
    Term,
    Variable,
    compound,
    const,
    term_depth,
    term_from_python,
    term_size,
    var,
    walk_terms,
)

__all__ = [
    # terms
    "Term",
    "Variable",
    "Constant",
    "Compound",
    "var",
    "const",
    "compound",
    "term_from_python",
    "term_depth",
    "term_size",
    "walk_terms",
    # literals
    "Atom",
    "Literal",
    "pos",
    "neg",
    "lit",
    "complement_set",
    "is_consistent",
    "positive_part",
    "negative_part",
    # rules
    "Rule",
    "BodyItem",
    "rule",
    "fact",
    # builtins
    "ArithExpr",
    "BinaryOp",
    "Comparison",
    # programs
    "Component",
    "OrderedProgram",
    "PartialOrder",
    "flatten",
    "restrict",
    "merge",
    "relabel",
    # errors
    "ReproError",
    "ParseError",
    "LexerError",
    "OrderError",
    "GroundingError",
    "UnsafeRuleError",
    "SemanticsError",
    "InconsistencyError",
    "SearchBudgetExceeded",
    "QueryError",
]
