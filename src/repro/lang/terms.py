"""Terms of the language (Section 2 of the paper).

A *term* is recursively defined as a variable, a constant, or
``f(t1, ..., tn)`` where ``t1 .. tn`` are terms and ``f`` is a function
symbol.  Terms are immutable, hashable values; structural equality is used
everywhere (two syntactically equal terms are interchangeable).

The three concrete classes are:

* :class:`Variable` — a logical variable (``X``, ``Rate``).
* :class:`Constant` — a symbolic constant (``penguin``) or an integer
  (``12``; Figure 3 of the paper compares integer-valued arguments).
* :class:`Compound` — a function application ``f(t1, ..., tn)``.

Helper constructors :func:`var`, :func:`const` and :func:`compound` keep
client code short, and :func:`term_from_python` converts plain Python
values (str/int) into terms using the parser's conventions.
"""

from __future__ import annotations

from typing import Iterator, Union

__all__ = [
    "Term",
    "Variable",
    "Constant",
    "Compound",
    "var",
    "const",
    "compound",
    "term_from_python",
    "term_depth",
    "term_size",
    "walk_terms",
]


class Term:
    """Abstract base class for terms.

    Subclasses are immutable and hashable.  The class exposes the small
    set of queries the rest of the system needs: groundness, the set of
    variables, and rendering.
    """

    __slots__ = ()

    @property
    def is_ground(self) -> bool:
        """True when the term contains no variables."""
        raise NotImplementedError

    def variables(self) -> frozenset["Variable"]:
        """The set of variables occurring in the term."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return f"{type(self).__name__}({self})"


class Variable(Term):
    """A logical variable, identified by name.

    Names conventionally start with an uppercase letter or ``_`` (the
    parser enforces this; the API does not).
    """

    __slots__ = ("name", "_hash")

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("variable name must be non-empty")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "_hash", hash(("var", name)))

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("Variable is immutable")

    @property
    def is_ground(self) -> bool:
        return False

    def variables(self) -> frozenset["Variable"]:
        return frozenset((self,))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Variable) and other.name == self.name

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        return self.name


class Constant(Term):
    """A constant: either a symbol (``str``) or an integer.

    Integers participate in the arithmetic comparisons of rule bodies
    (``X > Y + 2`` in Figure 3); symbols are inert.
    """

    __slots__ = ("value", "_hash")

    def __init__(self, value: Union[str, int]) -> None:
        if not isinstance(value, (str, int)) or isinstance(value, bool):
            raise TypeError(f"constant value must be str or int, got {value!r}")
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "_hash", hash(("const", value)))

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("Constant is immutable")

    @property
    def is_ground(self) -> bool:
        return True

    @property
    def is_integer(self) -> bool:
        """True when the constant is an integer (usable in arithmetic)."""
        return isinstance(self.value, int)

    def variables(self) -> frozenset[Variable]:
        return frozenset()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Constant) and other.value == self.value

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        return str(self.value)


class Compound(Term):
    """A function application ``f(t1, ..., tn)`` with ``n >= 1``.

    Zero-arity applications are represented as :class:`Constant`, matching
    the paper's grammar where the Herbrand universe is built from
    constants and function symbols.
    """

    __slots__ = ("functor", "args", "_hash", "_ground")

    def __init__(self, functor: str, args: tuple[Term, ...]) -> None:
        if not functor:
            raise ValueError("functor must be non-empty")
        args = tuple(args)
        if not args:
            raise ValueError("compound term needs at least one argument; use Constant")
        for arg in args:
            if not isinstance(arg, Term):
                raise TypeError(f"compound argument must be a Term, got {arg!r}")
        object.__setattr__(self, "functor", functor)
        object.__setattr__(self, "args", args)
        object.__setattr__(self, "_hash", hash(("compound", functor, args)))
        object.__setattr__(self, "_ground", all(a.is_ground for a in args))

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("Compound is immutable")

    @property
    def arity(self) -> int:
        return len(self.args)

    @property
    def is_ground(self) -> bool:
        return self._ground

    def variables(self) -> frozenset[Variable]:
        result: frozenset[Variable] = frozenset()
        for arg in self.args:
            result |= arg.variables()
        return result

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Compound)
            and other._hash == self._hash
            and other.functor == self.functor
            and other.args == self.args
        )

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.functor}({inner})"


def var(name: str) -> Variable:
    """Shorthand constructor for :class:`Variable`."""
    return Variable(name)


def const(value: Union[str, int]) -> Constant:
    """Shorthand constructor for :class:`Constant`."""
    return Constant(value)


def compound(functor: str, *args: Term) -> Compound:
    """Shorthand constructor for :class:`Compound`."""
    return Compound(functor, tuple(args))


def term_from_python(value: Union[Term, str, int]) -> Term:
    """Convert a plain Python value into a term.

    Strings beginning with an uppercase letter or ``_`` become variables
    (the parser's convention); all other strings and all integers become
    constants.  Terms pass through unchanged.
    """
    if isinstance(value, Term):
        return value
    if isinstance(value, bool):
        raise TypeError("booleans are not valid term values")
    if isinstance(value, int):
        return Constant(value)
    if isinstance(value, str):
        if value and (value[0].isupper() or value[0] == "_"):
            return Variable(value)
        return Constant(value)
    raise TypeError(f"cannot convert {value!r} to a term")


def term_depth(term: Term) -> int:
    """Nesting depth of a term: constants and variables have depth 0,
    ``f(t1..tn)`` has depth ``1 + max(depth(ti))``."""
    if isinstance(term, Compound):
        return 1 + max(term_depth(a) for a in term.args)
    return 0


def term_size(term: Term) -> int:
    """Number of symbol occurrences in a term."""
    if isinstance(term, Compound):
        return 1 + sum(term_size(a) for a in term.args)
    return 1


def walk_terms(term: Term) -> Iterator[Term]:
    """Yield the term and all of its subterms, outermost first."""
    yield term
    if isinstance(term, Compound):
        for arg in term.args:
            yield from walk_terms(arg)
