"""Built-in comparison guards over arithmetic expressions.

Figure 3 of the paper uses bodies like ``inflation(X), X > 11`` and
``inflation(X), loan_rate(Y), X > Y + 2``.  These guards are not literals
— they never appear in interpretations — but conditions evaluated during
grounding: a ground rule instance is kept only when all of its guards
evaluate to true, and the guards are then dropped from the ground body.

The expression language is integers, variables bound to integer
constants, and the operators ``+ - * //`` (integer division, written
``/`` in the surface syntax).  Comparison operators are
``< <= > >= = !=``.
"""

from __future__ import annotations

from typing import Callable, Iterator, Mapping, Union

from .errors import GroundingError
from .terms import Constant, Term, Variable

__all__ = [
    "ArithExpr",
    "BinaryOp",
    "Comparison",
    "COMPARISON_OPS",
    "ARITHMETIC_OPS",
    "evaluate_expr",
    "expr_leaf_terms",
]

#: Comparison operator name -> implementation over ints.
COMPARISON_OPS: Mapping[str, Callable[[int, int], bool]] = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}

#: Arithmetic operator name -> implementation over ints.
ARITHMETIC_OPS: Mapping[str, Callable[[int, int], int]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a // b,
}

#: An arithmetic expression is a term (integer constant or variable) or a
#: binary operation over two expressions.
ArithExpr = Union[Term, "BinaryOp"]


class BinaryOp:
    """A binary arithmetic operation ``left op right``."""

    __slots__ = ("op", "left", "right", "_hash")

    def __init__(self, op: str, left: ArithExpr, right: ArithExpr) -> None:
        if op not in ARITHMETIC_OPS:
            raise ValueError(f"unknown arithmetic operator {op!r}")
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)
        object.__setattr__(self, "_hash", hash(("binop", op, left, right)))

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("BinaryOp is immutable")

    def variables(self) -> frozenset[Variable]:
        return _expr_variables(self.left) | _expr_variables(self.right)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, BinaryOp)
            and other.op == self.op
            and other.left == self.left
            and other.right == self.right
        )

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        return f"{_render_operand(self.left)} {self.op} {_render_operand(self.right)}"

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return f"BinaryOp({self})"


def _render_operand(expr: ArithExpr) -> str:
    if isinstance(expr, BinaryOp):
        return f"({expr})"
    return str(expr)


def _expr_variables(expr: ArithExpr) -> frozenset[Variable]:
    if isinstance(expr, BinaryOp):
        return expr.variables()
    if isinstance(expr, Term):
        return expr.variables()
    raise TypeError(f"not an arithmetic expression: {expr!r}")


def evaluate_expr(expr: ArithExpr, bindings: Mapping[Variable, Term]) -> int:
    """Evaluate an expression to an integer under variable bindings.

    Raises:
        GroundingError: if a variable is unbound, or an operand is not an
            integer constant (symbolic constants cannot be compared
            arithmetically).
    """
    if isinstance(expr, BinaryOp):
        left = evaluate_expr(expr.left, bindings)
        right = evaluate_expr(expr.right, bindings)
        if expr.op == "/" and right == 0:
            raise GroundingError(f"division by zero in guard expression {expr}")
        return ARITHMETIC_OPS[expr.op](left, right)
    if isinstance(expr, Variable):
        bound = bindings.get(expr)
        if bound is None:
            raise GroundingError(f"unbound variable {expr} in guard expression")
        return evaluate_expr(bound, bindings)
    if isinstance(expr, Constant):
        if not isinstance(expr.value, int):
            raise GroundingError(
                f"non-integer constant {expr} used in arithmetic comparison"
            )
        return expr.value
    raise GroundingError(f"cannot evaluate {expr!r} arithmetically")


def _equality_value(
    expr: ArithExpr, bindings: Mapping[Variable, Term]
) -> Union[int, Term]:
    """The comparison key for ``=``/``!=``: an int when the side is
    arithmetic, otherwise the ground substituted term."""
    if isinstance(expr, BinaryOp):
        return evaluate_expr(expr, bindings)
    if isinstance(expr, Variable):
        bound = bindings.get(expr)
        if bound is None:
            raise GroundingError(f"unbound variable {expr} in equality guard")
        return _equality_value(bound, bindings)
    if isinstance(expr, Constant):
        if isinstance(expr.value, int):
            return expr.value
        return expr
    if isinstance(expr, Term):
        if not expr.is_ground:
            raise GroundingError(f"non-ground term {expr} in equality guard")
        return expr
    raise GroundingError(f"cannot compare {expr!r}")


def expr_leaf_terms(expr: ArithExpr) -> Iterator[Term]:
    """All term leaves of an expression (constants and variables) —
    guard constants occur in the program, so they belong to the Herbrand
    universe."""
    if isinstance(expr, BinaryOp):
        yield from expr_leaf_terms(expr.left)
        yield from expr_leaf_terms(expr.right)
    elif isinstance(expr, Term):
        yield expr
    else:
        raise TypeError(f"not an arithmetic expression: {expr!r}")


class Comparison:
    """A comparison guard ``left op right`` in a rule body.

    Guards are immutable.  They are evaluated by the grounder once all of
    their variables are bound; they never survive into ground rules.
    """

    __slots__ = ("op", "left", "right", "_hash")

    def __init__(self, op: str, left: ArithExpr, right: ArithExpr) -> None:
        if op not in COMPARISON_OPS:
            raise ValueError(f"unknown comparison operator {op!r}")
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)
        object.__setattr__(self, "_hash", hash(("cmp", op, left, right)))

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("Comparison is immutable")

    def variables(self) -> frozenset[Variable]:
        return _expr_variables(self.left) | _expr_variables(self.right)

    @property
    def is_ground(self) -> bool:
        return not self.variables()

    def holds(self, bindings: Mapping[Variable, Term]) -> bool:
        """Evaluate the guard under the given (total) bindings.

        ``<``/``<=``/``>``/``>=`` require both sides to evaluate to
        integers.  ``=``/``!=`` additionally accept arbitrary ground
        terms, compared syntactically (Example 9 of the paper compares
        colour constants with ``X != Y``); an integer never equals a
        symbolic term.
        """
        if self.op in ("=", "!="):
            left = _equality_value(self.left, bindings)
            right = _equality_value(self.right, bindings)
            equal = left == right
            return equal if self.op == "=" else not equal
        left_value = evaluate_expr(self.left, bindings)
        right_value = evaluate_expr(self.right, bindings)
        return COMPARISON_OPS[self.op](left_value, right_value)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Comparison)
            and other.op == self.op
            and other.left == self.left
            and other.right == self.right
        )

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return f"Comparison({self})"
