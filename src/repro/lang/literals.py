"""Predicates (atoms) and literals (Section 2 of the paper).

A *predicate* is ``p(t1, ..., tn)`` for a predicate symbol ``p`` of arity
``n >= 0``.  A *literal* is a predicate (*positive literal*) or its
negation (*negative literal*).  Negation here is the paper's classical
negation ``¬`` (written ``-`` in the surface syntax), **not**
negation-as-failure: a negative literal is true only when it is a member
of the interpretation.

Two literals are *complementary* when they are ``A`` and ``¬A`` for the
same predicate; :meth:`Literal.complement` (also available as the unary
``~`` operator) produces the complement.  Module-level helpers
:func:`pos`, :func:`neg` and :func:`complement_set` mirror the paper's
``A`` / ``¬A`` / ``¬X`` notation.
"""

from __future__ import annotations

from typing import Iterable, Union

from .terms import Term, Variable, term_from_python

__all__ = [
    "Atom",
    "Literal",
    "pos",
    "neg",
    "lit",
    "complement_set",
    "is_consistent",
    "positive_part",
    "negative_part",
]


class Atom:
    """A predicate ``p(t1, ..., tn)``.

    ``args`` may be empty: propositional atoms like ``take_loan`` are
    0-ary predicates.  Atoms are immutable and hashable.
    """

    __slots__ = ("predicate", "args", "_hash", "_ground")

    def __init__(self, predicate: str, args: tuple[Term, ...] = ()) -> None:
        if not predicate:
            raise ValueError("predicate symbol must be non-empty")
        args = tuple(args)
        for arg in args:
            if not isinstance(arg, Term):
                raise TypeError(f"atom argument must be a Term, got {arg!r}")
        object.__setattr__(self, "predicate", predicate)
        object.__setattr__(self, "args", args)
        object.__setattr__(self, "_hash", hash(("atom", predicate, args)))
        object.__setattr__(self, "_ground", all(a.is_ground for a in args))

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("Atom is immutable")

    @property
    def arity(self) -> int:
        return len(self.args)

    @property
    def signature(self) -> tuple[str, int]:
        """The ``(symbol, arity)`` pair identifying the predicate."""
        return (self.predicate, len(self.args))

    @property
    def is_ground(self) -> bool:
        return self._ground

    def variables(self) -> frozenset[Variable]:
        result: frozenset[Variable] = frozenset()
        for arg in self.args:
            result |= arg.variables()
        return result

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Atom)
            and other._hash == self._hash
            and other.predicate == self.predicate
            and other.args == self.args
        )

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        if not self.args:
            return self.predicate
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.predicate}({inner})"

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return f"Atom({self})"


class Literal:
    """A positive or negative literal over an :class:`Atom`.

    The complement of a literal is obtained with ``~literal`` or
    :meth:`complement`.  Literals order lexicographically by their string
    rendering, which gives deterministic, human-stable output everywhere
    models are printed.
    """

    __slots__ = ("atom", "positive", "_hash")

    def __init__(self, atom: Atom, positive: bool = True) -> None:
        if not isinstance(atom, Atom):
            raise TypeError(f"Literal requires an Atom, got {atom!r}")
        object.__setattr__(self, "atom", atom)
        object.__setattr__(self, "positive", bool(positive))
        object.__setattr__(self, "_hash", hash(("lit", atom, positive)))

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("Literal is immutable")

    @property
    def negative(self) -> bool:
        return not self.positive

    @property
    def predicate(self) -> str:
        return self.atom.predicate

    @property
    def args(self) -> tuple[Term, ...]:
        return self.atom.args

    @property
    def signature(self) -> tuple[str, int]:
        return self.atom.signature

    @property
    def is_ground(self) -> bool:
        return self.atom.is_ground

    def variables(self) -> frozenset[Variable]:
        return self.atom.variables()

    def complement(self) -> "Literal":
        """The complementary literal ``¬A`` (or ``A`` for ``¬A``)."""
        return Literal(self.atom, not self.positive)

    def __invert__(self) -> "Literal":
        return self.complement()

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Literal)
            and other._hash == self._hash
            and other.positive == self.positive
            and other.atom == self.atom
        )

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other: "Literal") -> bool:
        if not isinstance(other, Literal):
            return NotImplemented
        return str(self) < str(other)

    def __str__(self) -> str:
        sign = "" if self.positive else "-"
        return f"{sign}{self.atom}"

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return f"Literal({self})"


def pos(predicate: str, *args: Union[Term, str, int]) -> Literal:
    """Build a positive literal; plain str/int arguments are converted via
    :func:`repro.lang.terms.term_from_python`."""
    return Literal(Atom(predicate, tuple(term_from_python(a) for a in args)), True)


def neg(predicate: str, *args: Union[Term, str, int]) -> Literal:
    """Build a negative literal ``¬p(args)``."""
    return Literal(Atom(predicate, tuple(term_from_python(a) for a in args)), False)


def lit(predicate: str, *args: Union[Term, str, int], positive: bool = True) -> Literal:
    """Build a literal with an explicit sign."""
    atom = Atom(predicate, tuple(term_from_python(a) for a in args))
    return Literal(atom, positive)


def complement_set(literals: Iterable[Literal]) -> frozenset[Literal]:
    """The paper's ``¬X``: the set of complements of every literal in X."""
    return frozenset(l.complement() for l in literals)


def is_consistent(literals: Iterable[Literal]) -> bool:
    """True when the set contains no complementary pair ``A`` / ``¬A``."""
    seen = set(literals)
    return all(l.complement() not in seen for l in seen)


def positive_part(literals: Iterable[Literal]) -> frozenset[Literal]:
    """The paper's ``X+``: the positive literals of X."""
    return frozenset(l for l in literals if l.positive)


def negative_part(literals: Iterable[Literal]) -> frozenset[Literal]:
    """The paper's ``X-``: the negative literals of X."""
    return frozenset(l for l in literals if not l.positive)
