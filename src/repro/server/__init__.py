"""Concurrent query server: snapshot-isolated reads over a
single-writer delta pipeline.

Section 5 of the paper pitches ordered logic as the kernel of an
interactive knowledge base *system*; this subsystem is that system's
serving layer.  A :class:`~repro.server.engine.ServerEngine` owns one
:class:`~repro.kb.knowledge_base.KnowledgeBase` and splits traffic:

* **reads** (``query`` / ``ask``) execute lock-free against immutable
  published :class:`~repro.server.engine.Snapshot` objects, each
  carrying a monotonically increasing version and materialized least
  models — a reader never waits on the write pipeline;
* **writes** (``tell`` / ``retract`` / ``define``) funnel through a
  bounded single-writer queue that coalesces queued mutations into
  batches, applies them through the incremental maintenance engine
  (``OrderedSemantics.apply_ops`` via the knowledge base's delta
  queue), and atomically publishes the next snapshot version.

:class:`~repro.server.service.QueryServer` exposes the engine over TCP
with a newline-delimited-JSON protocol (:mod:`repro.server.protocol`),
admission control (bounded queue, per-request deadlines, overload
shedding) and graceful drain on shutdown.  ``olp serve`` is the CLI
entry point; see ``docs/server.md``.

Durability and horizontal scale layer on top (``docs/replication.md``):
:mod:`repro.server.wal` journals every published version (crash
recovery = checkpoint + replay), and :mod:`repro.server.replica` adds
follower processes that tail the journal over the protocol's
``subscribe`` stream plus a fleet tier that fans reads across them.
"""

from .engine import ServerConfig, ServerEngine, Snapshot, Subscriber
from .protocol import (
    ADMIN_OPS,
    ERROR_CODES,
    OPS,
    READ_OPS,
    STREAM_OPS,
    WRITE_OPS,
    ProtocolError,
    Request,
    encode,
    error_response,
    ok_response,
    parse_request,
)
from .replica import (
    Backend,
    FleetServer,
    FollowerEngine,
    ReplicationError,
    parse_backend,
    run_fleet,
    run_follower,
)
from .service import MetricsSidecar, QueryServer, run_server
from .wal import Wal, WalCorruption, WalRecord, WalWriter

__all__ = [
    "ServerConfig",
    "ServerEngine",
    "Snapshot",
    "Subscriber",
    "MetricsSidecar",
    "QueryServer",
    "run_server",
    "Wal",
    "WalCorruption",
    "WalRecord",
    "WalWriter",
    "Backend",
    "FleetServer",
    "FollowerEngine",
    "ReplicationError",
    "parse_backend",
    "run_fleet",
    "run_follower",
    "Request",
    "ProtocolError",
    "parse_request",
    "encode",
    "ok_response",
    "error_response",
    "OPS",
    "READ_OPS",
    "WRITE_OPS",
    "ADMIN_OPS",
    "STREAM_OPS",
    "ERROR_CODES",
]
