"""Concurrent query server: snapshot-isolated reads over a
single-writer delta pipeline.

Section 5 of the paper pitches ordered logic as the kernel of an
interactive knowledge base *system*; this subsystem is that system's
serving layer.  A :class:`~repro.server.engine.ServerEngine` owns one
:class:`~repro.kb.knowledge_base.KnowledgeBase` and splits traffic:

* **reads** (``query`` / ``ask``) execute lock-free against immutable
  published :class:`~repro.server.engine.Snapshot` objects, each
  carrying a monotonically increasing version and materialized least
  models — a reader never waits on the write pipeline;
* **writes** (``tell`` / ``retract`` / ``define``) funnel through a
  bounded single-writer queue that coalesces queued mutations into
  batches, applies them through the incremental maintenance engine
  (``OrderedSemantics.apply_ops`` via the knowledge base's delta
  queue), and atomically publishes the next snapshot version.

:class:`~repro.server.service.QueryServer` exposes the engine over TCP
with a newline-delimited-JSON protocol (:mod:`repro.server.protocol`),
admission control (bounded queue, per-request deadlines, overload
shedding) and graceful drain on shutdown.  ``olp serve`` is the CLI
entry point; see ``docs/server.md``.
"""

from .engine import ServerConfig, ServerEngine, Snapshot
from .protocol import (
    ADMIN_OPS,
    ERROR_CODES,
    OPS,
    READ_OPS,
    WRITE_OPS,
    ProtocolError,
    Request,
    encode,
    error_response,
    ok_response,
    parse_request,
)
from .service import MetricsSidecar, QueryServer, run_server

__all__ = [
    "ServerConfig",
    "ServerEngine",
    "Snapshot",
    "MetricsSidecar",
    "QueryServer",
    "run_server",
    "Request",
    "ProtocolError",
    "parse_request",
    "encode",
    "ok_response",
    "error_response",
    "OPS",
    "READ_OPS",
    "WRITE_OPS",
    "ADMIN_OPS",
    "ERROR_CODES",
]
