"""The serving core: snapshot publication and the single-writer pipeline.

Concurrency model (``docs/server.md``):

* The engine owns the canonical :class:`~repro.kb.knowledge_base.KnowledgeBase`.
  Only the writer task mutates it, and every mutation block runs
  synchronously between two awaits, so readers never observe a
  half-applied batch.
* After each batch the writer *publishes* a new :class:`Snapshot`:
  an immutable program plus materialized least models
  (:class:`~repro.core.interpretation.Interpretation` instances, which
  are immutable) for the views the batch touched and structural sharing
  of every untouched view's model from the previous snapshot.  Readers
  capture ``engine.snapshot`` once and answer from it without ever
  waiting on the writer — a reader that is pre-empted by a publish
  keeps answering at its captured version (snapshot isolation).
* Writes are admitted into a bounded :class:`asyncio.Queue`; a full
  queue sheds the request with an ``overloaded`` error instead of
  building unbounded backlog.  The writer coalesces everything queued
  (up to ``max_batch`` requests) into one batch, applies it through the
  knowledge base's delta queue — so all of a batch's fact mutations
  reach ``OrderedSemantics.apply_ops`` as one coalesced op list per
  affected view — and bumps the published version once per batch.

The differential property suite
(``tests/properties/test_server_differential.py``) replays randomized
concurrent client traces and asserts the published snapshots and query
answers are bit-identical to a serialized oracle replaying the same
batches on a plain knowledge base.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Optional

from ..core.interpretation import Interpretation, TruthValue
from ..core.maintenance import MaintenanceConfig
from ..core.semantics import OrderedSemantics
from ..core.solver import SearchBudget
from ..explain.trace import Explainer
from ..grounding.grounder import GroundingOptions
from ..kb.knowledge_base import KnowledgeBase
from ..kb.query import answers_in, evaluate_query
from ..lang.errors import ReproError
from ..lang.program import OrderedProgram
from ..obs import get_instrumentation
from ..obs import exposition
from ..obs.exposition import PrometheusWriter, write_registry
from ..obs.instruments import Histogram
from ..obs.trace import TraceContext
from ..serialize import kb_to_dict
from . import protocol
from .protocol import Request
from .wal import Wal, WalCorruption

__all__ = ["ServerConfig", "Snapshot", "ServerEngine", "Subscriber"]

#: Second-scale buckets for serving latency (50us .. 10s).
LATENCY_BUCKETS = (
    50e-6, 100e-6, 250e-6, 500e-6,
    1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Millisecond-scale buckets for write-queue wait.
QUEUE_WAIT_BUCKETS = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
    25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 5000.0,
)


@dataclass(frozen=True)
class ServerConfig:
    """Admission-control and pipeline knobs.

    Attributes:
        max_queue: bound of the write queue; a full queue sheds new
            writes with ``overloaded`` (admission control).
        max_batch: most write requests coalesced into one published
            version.  1 degenerates to the one-op-per-apply path (the
            benchmark baseline).
        default_deadline_ms: deadline applied to requests that do not
            carry their own ``deadline_ms``; None means unbounded.
        refresh_hot_views: eagerly re-materialize, at publish time, the
            views that were materialized in the previous snapshot and
            affected by the batch — keeps hot-view reads O(lookup).
        keep_history: record every published snapshot and the batch
            that produced it (``engine.history``) — the differential
            harness's oracle input.  Unbounded memory; tests only.
        slow_ms: requests at or above this many milliseconds are
            recorded (request, span tree, engine cost digest) in the
            slow-query ring buffer served by the ``slow`` op.  None
            disables the log — and with it the implicit per-request
            tracing it needs.
        slow_log_size: ring-buffer capacity of the slow-query log.
        subscriber_queue: bound of each live ``subscribe`` stream's
            entry buffer.  A subscriber that falls this many published
            versions behind is cut with a ``lagging`` sentinel and must
            reconnect (catch-up then comes from the journal, not RAM).
    """

    max_queue: int = 256
    max_batch: int = 64
    default_deadline_ms: Optional[float] = None
    refresh_hot_views: bool = True
    keep_history: bool = False
    slow_ms: Optional[float] = None
    slow_log_size: int = 128
    subscriber_queue: int = 256


class Snapshot:
    """One published, immutable version of the knowledge base.

    Readers answer cautious queries from :attr:`models` (materialized
    least models).  A view missing from the map is materialized on
    first read — from the writer's incrementally-maintained view when
    this snapshot is still current, from :attr:`program` otherwise —
    and pinned, so every later read at this version is a lookup.
    """

    __slots__ = (
        "version",
        "program",
        "published_at",
        "_grounding",
        "_budget",
        "models",
        "_sems",
        "_explainers",
    )

    def __init__(
        self,
        version: int,
        program: OrderedProgram,
        grounding: GroundingOptions,
        budget: SearchBudget,
        models: Optional[dict[str, Interpretation]] = None,
        sems: Optional[dict[str, OrderedSemantics]] = None,
        explainers: Optional[dict[str, Explainer]] = None,
    ) -> None:
        self.version = version
        self.program = program
        self.published_at = time.monotonic()
        self._grounding = grounding
        self._budget = budget
        self.models: dict[str, Interpretation] = models if models is not None else {}
        self._sems: dict[str, OrderedSemantics] = sems if sems is not None else {}
        self._explainers: dict[str, Explainer] = (
            explainers if explainers is not None else {}
        )

    def age(self, now: Optional[float] = None) -> float:
        return (now if now is not None else time.monotonic()) - self.published_at

    def semantics(self, view: str) -> OrderedSemantics:
        """Snapshot-local semantics of one view, built from the
        immutable program (never the writer's mutable state)."""
        sem = self._sems.get(view)
        if sem is None:
            sem = OrderedSemantics(
                self.program,
                view,
                grounding=self._grounding,
                budget=self._budget,
                maintenance=MaintenanceConfig(enabled=False),
            )
            self._sems[view] = sem
        return sem

    def materialize(self, view: str) -> Interpretation:
        """The least model of one view at this version (computed from
        the snapshot program on first call, then pinned)."""
        interp = self.models.get(view)
        if interp is None:
            interp = self.semantics(view).least_model
            self.models[view] = interp
        return interp

    def explainer(self, view: str, sem: OrderedSemantics) -> Explainer:
        """The derivation explainer for one view at this version,
        built once (it replays the fixpoint) and pinned."""
        exp = self._explainers.get(view)
        if exp is None:
            exp = Explainer(sem)
            self._explainers[view] = exp
        return exp


def _latency_dict(hist: Histogram) -> dict:
    """The always-on latency aggregate reported by ``stats``."""
    return {
        "count": hist.count,
        "mean_s": hist.mean,
        "max_s": hist.max or 0.0,
        "p50_s": hist.quantile(0.5),
        "p95_s": hist.quantile(0.95),
        "p99_s": hist.quantile(0.99),
        "buckets": [[le, n] for le, n in hist.bucket_pairs()],
    }


class _WriteItem:
    __slots__ = ("request", "future", "trace")

    def __init__(
        self,
        request: Request,
        future: "asyncio.Future[dict]",
        trace: Optional[TraceContext] = None,
    ) -> None:
        self.request = request
        self.future = future
        self.trace = trace


_SENTINEL = object()

#: Pushed into a subscriber's queue when the engine drains: the stream
#: ends cleanly instead of the connection being cancelled mid-read.
STREAM_END = None


class Subscriber:
    """One live ``subscribe`` stream's buffer between the publishing
    writer and the connection task draining it.

    The writer pushes one entry per published version (possibly with an
    empty op list when the subscriber's view filter drops everything —
    versions stay contiguous either way).  A full queue marks the
    subscriber :attr:`lagging`: the already-buffered prefix is still
    contiguous and is delivered, then the stream is cut and the
    subscriber re-subscribes from its applied version (served from the
    journal, which has no buffer bound).
    """

    __slots__ = ("queue", "views", "lagging", "delivered")

    def __init__(self, maxsize: int, views: Optional[frozenset[str]] = None) -> None:
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=maxsize)
        self.views = views
        self.lagging = False
        self.delivered = 0

    def wants(self, op: dict) -> bool:
        if self.views is None:
            return True
        return bool(self.views.intersection(op.get("seers", ())))


class ServerEngine:
    """Serves protocol requests over one knowledge base.

    Use as an async context manager, or call :meth:`start` /
    :meth:`aclose` explicitly.  :meth:`handle` is the single entry
    point for every request (the TCP service, benchmarks and tests all
    drive it directly).
    """

    def __init__(
        self,
        kb: Optional[KnowledgeBase] = None,
        config: Optional[ServerConfig] = None,
        wal: Optional[Wal] = None,
        initial_version: int = 0,
    ) -> None:
        self.kb = kb if kb is not None else KnowledgeBase()
        self.config = config if config is not None else ServerConfig()
        self.wal = wal
        self.started_at = time.monotonic()
        self.shutdown_requested = asyncio.Event()
        self.history: list[tuple[Snapshot, list[Request]]] = []
        self._version = initial_version
        self._snapshot = Snapshot(
            initial_version, self.kb.program(), self.kb.grounding, self.kb.budget
        )
        self._subscribers: list[Subscriber] = []
        self._subscribers_total = 0
        self._subscribers_lagged = 0
        self._wal_broken = False
        # Whether this engine's version 0 was already a non-empty KB (a
        # file/--restore seed rather than the empty KB): a subscriber
        # catching up from version 0 can then never be served entries —
        # no journal suffix reconstructs the seeded base state.
        self._v0_nonempty = initial_version == 0 and bool(self.kb.objects)
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=self.config.max_queue)
        self._writer_task: Optional[asyncio.Task] = None
        self._draining = False
        self._closed = False
        # Always-on serving stats (the `stats` op must work with the
        # obs registry in its default disabled state).
        self._requests: dict[str, int] = {}
        self._errors: dict[str, int] = {}
        self._batches = 0
        self._ops_applied = 0
        self._max_batch_seen = 0
        self._read_latency = Histogram("server.latency.read", LATENCY_BUCKETS)
        self._write_latency = Histogram("server.latency.write", LATENCY_BUCKETS)
        self._queue_wait = Histogram("server.queue.wait_ms", QUEUE_WAIT_BUCKETS)
        self._view_refresh: dict[str, Histogram] = {}
        self._slow: deque[dict] = deque(maxlen=self.config.slow_log_size)
        self._slow_total = 0
        self._slow_max_ms = 0.0
        if self.config.keep_history:
            self.history.append((self._snapshot, []))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "ServerEngine":
        if self._writer_task is None:
            self._writer_task = asyncio.ensure_future(self._writer_loop())
            get_instrumentation().event("server.start")
        return self

    async def aclose(self) -> None:
        """Graceful shutdown: stop admitting writes, drain the queue,
        publish what was in flight, stop the writer."""
        if self._closed:
            return
        self._draining = True
        self.close_subscribers()
        if self._writer_task is not None:
            await self._queue.put(_SENTINEL)
            await self._writer_task
            self._writer_task = None
        if self.wal is not None:
            self.wal.close()
        self._closed = True
        get_instrumentation().event("server.stop", version=self._version)

    async def __aenter__(self) -> "ServerEngine":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    @property
    def snapshot(self) -> Snapshot:
        """The latest published snapshot (atomically swapped)."""
        return self._snapshot

    @property
    def version(self) -> int:
        return self._version

    @property
    def draining(self) -> bool:
        return self._draining

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    async def handle(self, request: Request) -> dict:
        """Execute one validated request; returns the response payload."""
        self._requests[request.op] = self._requests.get(request.op, 0) + 1
        obs = get_instrumentation()
        if obs.enabled:
            obs.count("server.requests")
            obs.count(f"server.requests.{request.op}")
        if request.op == "health":
            return self._health(request)
        if request.op == "stats":
            return protocol.ok_response(request.id, self._version, self.stats())
        if request.op == "metrics":
            return protocol.ok_response(
                request.id,
                self._version,
                {
                    "exposition": self.exposition(),
                    "content_type": exposition.CONTENT_TYPE,
                },
            )
        if request.op == "slow":
            return protocol.ok_response(request.id, self._version, self.slow_log())
        if request.op == "shutdown":
            self.shutdown_requested.set()
            return protocol.ok_response(
                request.id, self._version, {"draining": True}
            )
        if self._closed:
            return self._error(
                request, protocol.SHUTTING_DOWN, "server is shut down"
            )
        if request.op in protocol.STREAM_OPS:
            # The TCP service intercepts ``subscribe`` and owns the
            # stream; reaching the engine means the caller cannot hold
            # a streaming connection (tests, benchmarks, embedding).
            return self._error(
                request,
                protocol.BAD_REQUEST,
                "op 'subscribe' requires a streaming connection",
            )
        if request.op in protocol.WRITE_OPS:
            return await self._write(request)
        return self._read(request)

    def _error(
        self,
        request: Request,
        code: str,
        message: str,
        version: Optional[int] = None,
        **extra: Any,
    ) -> dict:
        self._errors[code] = self._errors.get(code, 0) + 1
        obs = get_instrumentation()
        if obs.enabled:
            obs.count(f"server.errors.{code}")
        return protocol.error_response(request.id, code, message, version, **extra)

    # ------------------------------------------------------------------
    # Read path (lock-free: never touches the write queue)
    # ------------------------------------------------------------------
    def _read(self, request: Request) -> dict:
        snap = self._snapshot
        now = time.monotonic()
        if request.expired(now):
            return self._error(
                request, protocol.TIMEOUT, "deadline expired before execution"
            )
        view, pattern = request.view, request.pattern
        assert view is not None and pattern is not None  # parse_request guarantees
        ctx: Optional[TraceContext] = None
        if request.trace is not None or self.config.slow_ms is not None:
            trace = request.trace or {}
            ctx = TraceContext(
                trace_id=trace.get("id"),
                baggage=trace.get("baggage"),
                name=f"server.{request.op}",
                op=request.op,
                view=view,
                pattern=pattern,
            )
        t0 = time.perf_counter()
        try:
            if ctx is not None:
                with ctx.activate():
                    result = self._evaluate_read(snap, request, view, pattern)
            else:
                result = self._evaluate_read(snap, request, view, pattern)
        except ReproError as error:
            return self._error(
                request, protocol.SEMANTICS, str(error), snap.version
            )
        elapsed = time.perf_counter() - t0
        self._read_latency.observe(elapsed)
        obs = get_instrumentation()
        if obs.enabled:
            obs.observe("server.latency.read", elapsed)
            obs.observe("server.snapshot_age", snap.age(now))
            obs.gauge("server.snapshot.age_ms", snap.age(now) * 1000.0)
        if ctx is not None:
            ctx.annotate(version=snap.version)
            ctx.close()
            if (
                self.config.slow_ms is not None
                and elapsed * 1000.0 >= self.config.slow_ms
            ):
                self._record_slow(request, ctx, elapsed, snap.version)
            if request.trace is not None:
                result["trace"] = ctx.summary()
        return protocol.ok_response(request.id, snap.version, result)

    def _evaluate_read(
        self, snap: Snapshot, request: Request, view: str, pattern: str
    ) -> dict[str, Any]:
        """Evaluate one query/ask/explain against a captured snapshot."""
        with get_instrumentation().span(
            "server.read", op=request.op, view=view, mode=request.mode
        ):
            if request.op == "explain":
                return self._explain(snap, view, pattern)
            answers = None
            if request.strategy == "demand":
                answers = self._demand_read(snap, view, pattern, request.mode)
            if answers is not None:
                pass
            elif request.mode == "cautious":
                interp = self._model_at(snap, view)
                answers = answers_in(interp, pattern)
            else:
                sem = self._semantics_at(snap, view)
                answers = evaluate_query(sem, pattern, request.mode)
        if request.op == "ask":
            return {"holds": bool(answers)}
        return {
            "answers": [
                {
                    "literal": str(a.literal),
                    "bindings": {str(v): str(t) for v, t in a.bindings.items()},
                }
                for a in answers
            ],
            "count": len(answers),
            "mode": request.mode,
        }

    def _demand_read(
        self, snap: Snapshot, view: str, pattern: str, mode: str
    ) -> Optional[list]:
        """Goal-directed answers against a captured snapshot, or None
        when the demand path declined (the caller then falls back to
        the materialized read path).

        The snapshot program is rules-only; attached EDB stores are
        read-only for the server's lifetime, so consulting the writer
        KB's stores is safe at any snapshot version.  This read never
        warms :attr:`Snapshot.models` — not materializing is the point.
        """
        from ..query import demand_answers

        result = demand_answers(
            snap.program,
            view,
            pattern,
            mode,
            sources=self.kb.edb_sources(view),
        )
        return result.answers if result.used else None

    def _explain(self, snap: Snapshot, view: str, pattern: str) -> dict[str, Any]:
        """The ``explain`` op: derivation (or failure analysis) of one
        ground literal against the captured snapshot."""
        sem = self._semantics_at(snap, view)
        self._model_at(snap, view)  # force the least model first
        explainer = snap.explainer(view, sem)
        value = sem.value(pattern)
        return {
            "literal": pattern,
            "value": value.name.lower(),
            "derived": value is TruthValue.TRUE,
            "explanation": explainer.explain(pattern),
        }

    def _model_at(self, snap: Snapshot, view: str) -> Interpretation:
        interp = snap.models.get(view)
        if interp is not None:
            return interp
        if snap is self._snapshot:
            # Latest snapshot: warm the view through the writer KB so
            # it joins the incremental maintenance set, then pin the
            # (immutable) model into the snapshot.
            interp = self.kb.view(view).least_model
            snap.models[view] = interp
            return interp
        return snap.materialize(view)

    def _semantics_at(self, snap: Snapshot, view: str) -> OrderedSemantics:
        if snap is self._snapshot:
            return self.kb.view(view)
        return snap.semantics(view)

    def _health(self, request: Request) -> dict:
        return protocol.ok_response(
            request.id,
            self._version,
            {
                "status": "draining" if self._draining else "ok",
                "uptime_s": time.monotonic() - self.started_at,
                "snapshot_age_s": self._snapshot.age(),
                "queue_depth": self._queue.qsize(),
            },
        )

    def stats(self) -> dict:
        """The ``stats`` result: serving counters plus pipeline state."""
        payload = {
            "version": self._version,
            "uptime_s": time.monotonic() - self.started_at,
            "snapshot_age_s": self._snapshot.age(),
            "queue_depth": self._queue.qsize(),
            "draining": self._draining,
            "objects": len(self.kb.objects),
            "views_materialized": len(self._snapshot.models),
            "requests": dict(sorted(self._requests.items())),
            "errors": dict(sorted(self._errors.items())),
            "writes": {
                "batches": self._batches,
                "ops": self._ops_applied,
                "max_batch": self._max_batch_seen,
                "mean_batch": (
                    self._ops_applied / self._batches if self._batches else 0.0
                ),
            },
            "latency": {
                "read": _latency_dict(self._read_latency),
                "write": _latency_dict(self._write_latency),
            },
            "queue_wait_ms": self._queue_wait.as_dict(),
            "slow": {
                "threshold_ms": self.config.slow_ms,
                "total": self._slow_total,
                "logged": len(self._slow),
                "max_ms": self._slow_max_ms,
            },
            "views": {
                view: {
                    "refreshes": hist.count,
                    "mean_s": hist.mean,
                    "max_s": hist.max or 0.0,
                    "p95_s": hist.quantile(0.95),
                }
                for view, hist in sorted(self._view_refresh.items())
            },
            "replication": {
                "subscribers": len(self._subscribers),
                "subscribes_total": self._subscribers_total,
                "lagged_total": self._subscribers_lagged,
            },
        }
        if self.wal is not None:
            payload["wal"] = self.wal.stats()
        return payload

    def exposition(self) -> str:
        """Prometheus text-format exposition: the always-on serving
        instruments plus (when the registry is enabled) every registry
        instrument via :func:`~repro.obs.exposition.write_registry`."""
        writer = PrometheusWriter()
        writer.gauge(
            "repro_server_version", self._version, help="Published snapshot version."
        )
        writer.gauge(
            "repro_server_uptime_seconds",
            time.monotonic() - self.started_at,
            help="Seconds since the engine started.",
        )
        writer.gauge(
            "repro_server_queue_depth",
            self._queue.qsize(),
            help="Write requests waiting in the bounded queue.",
        )
        writer.gauge(
            "repro_server_snapshot_age_seconds",
            self._snapshot.age(),
            help="Age of the latest published snapshot.",
        )
        writer.gauge(
            "repro_server_draining",
            int(self._draining),
            help="1 while the server is draining.",
        )
        for op, n in sorted(self._requests.items()):
            writer.counter(
                "repro_server_requests_total",
                n,
                labels={"op": op},
                help="Requests handled, by op.",
            )
        for code, n in sorted(self._errors.items()):
            writer.counter(
                "repro_server_errors_total",
                n,
                labels={"code": code},
                help="Error replies, by code.",
            )
        writer.counter(
            "repro_server_batches_total",
            self._batches,
            help="Published write batches.",
        )
        writer.counter(
            "repro_server_ops_applied_total",
            self._ops_applied,
            help="Write requests applied.",
        )
        writer.counter(
            "repro_server_slow_queries_total",
            self._slow_total,
            help="Requests at or above the --slow-ms threshold.",
        )
        writer.histogram(
            "repro_server_read_latency_seconds",
            self._read_latency,
            help="Read latency (query/ask/explain).",
        )
        writer.histogram(
            "repro_server_write_latency_seconds",
            self._write_latency,
            help="Write latency (admission to publish).",
        )
        writer.histogram(
            "repro_server_queue_wait_ms",
            self._queue_wait,
            help="Write-queue wait in milliseconds.",
        )
        for view, hist in sorted(self._view_refresh.items()):
            writer.histogram(
                "repro_server_view_refresh_seconds",
                hist,
                labels={"view": view},
                help="Hot-view re-materialization cost at publish.",
            )
        writer.gauge(
            "repro_server_subscribers",
            len(self._subscribers),
            help="Live subscribe streams (replication followers).",
        )
        writer.counter(
            "repro_server_subscribers_lagged_total",
            self._subscribers_lagged,
            help="Subscribe streams cut for falling behind the buffer.",
        )
        if self.wal is not None:
            wal = self.wal.stats()
            writer.counter(
                "repro_wal_appends_total",
                wal["appends"],
                help="Journal records appended.",
            )
            writer.counter(
                "repro_wal_bytes_total",
                wal["bytes"],
                help="Journal bytes appended.",
            )
            writer.counter(
                "repro_wal_fsyncs_total",
                wal["fsyncs"],
                help="Journal fsyncs issued.",
            )
            writer.counter(
                "repro_wal_rotations_total",
                wal["rotations"],
                help="Journal segment rotations.",
            )
            writer.counter(
                "repro_wal_checkpoints_total",
                wal["checkpoints"],
                help="Checkpoints written.",
            )
            writer.gauge(
                "repro_wal_checkpoint_version",
                wal["checkpoint_version"],
                help="Version of the newest checkpoint.",
            )
        self._expose_extra(writer)
        write_registry(writer, get_instrumentation())
        return writer.render()

    def _expose_extra(self, writer: PrometheusWriter) -> None:
        """Subclass hook: extra always-on instruments in ``/metrics``
        (the follower engine adds its replication lag here)."""

    # ------------------------------------------------------------------
    # Slow-query log
    # ------------------------------------------------------------------
    def slow_log(self) -> dict:
        """The ``slow`` result: the ring buffer, newest last."""
        return {
            "threshold_ms": self.config.slow_ms,
            "total": self._slow_total,
            "entries": list(self._slow),
        }

    def _record_slow(
        self,
        request: Request,
        ctx: TraceContext,
        elapsed: float,
        version: int,
    ) -> None:
        elapsed_ms = round(elapsed * 1000.0, 3)
        self._slow_total += 1
        if elapsed_ms > self._slow_max_ms:
            self._slow_max_ms = elapsed_ms
        self._slow.append(
            {
                "at": time.time(),
                "id": request.id,
                "op": request.op,
                "view": request.view,
                "pattern": request.pattern,
                "rules": (request.rules or "")[:200] or None,
                "mode": request.mode,
                "elapsed_ms": elapsed_ms,
                "version": version,
                "trace_id": ctx.trace_id,
                "spans": ctx.root.to_dict(),
                "cost": dict(ctx.costs),
            }
        )
        obs = get_instrumentation()
        if obs.enabled:
            obs.count("server.slow_queries")
            obs.event(
                "server.slow_query",
                op=request.op,
                view=request.view,
                elapsed_ms=elapsed_ms,
                trace_id=ctx.trace_id,
            )

    # ------------------------------------------------------------------
    # Write path (single-writer pipeline)
    # ------------------------------------------------------------------
    async def _write(self, request: Request) -> dict:
        if self._draining:
            return self._error(
                request, protocol.SHUTTING_DOWN, "server is draining"
            )
        if self._wal_broken:
            return self._error(
                request,
                protocol.INTERNAL,
                "write-ahead log failed; refusing writes the journal "
                "cannot make durable",
            )
        ctx: Optional[TraceContext] = None
        if request.trace is not None or self.config.slow_ms is not None:
            trace = request.trace or {}
            ctx = TraceContext(
                trace_id=trace.get("id"),
                baggage=trace.get("baggage"),
                name=f"server.{request.op}",
                op=request.op,
                view=request.view or "",
            )
        future: asyncio.Future[dict] = asyncio.get_running_loop().create_future()
        try:
            self._queue.put_nowait(_WriteItem(request, future, ctx))
        except asyncio.QueueFull:
            return self._error(
                request,
                protocol.OVERLOADED,
                f"write queue full ({self.config.max_queue} pending)",
                queue_depth=self._queue.qsize(),
            )
        return await future

    async def _writer_loop(self) -> None:
        while True:
            item = await self._queue.get()
            if item is _SENTINEL:
                break
            c0 = time.perf_counter()
            batch = [item]
            stop = False
            while len(batch) < self.config.max_batch:
                try:
                    nxt = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if nxt is _SENTINEL:
                    stop = True
                    break
                batch.append(nxt)
            coalesce_s = time.perf_counter() - c0
            try:
                self._apply_batch(batch, coalesce_s)
            except Exception as error:  # defensive: never strand futures
                for item in batch:
                    if not item.future.done():
                        item.future.set_result(
                            self._error(
                                item.request,
                                protocol.INTERNAL,
                                f"writer failure: {error!r}",
                            )
                        )
            if stop:
                break

    def _apply_batch(self, batch: list[_WriteItem], coalesce_s: float = 0.0) -> None:
        """Apply one coalesced batch and publish the next version.

        Runs synchronously (no awaits): readers and other writers never
        observe a half-applied batch.  Each request in the batch is
        applied independently — a rejected mutation turns into an error
        reply without poisoning the rest of the batch.
        """
        t0 = time.perf_counter()
        now = time.monotonic()
        obs = get_instrumentation()
        applied: list[_WriteItem] = []
        errors: list[tuple[_WriteItem, dict]] = []
        for item in batch:
            request = item.request
            # Queue wait: admission (arrived_at) to the writer picking
            # the item up.  Observed per item, before shedding, so shed
            # requests still show up in the wait distribution.
            wait_s = max(0.0, now - request.arrived_at)
            self._queue_wait.observe(wait_s * 1000.0)
            if obs.enabled:
                obs.observe("server.queue.wait_ms", wait_s * 1000.0)
            if item.trace is not None:
                item.trace.record("queue.wait", wait_s, batch_size=len(batch))
                item.trace.record(
                    "coalesce", coalesce_s, batch_size=len(batch)
                )
            if request.expired(now):
                errors.append(
                    (
                        item,
                        self._error(
                            request,
                            protocol.TIMEOUT,
                            "deadline expired in the write queue",
                        ),
                    )
                )
                continue
            try:
                if item.trace is not None:
                    # Re-activate the request's context on the writer
                    # task: engine spans under apply join its span tree.
                    with item.trace.activate():
                        with get_instrumentation().span(
                            "apply", op=request.op, view=request.view or ""
                        ):
                            self._apply_one(request)
                else:
                    self._apply_one(request)
            except ReproError as error:
                errors.append(
                    (
                        item,
                        self._error(
                            request, protocol.SEMANTICS, str(error), self._version
                        ),
                    )
                )
            else:
                applied.append(item)
        pub_elapsed = 0.0
        pub_ctx: Optional[TraceContext] = None
        if applied:
            if any(item.trace is not None for item in applied):
                # Publish (hot-view refresh through the maintenance
                # engine) is batch-level work; collect its spans and
                # cost digest once and attribute them to every traced
                # item of the batch.
                pub_ctx = TraceContext(name="publish")
            pub_t0 = time.perf_counter()
            if pub_ctx is not None:
                with pub_ctx.activate():
                    self._publish([item.request for item in applied])
            else:
                self._publish([item.request for item in applied])
            pub_elapsed = time.perf_counter() - pub_t0
        elapsed = time.perf_counter() - t0
        self._write_latency.observe(elapsed)
        version = self._version
        if obs.enabled:
            obs.observe("server.latency.write", elapsed)
        for item in applied:
            result: dict[str, Any] = {"applied": item.request.op}
            if item.trace is not None:
                ctx = item.trace
                node = ctx.record(
                    "publish", pub_elapsed, version=version, batch=len(applied)
                )
                if pub_ctx is not None:
                    node.children.extend(pub_ctx.root.children)
                    ctx.add_cost(**pub_ctx.costs)
                ctx.annotate(batch_version=version, batch_size=len(applied))
                ctx.close()
                if (
                    self.config.slow_ms is not None
                    and ctx.root.duration is not None
                    and ctx.root.duration * 1000.0 >= self.config.slow_ms
                ):
                    self._record_slow(
                        item.request, ctx, ctx.root.duration, version
                    )
                if item.request.trace is not None:
                    result["trace"] = ctx.summary()
            if not item.future.done():
                item.future.set_result(
                    protocol.ok_response(item.request.id, version, result)
                )
        for item, payload in errors:
            if not item.future.done():
                item.future.set_result(payload)

    def _apply_one(self, request: Request) -> None:
        view = request.view
        assert view is not None  # parse_request guarantees per-op fields
        if request.op == "tell":
            assert request.rules is not None
            self.kb.tell(view, request.rules)
        elif request.op == "retract":
            assert request.rules is not None
            self.kb.retract(view, request.rules)
        else:
            # ``rules`` is optional for define: an empty object is legal.
            self.kb.define(view, request.rules or (), isa=request.isa)

    def _op_dict(self, request: Request) -> dict:
        """The journal/stream form of one applied write: the protocol
        fields plus the ``seers`` downset at publish time (the views
        this op can change — the replication filter's sole input)."""
        view = request.view
        assert view is not None
        return {
            "op": request.op,
            "view": view,
            "rules": request.rules or "",
            "isa": list(request.isa),
            "seers": sorted(self.kb.seers(view)),
        }

    def _publish(self, applied: list[Request]) -> None:
        """Atomically publish the next snapshot version."""
        ops = [self._op_dict(request) for request in applied]
        snapshot = self._publish_ops(ops, self._version + 1)
        if self.config.keep_history:
            self.history.append((snapshot, list(applied)))

    def _publish_ops(self, ops: list[dict], version: int) -> Snapshot:
        """Publish one version from already-applied journal-shaped ops.

        The leader reaches this through :meth:`_publish` (version =
        next); a follower through ``apply_entry`` (version = the
        leader's).  Ordering is the durability contract: the WAL append
        happens *before* the snapshot swap, so a version a client can
        ever observe — let alone get an ack for — is already on disk.

        Untouched views share the previous snapshot's materialized
        models (structural sharing); touched hot views are repaired
        through the delta engine (``kb.view`` flushes the batch's
        coalesced ops into one ``apply_ops`` call per view) and
        re-materialized.
        """
        prev = self._snapshot
        affected: set[str] = set()
        for op in ops:
            if op["op"] == "define":
                affected.add(op["view"])
            else:
                affected.update(op["seers"])
        if self.wal is not None:
            try:
                self.wal.append(version, ops)
            except OSError:
                # The KB has advanced past the durable log; admitting
                # more writes would ack state a restart cannot rebuild.
                self._wal_broken = True
                raise
        models = {
            view: m for view, m in prev.models.items() if view not in affected
        }
        sems = {
            view: s for view, s in prev._sems.items() if view not in affected
        }
        explainers = {
            view: e for view, e in prev._explainers.items() if view not in affected
        }
        obs = get_instrumentation()
        if self.config.refresh_hot_views:
            for view in prev.models:
                if view in affected and view in self.kb.objects:
                    r0 = time.perf_counter()
                    try:
                        models[view] = self.kb.view(view).least_model
                    except ReproError:
                        # The view is now erroneous (e.g. inconsistent);
                        # readers get the error lazily instead of the
                        # publish failing the whole batch.
                        models.pop(view, None)
                    refresh = time.perf_counter() - r0
                    hist = self._view_refresh.get(view)
                    if hist is None:
                        hist = Histogram(
                            f"server.view.refresh.{view}", LATENCY_BUCKETS
                        )
                        self._view_refresh[view] = hist
                    hist.observe(refresh)
                    if obs.enabled:
                        obs.observe("server.view.refresh", refresh)
        self._version = version
        snapshot = Snapshot(
            version,
            self.kb.program(),
            self.kb.grounding,
            self.kb.budget,
            models,
            sems,
            explainers,
        )
        self._snapshot = snapshot
        self._batches += 1
        self._ops_applied += len(ops)
        if len(ops) > self._max_batch_seen:
            self._max_batch_seen = len(ops)
        self._notify_subscribers(version, ops)
        if obs.enabled:
            obs.count("server.publishes")
            obs.observe("server.batch_size", len(ops))
            obs.gauge("server.version", version)
            obs.observe("server.snapshot_age", prev.age())
            obs.gauge("server.snapshot.age_ms", prev.age() * 1000.0)
            obs.event(
                "server.publish",
                version=version,
                batch=len(ops),
                affected_views=len(affected),
            )
        if self.wal is not None:
            self.wal.maybe_checkpoint(self.kb, version)
        return snapshot

    # ------------------------------------------------------------------
    # Replication: live subscribers and journal catch-up
    # ------------------------------------------------------------------
    def add_subscriber(
        self, views: Optional[tuple[str, ...]] = None
    ) -> Subscriber:
        """Register one live stream.  Must be called synchronously with
        :meth:`catch_up` (no await between them): publishes run
        synchronously on the same loop, so registration + catch-up is
        atomic with respect to version production and the stream misses
        nothing."""
        sub = Subscriber(
            self.config.subscriber_queue,
            frozenset(views) if views is not None else None,
        )
        self._subscribers.append(sub)
        self._subscribers_total += 1
        obs = get_instrumentation()
        if obs.enabled:
            obs.count("replica.subscribes")
            obs.gauge("replica.subscribers", len(self._subscribers))
        return sub

    def remove_subscriber(self, sub: Subscriber) -> None:
        try:
            self._subscribers.remove(sub)
        except ValueError:
            pass
        obs = get_instrumentation()
        if obs.enabled:
            obs.gauge("replica.subscribers", len(self._subscribers))

    def close_subscribers(self) -> None:
        """End every live stream cleanly (server drain)."""
        for sub in list(self._subscribers):
            try:
                sub.queue.put_nowait(STREAM_END)
            except asyncio.QueueFull:
                # The buffered prefix still ends the stream: the drain
                # loop sees ``lagging`` once the buffer is empty.
                sub.lagging = True

    def _notify_subscribers(self, version: int, ops: list[dict]) -> None:
        """Push one entry per published version into every live stream.

        A view-filtered subscriber still receives the version (with the
        surviving ops only, possibly none): version contiguity is what
        lets a follower equate "applied v" with "consistent with the
        leader's v" for its subscribed subset.
        """
        for sub in self._subscribers:
            if sub.lagging:
                continue
            filtered = [op for op in ops if sub.wants(op)]
            entry = {"version": version, "ops": filtered}
            try:
                sub.queue.put_nowait(entry)
            except asyncio.QueueFull:
                sub.lagging = True
                self._subscribers_lagged += 1
                obs = get_instrumentation()
                if obs.enabled:
                    obs.count("replica.subscriber_lagged")

    def catch_up(
        self,
        from_version: int,
        views: Optional[tuple[str, ...]] = None,
    ) -> tuple[str, Any, int]:
        """What a new subscriber at ``from_version`` must replay first.

        Returns ``("entries", [entry, ...], current_version)`` when the
        journal (or nothing) covers the gap, or ``("snapshot", kb_dict,
        current_version)`` when it cannot — no journal, a truncated
        range, or an unreadable journal — and the subscriber must load
        the full KB before tailing.

        Synchronous by design: called between :meth:`add_subscriber`
        and the first queue read, it sees a frozen version frontier.
        """
        current = self._version
        if from_version == 0 and (
            self._v0_nonempty
            or (self.wal is not None and self.wal.seeded_at_zero)
        ):
            # Version 0 here was a seeded KB, not the empty one a fresh
            # follower holds — only a snapshot can align it.
            return "snapshot", kb_to_dict(self.kb), current
        if from_version >= current:
            return "entries", [], current
        if self.wal is not None and from_version >= self.wal.oldest_available:
            try:
                records = self.wal.read_after(from_version)
            except WalCorruption:
                return "snapshot", kb_to_dict(self.kb), current
            if views is None:
                keep = None
            else:
                # Historical records carry publish-time ``seers`` that
                # cannot know views defined later, so catch-up filters
                # against the *current* poset: a view's scope (C*) is
                # fixed at its define time, making "op.view in the
                # subscription's scope" time-independent.  The raw
                # seers check additionally admits the define of a
                # subscribed view itself.
                scope: set[str] = set(views)
                for v in views:
                    if v in self.kb.objects:
                        scope |= self.kb.scope(v)
                wanted = frozenset(views)

                def keep(op: dict) -> bool:
                    return op["view"] in scope or bool(
                        wanted.intersection(op.get("seers", ()))
                    )

            entries = [
                {
                    "version": record.version,
                    "ops": [op for op in record.ops if keep is None or keep(op)],
                }
                for record in records
            ]
            return "entries", entries, current
        return "snapshot", kb_to_dict(self.kb), current
