"""The serving core: snapshot publication and the single-writer pipeline.

Concurrency model (``docs/server.md``):

* The engine owns the canonical :class:`~repro.kb.knowledge_base.KnowledgeBase`.
  Only the writer task mutates it, and every mutation block runs
  synchronously between two awaits, so readers never observe a
  half-applied batch.
* After each batch the writer *publishes* a new :class:`Snapshot`:
  an immutable program plus materialized least models
  (:class:`~repro.core.interpretation.Interpretation` instances, which
  are immutable) for the views the batch touched and structural sharing
  of every untouched view's model from the previous snapshot.  Readers
  capture ``engine.snapshot`` once and answer from it without ever
  waiting on the writer — a reader that is pre-empted by a publish
  keeps answering at its captured version (snapshot isolation).
* Writes are admitted into a bounded :class:`asyncio.Queue`; a full
  queue sheds the request with an ``overloaded`` error instead of
  building unbounded backlog.  The writer coalesces everything queued
  (up to ``max_batch`` requests) into one batch, applies it through the
  knowledge base's delta queue — so all of a batch's fact mutations
  reach ``OrderedSemantics.apply_ops`` as one coalesced op list per
  affected view — and bumps the published version once per batch.

The differential property suite
(``tests/properties/test_server_differential.py``) replays randomized
concurrent client traces and asserts the published snapshots and query
answers are bit-identical to a serialized oracle replaying the same
batches on a plain knowledge base.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Any, Optional

from ..core.interpretation import Interpretation
from ..core.maintenance import MaintenanceConfig
from ..core.semantics import OrderedSemantics
from ..core.solver import SearchBudget
from ..grounding.grounder import GroundingOptions
from ..kb.knowledge_base import KnowledgeBase
from ..kb.query import answers_in, evaluate_query
from ..lang.errors import ReproError
from ..lang.program import OrderedProgram
from ..obs import get_instrumentation
from . import protocol
from .protocol import Request

__all__ = ["ServerConfig", "Snapshot", "ServerEngine"]


@dataclass(frozen=True)
class ServerConfig:
    """Admission-control and pipeline knobs.

    Attributes:
        max_queue: bound of the write queue; a full queue sheds new
            writes with ``overloaded`` (admission control).
        max_batch: most write requests coalesced into one published
            version.  1 degenerates to the one-op-per-apply path (the
            benchmark baseline).
        default_deadline_ms: deadline applied to requests that do not
            carry their own ``deadline_ms``; None means unbounded.
        refresh_hot_views: eagerly re-materialize, at publish time, the
            views that were materialized in the previous snapshot and
            affected by the batch — keeps hot-view reads O(lookup).
        keep_history: record every published snapshot and the batch
            that produced it (``engine.history``) — the differential
            harness's oracle input.  Unbounded memory; tests only.
    """

    max_queue: int = 256
    max_batch: int = 64
    default_deadline_ms: Optional[float] = None
    refresh_hot_views: bool = True
    keep_history: bool = False


class Snapshot:
    """One published, immutable version of the knowledge base.

    Readers answer cautious queries from :attr:`models` (materialized
    least models).  A view missing from the map is materialized on
    first read — from the writer's incrementally-maintained view when
    this snapshot is still current, from :attr:`program` otherwise —
    and pinned, so every later read at this version is a lookup.
    """

    __slots__ = (
        "version",
        "program",
        "published_at",
        "_grounding",
        "_budget",
        "models",
        "_sems",
    )

    def __init__(
        self,
        version: int,
        program: OrderedProgram,
        grounding: GroundingOptions,
        budget: SearchBudget,
        models: Optional[dict[str, Interpretation]] = None,
        sems: Optional[dict[str, OrderedSemantics]] = None,
    ) -> None:
        self.version = version
        self.program = program
        self.published_at = time.monotonic()
        self._grounding = grounding
        self._budget = budget
        self.models: dict[str, Interpretation] = models if models is not None else {}
        self._sems: dict[str, OrderedSemantics] = sems if sems is not None else {}

    def age(self, now: Optional[float] = None) -> float:
        return (now if now is not None else time.monotonic()) - self.published_at

    def semantics(self, view: str) -> OrderedSemantics:
        """Snapshot-local semantics of one view, built from the
        immutable program (never the writer's mutable state)."""
        sem = self._sems.get(view)
        if sem is None:
            sem = OrderedSemantics(
                self.program,
                view,
                grounding=self._grounding,
                budget=self._budget,
                maintenance=MaintenanceConfig(enabled=False),
            )
            self._sems[view] = sem
        return sem

    def materialize(self, view: str) -> Interpretation:
        """The least model of one view at this version (computed from
        the snapshot program on first call, then pinned)."""
        interp = self.models.get(view)
        if interp is None:
            interp = self.semantics(view).least_model
            self.models[view] = interp
        return interp


class _Latency:
    """Always-on, allocation-free latency aggregate for ``stats``."""

    __slots__ = ("count", "total", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds > self.max:
            self.max = seconds

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "mean_s": self.total / self.count if self.count else 0.0,
            "max_s": self.max,
        }


class _WriteItem:
    __slots__ = ("request", "future")

    def __init__(self, request: Request, future: "asyncio.Future[dict]") -> None:
        self.request = request
        self.future = future


_SENTINEL = object()


class ServerEngine:
    """Serves protocol requests over one knowledge base.

    Use as an async context manager, or call :meth:`start` /
    :meth:`aclose` explicitly.  :meth:`handle` is the single entry
    point for every request (the TCP service, benchmarks and tests all
    drive it directly).
    """

    def __init__(
        self, kb: Optional[KnowledgeBase] = None, config: Optional[ServerConfig] = None
    ) -> None:
        self.kb = kb if kb is not None else KnowledgeBase()
        self.config = config if config is not None else ServerConfig()
        self.started_at = time.monotonic()
        self.shutdown_requested = asyncio.Event()
        self.history: list[tuple[Snapshot, list[Request]]] = []
        self._version = 0
        self._snapshot = Snapshot(
            0, self.kb.program(), self.kb.grounding, self.kb.budget
        )
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=self.config.max_queue)
        self._writer_task: Optional[asyncio.Task] = None
        self._draining = False
        self._closed = False
        # Always-on serving stats (the `stats` op must work with the
        # obs registry in its default disabled state).
        self._requests: dict[str, int] = {}
        self._errors: dict[str, int] = {}
        self._batches = 0
        self._ops_applied = 0
        self._max_batch_seen = 0
        self._read_latency = _Latency()
        self._write_latency = _Latency()
        if self.config.keep_history:
            self.history.append((self._snapshot, []))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "ServerEngine":
        if self._writer_task is None:
            self._writer_task = asyncio.ensure_future(self._writer_loop())
            get_instrumentation().event("server.start")
        return self

    async def aclose(self) -> None:
        """Graceful shutdown: stop admitting writes, drain the queue,
        publish what was in flight, stop the writer."""
        if self._closed:
            return
        self._draining = True
        if self._writer_task is not None:
            await self._queue.put(_SENTINEL)
            await self._writer_task
            self._writer_task = None
        self._closed = True
        get_instrumentation().event("server.stop", version=self._version)

    async def __aenter__(self) -> "ServerEngine":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    @property
    def snapshot(self) -> Snapshot:
        """The latest published snapshot (atomically swapped)."""
        return self._snapshot

    @property
    def version(self) -> int:
        return self._version

    @property
    def draining(self) -> bool:
        return self._draining

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    async def handle(self, request: Request) -> dict:
        """Execute one validated request; returns the response payload."""
        self._requests[request.op] = self._requests.get(request.op, 0) + 1
        obs = get_instrumentation()
        if obs.enabled:
            obs.count("server.requests")
            obs.count(f"server.requests.{request.op}")
        if request.op == "health":
            return self._health(request)
        if request.op == "stats":
            return protocol.ok_response(request.id, self._version, self.stats())
        if request.op == "shutdown":
            self.shutdown_requested.set()
            return protocol.ok_response(
                request.id, self._version, {"draining": True}
            )
        if self._closed:
            return self._error(
                request, protocol.SHUTTING_DOWN, "server is shut down"
            )
        if request.op in protocol.WRITE_OPS:
            return await self._write(request)
        return self._read(request)

    def _error(
        self,
        request: Request,
        code: str,
        message: str,
        version: Optional[int] = None,
        **extra: Any,
    ) -> dict:
        self._errors[code] = self._errors.get(code, 0) + 1
        obs = get_instrumentation()
        if obs.enabled:
            obs.count(f"server.errors.{code}")
        return protocol.error_response(request.id, code, message, version, **extra)

    # ------------------------------------------------------------------
    # Read path (lock-free: never touches the write queue)
    # ------------------------------------------------------------------
    def _read(self, request: Request) -> dict:
        snap = self._snapshot
        now = time.monotonic()
        if request.expired(now):
            return self._error(
                request, protocol.TIMEOUT, "deadline expired before execution"
            )
        view, pattern = request.view, request.pattern
        assert view is not None and pattern is not None  # parse_request guarantees
        t0 = time.perf_counter()
        try:
            if request.mode == "cautious":
                interp = self._model_at(snap, view)
                answers = answers_in(interp, pattern)
            else:
                sem = self._semantics_at(snap, view)
                answers = evaluate_query(sem, pattern, request.mode)
        except ReproError as error:
            return self._error(
                request, protocol.SEMANTICS, str(error), snap.version
            )
        elapsed = time.perf_counter() - t0
        self._read_latency.observe(elapsed)
        obs = get_instrumentation()
        if obs.enabled:
            obs.observe("server.latency.read", elapsed)
            obs.observe("server.snapshot_age", snap.age(now))
        if request.op == "ask":
            result: dict[str, Any] = {"holds": bool(answers)}
        else:
            result = {
                "answers": [
                    {
                        "literal": str(a.literal),
                        "bindings": {
                            str(v): str(t) for v, t in a.bindings.items()
                        },
                    }
                    for a in answers
                ],
                "count": len(answers),
                "mode": request.mode,
            }
        return protocol.ok_response(request.id, snap.version, result)

    def _model_at(self, snap: Snapshot, view: str) -> Interpretation:
        interp = snap.models.get(view)
        if interp is not None:
            return interp
        if snap is self._snapshot:
            # Latest snapshot: warm the view through the writer KB so
            # it joins the incremental maintenance set, then pin the
            # (immutable) model into the snapshot.
            interp = self.kb.view(view).least_model
            snap.models[view] = interp
            return interp
        return snap.materialize(view)

    def _semantics_at(self, snap: Snapshot, view: str) -> OrderedSemantics:
        if snap is self._snapshot:
            return self.kb.view(view)
        return snap.semantics(view)

    def _health(self, request: Request) -> dict:
        return protocol.ok_response(
            request.id,
            self._version,
            {
                "status": "draining" if self._draining else "ok",
                "uptime_s": time.monotonic() - self.started_at,
                "snapshot_age_s": self._snapshot.age(),
                "queue_depth": self._queue.qsize(),
            },
        )

    def stats(self) -> dict:
        """The ``stats`` result: serving counters plus pipeline state."""
        return {
            "version": self._version,
            "uptime_s": time.monotonic() - self.started_at,
            "snapshot_age_s": self._snapshot.age(),
            "queue_depth": self._queue.qsize(),
            "draining": self._draining,
            "objects": len(self.kb.objects),
            "views_materialized": len(self._snapshot.models),
            "requests": dict(sorted(self._requests.items())),
            "errors": dict(sorted(self._errors.items())),
            "writes": {
                "batches": self._batches,
                "ops": self._ops_applied,
                "max_batch": self._max_batch_seen,
                "mean_batch": (
                    self._ops_applied / self._batches if self._batches else 0.0
                ),
            },
            "latency": {
                "read": self._read_latency.as_dict(),
                "write": self._write_latency.as_dict(),
            },
        }

    # ------------------------------------------------------------------
    # Write path (single-writer pipeline)
    # ------------------------------------------------------------------
    async def _write(self, request: Request) -> dict:
        if self._draining:
            return self._error(
                request, protocol.SHUTTING_DOWN, "server is draining"
            )
        future: asyncio.Future[dict] = asyncio.get_running_loop().create_future()
        try:
            self._queue.put_nowait(_WriteItem(request, future))
        except asyncio.QueueFull:
            return self._error(
                request,
                protocol.OVERLOADED,
                f"write queue full ({self.config.max_queue} pending)",
                queue_depth=self._queue.qsize(),
            )
        return await future

    async def _writer_loop(self) -> None:
        while True:
            item = await self._queue.get()
            if item is _SENTINEL:
                break
            batch = [item]
            stop = False
            while len(batch) < self.config.max_batch:
                try:
                    nxt = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if nxt is _SENTINEL:
                    stop = True
                    break
                batch.append(nxt)
            try:
                self._apply_batch(batch)
            except Exception as error:  # defensive: never strand futures
                for item in batch:
                    if not item.future.done():
                        item.future.set_result(
                            self._error(
                                item.request,
                                protocol.INTERNAL,
                                f"writer failure: {error!r}",
                            )
                        )
            if stop:
                break

    def _apply_batch(self, batch: list[_WriteItem]) -> None:
        """Apply one coalesced batch and publish the next version.

        Runs synchronously (no awaits): readers and other writers never
        observe a half-applied batch.  Each request in the batch is
        applied independently — a rejected mutation turns into an error
        reply without poisoning the rest of the batch.
        """
        t0 = time.perf_counter()
        now = time.monotonic()
        applied: list[_WriteItem] = []
        errors: list[tuple[_WriteItem, dict]] = []
        for item in batch:
            request = item.request
            if request.expired(now):
                errors.append(
                    (
                        item,
                        self._error(
                            request,
                            protocol.TIMEOUT,
                            "deadline expired in the write queue",
                        ),
                    )
                )
                continue
            try:
                self._apply_one(request)
            except ReproError as error:
                errors.append(
                    (
                        item,
                        self._error(
                            request, protocol.SEMANTICS, str(error), self._version
                        ),
                    )
                )
            else:
                applied.append(item)
        if applied:
            self._publish([item.request for item in applied])
        elapsed = time.perf_counter() - t0
        self._write_latency.observe(elapsed)
        version = self._version
        obs = get_instrumentation()
        if obs.enabled:
            obs.observe("server.latency.write", elapsed)
        for item in applied:
            if not item.future.done():
                item.future.set_result(
                    protocol.ok_response(
                        item.request.id, version, {"applied": item.request.op}
                    )
                )
        for item, payload in errors:
            if not item.future.done():
                item.future.set_result(payload)

    def _apply_one(self, request: Request) -> None:
        view = request.view
        assert view is not None  # parse_request guarantees per-op fields
        if request.op == "tell":
            assert request.rules is not None
            self.kb.tell(view, request.rules)
        elif request.op == "retract":
            assert request.rules is not None
            self.kb.retract(view, request.rules)
        else:
            # ``rules`` is optional for define: an empty object is legal.
            self.kb.define(view, request.rules or (), isa=request.isa)

    def _publish(self, applied: list[Request]) -> None:
        """Atomically publish the next snapshot version.

        Untouched views share the previous snapshot's materialized
        models (structural sharing); touched hot views are repaired
        through the delta engine (``kb.view`` flushes the batch's
        coalesced ops into one ``apply_ops`` call per view) and
        re-materialized.
        """
        prev = self._snapshot
        affected: set[str] = set()
        for request in applied:
            view = request.view
            assert view is not None
            if request.op == "define":
                affected.add(view)
            else:
                affected |= self.kb.seers(view)
        models = {
            view: m for view, m in prev.models.items() if view not in affected
        }
        sems = {
            view: s for view, s in prev._sems.items() if view not in affected
        }
        if self.config.refresh_hot_views:
            for view in prev.models:
                if view in affected and view in self.kb.objects:
                    try:
                        models[view] = self.kb.view(view).least_model
                    except ReproError:
                        # The view is now erroneous (e.g. inconsistent);
                        # readers get the error lazily instead of the
                        # publish failing the whole batch.
                        models.pop(view, None)
        self._version += 1
        snapshot = Snapshot(
            self._version,
            self.kb.program(),
            self.kb.grounding,
            self.kb.budget,
            models,
            sems,
        )
        self._snapshot = snapshot
        self._batches += 1
        self._ops_applied += len(applied)
        if len(applied) > self._max_batch_seen:
            self._max_batch_seen = len(applied)
        if self.config.keep_history:
            self.history.append((snapshot, list(applied)))
        obs = get_instrumentation()
        if obs.enabled:
            obs.count("server.publishes")
            obs.observe("server.batch_size", len(applied))
            obs.gauge("server.version", self._version)
            obs.observe("server.snapshot_age", prev.age())
            obs.event(
                "server.publish",
                version=self._version,
                batch=len(applied),
                affected_views=len(affected),
            )
