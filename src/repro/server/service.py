"""The asyncio TCP front end of the query server.

One :class:`QueryServer` wraps a :class:`~repro.server.engine.ServerEngine`
behind ``asyncio.start_server``.  Each connection is an independent
newline-delimited-JSON session: requests are answered in order per
connection, while connections interleave freely (reads are lock-free
against published snapshots; writes serialize through the engine's
single-writer pipeline).

Shutdown is graceful: a ``shutdown`` request (or :meth:`QueryServer.aclose`)
stops the listener, lets in-flight connection handlers finish their
current request with a ``shutting_down`` reply for anything newly
admitted, drains the write queue, and publishes what was in flight
before the process exits.
"""

from __future__ import annotations

import asyncio
from typing import Optional

from ..obs import get_instrumentation
from ..obs.exposition import CONTENT_TYPE
from . import protocol
from .engine import ServerConfig, ServerEngine
from .protocol import ProtocolError

__all__ = ["MetricsSidecar", "QueryServer", "run_server"]


class MetricsSidecar:
    """A minimal HTTP/1.0 sidecar serving ``/metrics`` and ``/healthz``.

    Scrapers (Prometheus, curl) speak plain HTTP; the NDJSON protocol
    does not.  The sidecar binds its own port next to the query
    listener and answers GETs from the engine's always-on instruments —
    it never blocks on the writer, so a wedged pipeline still exposes
    its queue depth and snapshot age.
    """

    def __init__(
        self, engine: ServerEngine, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.engine = engine
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> "MetricsSidecar":
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        sockets = self._server.sockets or ()
        if sockets:
            self.port = sockets[0].getsockname()[1]
        return self

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readline()
            # Drain the (ignored) request headers up to the blank line.
            while True:
                header = await reader.readline()
                if not header or header in (b"\r\n", b"\n"):
                    break
            parts = request_line.decode("latin-1", "replace").split()
            path = parts[1] if len(parts) >= 2 else "/"
            if path.startswith("/metrics"):
                body = self.engine.exposition().encode("utf-8")
                status, ctype = "200 OK", CONTENT_TYPE
            elif path.startswith("/healthz"):
                draining = self.engine.draining
                payload = "draining" if draining else "ok"
                body = (payload + "\n").encode("utf-8")
                status = "503 Service Unavailable" if draining else "200 OK"
                ctype = "text/plain; charset=utf-8"
            else:
                body = b"not found\n"
                status, ctype = "404 Not Found", "text/plain; charset=utf-8"
            writer.write(
                (
                    f"HTTP/1.0 {status}\r\n"
                    f"Content-Type: {ctype}\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    "Connection: close\r\n"
                    "\r\n"
                ).encode("latin-1")
            )
            writer.write(body)
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass


class QueryServer:
    """NDJSON-over-TCP front end for a :class:`ServerEngine`."""

    def __init__(
        self,
        engine: ServerEngine,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.engine = engine
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: set[asyncio.Task] = set()
        self._closed = False

    async def start(self) -> "QueryServer":
        await self.engine.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockets = self._server.sockets or ()
        if sockets:
            self.port = sockets[0].getsockname()[1]
        get_instrumentation().event(
            "server.listening", host=self.host, port=self.port
        )
        return self

    async def __aenter__(self) -> "QueryServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    async def serve_until_shutdown(self) -> None:
        """Serve until a client sends ``shutdown`` (or the engine's
        shutdown event is set programmatically), then drain and stop."""
        await self.engine.shutdown_requested.wait()
        await self.aclose()

    async def aclose(self) -> None:
        """Graceful drain: stop accepting, finish open connections,
        drain the write pipeline."""
        if self._closed:
            return
        self._closed = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # End live subscribe streams before waiting on connections —
        # a stream blocks on its entry queue, not on readline, so only
        # the end sentinel lets its handler finish cleanly.
        self.engine.close_subscribers()
        if self._connections:
            # Connections normally close themselves after their last
            # reply; cap the wait so an idle client that never hangs up
            # cannot stall the drain forever.
            done, pending = await asyncio.wait(
                set(self._connections), timeout=5.0
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        await self.engine.aclose()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionResetError, asyncio.IncompleteReadError):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                if b"subscribe" in line:
                    # Cheap pre-filter; the parse decides for real.  A
                    # subscribe dedicates the rest of the connection to
                    # the stream (one writer task, ordered entries).
                    handled = await self._maybe_subscribe(line, writer)
                    if handled:
                        break
                payload = await self._respond(line)
                try:
                    writer.write(protocol.encode(payload))
                    await writer.drain()
                except (ConnectionResetError, BrokenPipeError):
                    break
                # Once a drain has been requested the current reply is
                # the connection's last; closing lets aclose proceed.
                if self.engine.shutdown_requested.is_set():
                    break
        finally:
            if task is not None:
                self._connections.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _maybe_subscribe(
        self, line: bytes, writer: asyncio.StreamWriter
    ) -> bool:
        """Run the ``subscribe`` stream if the line asks for one.

        Returns True when the connection was consumed by a stream (or
        the subscribe request was malformed and answered with an
        error); False when the line turned out to be some other op and
        the normal request/response path should handle it.
        """
        try:
            request = protocol.parse_request(line)
        except ProtocolError:
            return False  # let _respond produce the error reply
        if request.op != "subscribe":
            return False
        try:
            await self._serve_subscription(request, writer)
        except (ConnectionResetError, BrokenPipeError):
            pass
        return True

    async def _serve_subscription(
        self, request: protocol.Request, writer: asyncio.StreamWriter
    ) -> None:
        """Stream journal entries to one subscriber until it falls
        behind, the server drains, or the peer hangs up.

        Framing (``docs/replication.md``): one ``subscribed`` ok line,
        then optionally one ``snapshot`` line (full KB when the
        requested range is not replayable), then ``entry`` lines — one
        per published version, in order, no gaps — and finally a
        ``lagging`` or ``end`` line.
        """
        engine = self.engine
        if engine.draining:
            writer.write(
                protocol.encode(
                    protocol.error_response(
                        request.id,
                        protocol.SHUTTING_DOWN,
                        "server is draining",
                    )
                )
            )
            await writer.drain()
            return
        # Registration and catch-up are back-to-back with no await:
        # publishes run synchronously on this loop, so the queue holds
        # exactly the entries published after the catch-up frontier.
        sub = engine.add_subscriber(request.views)
        try:
            kind, payload, current = engine.catch_up(
                request.from_version, request.views
            )
            applied = request.from_version
            writer.write(
                protocol.encode(
                    protocol.ok_response(
                        request.id,
                        current,
                        {
                            "type": "subscribed",
                            "mode": kind,
                            "from_version": request.from_version,
                            "leader_version": current,
                        },
                    )
                )
            )
            if kind == "snapshot":
                writer.write(
                    protocol.encode(
                        protocol.ok_response(
                            request.id,
                            current,
                            {
                                "type": "snapshot",
                                "kb": payload,
                                "leader_version": current,
                            },
                        )
                    )
                )
                applied = current
            else:
                for entry in payload:
                    writer.write(
                        protocol.encode(
                            protocol.ok_response(
                                request.id,
                                entry["version"],
                                {
                                    "type": "entry",
                                    "ops": entry["ops"],
                                    "leader_version": current,
                                },
                            )
                        )
                    )
                    applied = entry["version"]
            await writer.drain()
            while True:
                if sub.lagging and sub.queue.empty():
                    writer.write(
                        protocol.encode(
                            protocol.ok_response(
                                request.id,
                                engine.version,
                                {"type": "lagging"},
                            )
                        )
                    )
                    await writer.drain()
                    return
                entry = await sub.queue.get()
                if entry is None:  # STREAM_END: the server is draining
                    writer.write(
                        protocol.encode(
                            protocol.ok_response(
                                request.id,
                                engine.version,
                                {"type": "end", "reason": "shutting_down"},
                            )
                        )
                    )
                    await writer.drain()
                    return
                if entry["version"] <= applied:
                    continue  # already delivered by catch-up
                sub.delivered += 1
                applied = entry["version"]
                writer.write(
                    protocol.encode(
                        protocol.ok_response(
                            request.id,
                            entry["version"],
                            {
                                "type": "entry",
                                "ops": entry["ops"],
                                "leader_version": engine.version,
                            },
                        )
                    )
                )
                await writer.drain()
        finally:
            engine.remove_subscriber(sub)

    async def _respond(self, line: bytes) -> dict:
        try:
            request = protocol.parse_request(
                line,
                default_deadline_ms=self.engine.config.default_deadline_ms,
            )
        except ProtocolError as error:
            return protocol.error_response(
                protocol.request_id_of(line), protocol.BAD_REQUEST, str(error)
            )
        try:
            return await self.engine.handle(request)
        except Exception as error:  # defensive: a reply beats a hang
            return protocol.error_response(
                request.id, protocol.INTERNAL, f"unhandled failure: {error!r}"
            )


async def run_server(
    kb,
    host: str = "127.0.0.1",
    port: int = 0,
    config: Optional[ServerConfig] = None,
    ready: Optional[asyncio.Event] = None,
    metrics_port: Optional[int] = None,
    wal=None,
    initial_version: int = 0,
) -> None:
    """Serve one knowledge base until a client requests shutdown.

    The CLI entry point (``olp serve``).  ``ready`` (if given) is set
    once the listener is bound — test harnesses use it to know when to
    connect.  ``metrics_port`` (if given; 0 picks a free port) starts a
    :class:`MetricsSidecar` on the same host.  ``wal`` (a
    :class:`~repro.server.wal.Wal`) makes every published version
    durable; ``initial_version`` is the recovered version the engine
    resumes counting from.
    """
    engine = ServerEngine(kb, config, wal=wal, initial_version=initial_version)
    server = QueryServer(engine, host, port)
    sidecar: Optional[MetricsSidecar] = None
    await server.start()
    if metrics_port is not None:
        sidecar = MetricsSidecar(engine, host, metrics_port)
        await sidecar.start()
    if ready is not None:
        ready.set()
    print(f"olp serve: listening on {server.host}:{server.port}", flush=True)
    if sidecar is not None:
        print(
            f"olp serve: metrics on {sidecar.host}:{sidecar.port}", flush=True
        )
    try:
        await server.serve_until_shutdown()
    finally:
        if sidecar is not None:
            await sidecar.aclose()
        await server.aclose()
    print(
        f"olp serve: drained and stopped at version {engine.version}", flush=True
    )
