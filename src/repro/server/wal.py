"""Durable write-ahead delta log for the query server.

The single-writer pipeline (``docs/server.md``) publishes one immutable
snapshot version per coalesced batch.  This module makes that version
stream *durable and replayable* (``docs/replication.md``):

* :class:`WalWriter` appends one record per published version to a
  segmented journal.  A record is a single line::

      <length>:<crc32 hex>:<payload JSON>\\n

  where ``length`` is the byte length of the UTF-8 payload and the
  CRC32 covers exactly those bytes.  The payload is
  ``{"v": version, "ops": [op, ...]}`` with each op a protocol-shaped
  write (``op``/``view``/``rules``/``isa`` plus the ``seers`` set the
  leader computed at publish time, which lets filtered followers skip
  irrelevant entries without re-deriving the poset).
* Segments rotate at ``segment_bytes``; a segment file is named by the
  first version it may contain (``wal-<version 12 digits>.log``), so
  the reader orders segments lexicographically.
* :func:`read_journal` validates every record (length prefix, CRC,
  monotonically increasing contiguous versions).  A torn *tail* — the
  crash-interrupted final record of the final segment — is tolerated
  and reported; corruption anywhere else raises :class:`WalCorruption`.
* :class:`Wal` ties writer + checkpoints together: ``recover()`` loads
  the newest readable checkpoint (a ``dumps_kb`` snapshot + version,
  written atomically via tmp-file + rename) and replays the journal
  suffix through the knowledge base's delta engine; ``maybe_checkpoint``
  snapshots every ``checkpoint_every`` versions and deletes sealed
  segments wholly covered by the checkpoint.

Durability contract: with ``fsync="always"`` (the default) an append
returns only after ``os.fsync``, so a write acknowledged by the server
survives ``kill -9``.  The batch-coalescing pipeline already amortizes
this — one append (one fsync) covers up to ``max_batch`` client writes.
``fsync="batch"`` trades the guarantee for group commit across
publishes (at most one fsync per ``fsync_interval_s``); ``"never"``
leaves it to the OS (benchmarks and tests).

The randomized fault-injection suite
(``tests/properties/test_crash_recovery.py``) kills servers at
arbitrary points — mid-batch, mid-fsync, mid-checkpoint, torn final
record — and asserts recovery is bit-identical to a serialized oracle
replay of the surviving records.
"""

from __future__ import annotations

import dataclasses
import json
import os
import re
import time
import zlib
from typing import Any, Callable, Iterator, Optional

from ..lang.errors import ReproError
from ..obs import get_instrumentation
from ..serialize import FORMAT_VERSION, kb_from_dict, kb_to_dict

__all__ = [
    "Wal",
    "WalCorruption",
    "WalRecord",
    "WalWriter",
    "CHECKPOINT_FORMAT",
    "SEGMENT_PATTERN",
    "checkpoint_path",
    "encode_record",
    "decode_line",
    "latest_checkpoint",
    "list_segments",
    "read_journal",
    "segment_path",
    "write_checkpoint",
]

#: Format tag of checkpoint payloads (bumped together with the
#: serialize module's FORMAT_VERSION when either schema changes).
CHECKPOINT_FORMAT = f"olp-checkpoint/{FORMAT_VERSION}"

SEGMENT_PATTERN = re.compile(r"^wal-(\d{12})\.log$")
CHECKPOINT_PATTERN = re.compile(r"^checkpoint-(\d{12})\.json$")

#: Failpoint stage names, in the order a single append hits them.
APPEND_STAGES = ("append.start", "append.torn", "append.pre_fsync", "append.done")


class WalCorruption(ReproError):
    """An unreadable journal: bad length prefix or CRC away from the
    tail, a duplicate version, or a gap in the version sequence."""


class SimulatedCrash(BaseException):
    """Raised by fault-injection failpoints.  Derives from
    ``BaseException`` so production ``except Exception`` recovery paths
    cannot swallow a simulated crash."""


@dataclasses.dataclass(frozen=True)
class WalRecord:
    """One decoded journal record: a published version and the
    protocol-shaped write ops that produced it."""

    version: int
    ops: tuple[dict, ...]

    def to_payload(self) -> dict[str, Any]:
        return {"v": self.version, "ops": list(self.ops)}


def encode_record(version: int, ops: list[dict]) -> bytes:
    """``<length>:<crc32 hex>:<payload>\\n`` for one record."""
    payload = json.dumps(
        {"v": version, "ops": ops}, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    return b"%d:%08x:%s\n" % (len(payload), crc, payload)


def decode_line(line: bytes) -> WalRecord:
    """Decode one complete journal line.

    Raises:
        WalCorruption: if the length prefix, CRC, or payload shape is
            invalid.  The caller decides whether the position (tail of
            the last segment vs anywhere else) makes that tolerable.
    """
    if not line.endswith(b"\n"):
        raise WalCorruption("record is missing its trailing newline (torn write)")
    body = line[:-1]
    head, sep, rest = body.partition(b":")
    if not sep or not head.isdigit():
        raise WalCorruption(f"unparsable length prefix {head[:32]!r}")
    crc_hex, sep, payload = rest.partition(b":")
    if not sep or len(crc_hex) != 8:
        raise WalCorruption(f"unparsable checksum field {crc_hex[:32]!r}")
    length = int(head)
    if length != len(payload):
        raise WalCorruption(
            f"length prefix {length} != payload length {len(payload)} (torn write)"
        )
    try:
        crc = int(crc_hex, 16)
    except ValueError as error:
        raise WalCorruption(f"non-hex checksum {crc_hex!r}") from error
    actual = zlib.crc32(payload) & 0xFFFFFFFF
    if crc != actual:
        raise WalCorruption(f"checksum mismatch: header {crc:08x}, payload {actual:08x}")
    try:
        data = json.loads(payload)
        version = data["v"]
        ops = data["ops"]
    except (json.JSONDecodeError, KeyError, TypeError) as error:
        raise WalCorruption(f"bad record payload: {error}") from error
    if not isinstance(version, int) or not isinstance(ops, list):
        raise WalCorruption(f"bad record payload shape: {payload[:64]!r}")
    return WalRecord(version, tuple(ops))


def segment_path(directory: str, first_version: int) -> str:
    return os.path.join(directory, f"wal-{first_version:012d}.log")


def checkpoint_path(directory: str, version: int) -> str:
    return os.path.join(directory, f"checkpoint-{version:012d}.json")


def list_segments(directory: str) -> list[tuple[int, str]]:
    """``(first_version, path)`` of every segment, oldest first."""
    segments = []
    for name in os.listdir(directory):
        match = SEGMENT_PATTERN.match(name)
        if match:
            segments.append((int(match.group(1)), os.path.join(directory, name)))
    return sorted(segments)


def _fsync_directory(directory: str) -> None:
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def read_journal(
    directory: str, after_version: int = 0
) -> tuple[list[WalRecord], dict[str, Any]]:
    """Every valid record with ``version > after_version``, in order.

    Returns ``(records, info)`` where ``info`` reports what recovery
    needs to log: segments read, records decoded, and whether a torn
    tail was dropped (``torn_tail``, with the byte offset a writer
    should truncate the final segment to).

    Raises:
        WalCorruption: for any damage other than an incomplete or
            checksum-failing *final* record of the *final* segment
            (the expected shape of a crash mid-append), and for
            duplicate or gapped versions anywhere.
    """
    segments = list_segments(directory)
    records: list[WalRecord] = []
    info: dict[str, Any] = {
        "segments": len(segments),
        "records": 0,
        "torn_tail": False,
        "truncate_to": None,
    }
    last_version: Optional[int] = None
    for index, (first_version, path) in enumerate(segments):
        final_segment = index == len(segments) - 1
        offset = 0
        with open(path, "rb") as handle:
            raw = handle.read()
        while offset < len(raw):
            newline = raw.find(b"\n", offset)
            line = raw[offset : newline + 1] if newline != -1 else raw[offset:]
            try:
                record = decode_line(line)
            except WalCorruption as error:
                # Only the crash-interrupted final record of the final
                # segment is tolerable; a later complete line after the
                # damage means interior corruption, never a torn tail.
                if final_segment and newline == -1:
                    info["torn_tail"] = True
                    info["truncate_to"] = (path, offset)
                    break
                raise WalCorruption(f"{path} at byte {offset}: {error}") from error
            if last_version is not None and record.version <= last_version:
                raise WalCorruption(
                    f"{path} at byte {offset}: duplicate version "
                    f"{record.version} (already saw {last_version})"
                )
            if last_version is not None and record.version > last_version + 1:
                raise WalCorruption(
                    f"{path} at byte {offset}: gap in versions "
                    f"({last_version} -> {record.version})"
                )
            if record.version < first_version:
                raise WalCorruption(
                    f"{path} at byte {offset}: version {record.version} below "
                    f"the segment's first version {first_version}"
                )
            last_version = record.version
            offset = newline + 1
            if record.version > after_version:
                records.append(record)
                info["records"] += 1
    return records, info


# ----------------------------------------------------------------------
# Checkpoints
# ----------------------------------------------------------------------

def write_checkpoint(directory: str, kb, version: int) -> str:
    """Atomically persist a full-KB checkpoint at one version.

    Written to a tmp file, fsynced, then renamed into place — a crash
    mid-checkpoint leaves either the old checkpoint set or the new one,
    never a half-written file under a checkpoint name.
    """
    payload = {
        "format": CHECKPOINT_FORMAT,
        "version": version,
        "kb": kb_to_dict(kb),
        "written_at": time.time(),
    }
    target = checkpoint_path(directory, version)
    tmp = target + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True, separators=(",", ":"))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, target)
    _fsync_directory(directory)
    return target


def latest_checkpoint(directory: str):
    """``(version, kb)`` from the newest *readable* checkpoint.

    A corrupt newest checkpoint (crash mid-write before the rename, or
    damaged bytes) falls back to the next older one; with no readable
    checkpoint at all, returns ``(0, None)`` and recovery replays the
    journal from the beginning.
    """
    candidates = []
    for name in os.listdir(directory):
        match = CHECKPOINT_PATTERN.match(name)
        if match:
            candidates.append((int(match.group(1)), os.path.join(directory, name)))
    for version, path in sorted(candidates, reverse=True):
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
            if payload.get("format") != CHECKPOINT_FORMAT:
                continue
            if payload.get("version") != version:
                continue
            return version, kb_from_dict(payload["kb"])
        except (OSError, ValueError, KeyError, ReproError):
            continue
    return 0, None


# ----------------------------------------------------------------------
# Writer
# ----------------------------------------------------------------------

class WalWriter:
    """Appends records to the journal with segment rotation.

    ``failpoint`` (tests only) is called with a stage name at each
    point of the append path — raising :class:`SimulatedCrash` there
    models a process death at exactly that point.  ``append.torn``
    additionally receives the encoded record so the failpoint can
    write a prefix of it before dying (a torn write).
    """

    def __init__(
        self,
        directory: str,
        *,
        fsync: str = "always",
        segment_bytes: int = 64 * 1024 * 1024,
        fsync_interval_s: float = 0.05,
        failpoint: Optional[Callable[..., None]] = None,
    ) -> None:
        if fsync not in ("always", "batch", "never"):
            raise ValueError(f"unknown fsync mode {fsync!r}")
        self.directory = directory
        self.fsync = fsync
        self.segment_bytes = segment_bytes
        self.fsync_interval_s = fsync_interval_s
        self.failpoint = failpoint
        self.appends = 0
        self.bytes_written = 0
        self.fsyncs = 0
        self.rotations = 0
        self._handle = None
        self._segment_size = 0
        self._last_fsync = 0.0
        self._pending_sync = False

    # -- segment lifecycle ---------------------------------------------
    def _open_segment(self, first_version: int) -> None:
        path = segment_path(self.directory, first_version)
        self._handle = open(path, "ab")
        self._segment_size = self._handle.tell()
        _fsync_directory(self.directory)

    def resume(self) -> None:
        """Open the newest segment for appending, truncating a torn
        tail first (called once by recovery, before any append)."""
        segments = list_segments(self.directory)
        if not segments:
            return
        _, info = read_journal(self.directory)
        if info["torn_tail"]:
            path, offset = info["truncate_to"]
            with open(path, "r+b") as handle:
                handle.truncate(offset)
                handle.flush()
                os.fsync(handle.fileno())
            get_instrumentation().event(
                "wal.truncate_torn_tail", path=path, offset=offset
            )
        first_version, _path = segments[-1]
        self._open_segment(first_version)

    def append(self, version: int, ops: list[dict]) -> int:
        """Durably append one record; returns its encoded size."""
        record = encode_record(version, ops)
        self._fail("append.start")
        if self._handle is None:
            self._open_segment(version)
        elif (
            self._segment_size
            and self._segment_size + len(record) > self.segment_bytes
        ):
            self._seal()
            self._open_segment(version)
            self.rotations += 1
        assert self._handle is not None
        if self.failpoint is not None:
            self._fail("append.torn", record=record, handle=self._handle)
        self._handle.write(record)
        self._handle.flush()
        self._fail("append.pre_fsync")
        self._maybe_fsync()
        self._segment_size += len(record)
        self.appends += 1
        self.bytes_written += len(record)
        obs = get_instrumentation()
        if obs.enabled:
            obs.count("wal.appends")
            obs.count("wal.bytes", len(record))
        self._fail("append.done")
        return len(record)

    def _maybe_fsync(self) -> None:
        assert self._handle is not None
        if self.fsync == "never":
            return
        now = time.monotonic()
        if self.fsync == "batch" and now - self._last_fsync < self.fsync_interval_s:
            self._pending_sync = True
            return
        os.fsync(self._handle.fileno())
        self._last_fsync = now
        self._pending_sync = False
        self.fsyncs += 1
        obs = get_instrumentation()
        if obs.enabled:
            obs.count("wal.fsyncs")

    def _seal(self) -> None:
        if self._handle is None:
            return
        self._handle.flush()
        if self.fsync != "never":
            os.fsync(self._handle.fileno())
            self.fsyncs += 1
        self._handle.close()
        self._handle = None
        self._segment_size = 0
        self._pending_sync = False

    def close(self) -> None:
        self._seal()

    def _fail(self, stage: str, **extra) -> None:
        if self.failpoint is not None:
            self.failpoint(stage, **extra)


# ----------------------------------------------------------------------
# The facade the server engine drives
# ----------------------------------------------------------------------

class Wal:
    """Journal + checkpoints of one serving directory.

    The engine calls :meth:`append` once per published version and
    :meth:`maybe_checkpoint` after each publish; boot calls
    :meth:`recover` once, before the engine starts.
    """

    def __init__(
        self,
        directory: str,
        *,
        fsync: str = "always",
        segment_bytes: int = 64 * 1024 * 1024,
        checkpoint_every: Optional[int] = 256,
        keep_checkpoints: int = 2,
        failpoint: Optional[Callable[..., None]] = None,
    ) -> None:
        os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self.checkpoint_every = checkpoint_every
        self.keep_checkpoints = max(1, keep_checkpoints)
        self.writer = WalWriter(
            directory,
            fsync=fsync,
            segment_bytes=segment_bytes,
            failpoint=failpoint,
        )
        self.failpoint = failpoint
        self.checkpoints = 0
        self.checkpoint_version = 0
        self.replayed = 0
        self.recovered_version = 0
        self.truncated_segments = 0
        #: True when version 0 is a checkpointed (seeded) KB rather than
        #: the empty one — subscribers from version 0 then need a
        #: snapshot, not journal entries.
        self.seeded_at_zero = False

    # -- boot ----------------------------------------------------------
    def recover(self):
        """``(kb, version)`` rebuilt from checkpoint + journal replay.

        Returns a fresh :class:`~repro.kb.knowledge_base.KnowledgeBase`
        (empty when the directory is) and the version it represents.
        Also arms the writer: the torn tail, if any, is truncated and
        the newest segment reopened for appending.
        """
        from ..kb.knowledge_base import KnowledgeBase

        obs = get_instrumentation()
        checkpoint_version, kb = latest_checkpoint(self.directory)
        if checkpoint_version == 0 and kb is not None:
            self.seeded_at_zero = True
        if kb is None:
            kb = KnowledgeBase()
        self.checkpoint_version = checkpoint_version
        records, info = read_journal(self.directory, after_version=checkpoint_version)
        for record in records:
            self._fail("recover.record", record=record)
            for op in record.ops:
                kb.apply_op(op)
        self.writer.resume()
        version = records[-1].version if records else checkpoint_version
        self.replayed = len(records)
        self.recovered_version = version
        if obs.enabled:
            obs.count("wal.replayed", len(records))
        obs.event(
            "wal.recover",
            checkpoint=checkpoint_version,
            replayed=len(records),
            version=version,
            torn_tail=info["torn_tail"],
        )
        return kb, version

    # -- steady state --------------------------------------------------
    def append(self, version: int, ops: list[dict]) -> None:
        self.writer.append(version, ops)

    def maybe_checkpoint(self, kb, version: int) -> bool:
        if (
            self.checkpoint_every is None
            or version - self.checkpoint_version < self.checkpoint_every
        ):
            return False
        self.checkpoint(kb, version)
        return True

    def checkpoint(self, kb, version: int) -> None:
        """Snapshot the KB, then truncate history it covers."""
        self._fail("checkpoint.start")
        write_checkpoint(self.directory, kb, version)
        self._fail("checkpoint.written")
        if version == 0:
            self.seeded_at_zero = True
        self.checkpoint_version = version
        self.checkpoints += 1
        self._truncate(version)
        obs = get_instrumentation()
        if obs.enabled:
            obs.count("wal.checkpoints")
            obs.gauge("wal.checkpoint_version", version)
        obs.event("wal.checkpoint", version=version)

    def _truncate(self, version: int) -> None:
        """Delete sealed segments wholly covered by the checkpoint and
        all but the newest ``keep_checkpoints`` checkpoint files."""
        segments = list_segments(self.directory)
        for index, (first_version, path) in enumerate(segments):
            is_active = index == len(segments) - 1
            next_first = (
                segments[index + 1][0] if index + 1 < len(segments) else None
            )
            # A segment's records all precede the next segment's first
            # version; it is disposable once that bound is <= version+1.
            if is_active or next_first is None or next_first > version + 1:
                continue
            os.remove(path)
            self.truncated_segments += 1
        checkpoints = sorted(
            (
                int(match.group(1))
                for name in os.listdir(self.directory)
                if (match := CHECKPOINT_PATTERN.match(name))
            ),
            reverse=True,
        )
        for old in checkpoints[self.keep_checkpoints :]:
            os.remove(checkpoint_path(self.directory, old))
        _fsync_directory(self.directory)

    def read_after(self, after_version: int) -> list[WalRecord]:
        """Journal records with ``version > after_version`` (the
        subscribe catch-up source).  ``None`` semantics: if the range
        has been truncated below a checkpoint, the caller must fall
        back to a full snapshot."""
        records, _info = read_journal(self.directory, after_version=after_version)
        return records

    @property
    def oldest_available(self) -> int:
        """The version from which the journal can replay contiguously:
        the newest checkpoint version (0 with no checkpoint — the
        journal covers everything from the start)."""
        return self.checkpoint_version

    def stats(self) -> dict[str, Any]:
        return {
            "directory": self.directory,
            "fsync": self.writer.fsync,
            "appends": self.writer.appends,
            "bytes": self.writer.bytes_written,
            "fsyncs": self.writer.fsyncs,
            "rotations": self.writer.rotations,
            "checkpoints": self.checkpoints,
            "checkpoint_version": self.checkpoint_version,
            "replayed_on_boot": self.replayed,
            "recovered_version": self.recovered_version,
            "truncated_segments": self.truncated_segments,
        }

    def close(self) -> None:
        self.writer.close()

    def _fail(self, stage: str, **extra) -> None:
        if self.failpoint is not None:
            self.failpoint(stage, **extra)


def iter_ops(records: list[WalRecord]) -> Iterator[dict]:
    """Flatten records to their ops (oracle replays in tests)."""
    for record in records:
        yield from record.ops
