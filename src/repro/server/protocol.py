"""The newline-delimited-JSON wire protocol of the query server.

One request per line, one response line per request, both JSON objects.
Requests carry a client-chosen ``id`` echoed verbatim in the response,
an ``op``, and per-op fields:

========  =====================================================markdown
op        fields
========  =====================================================
query     ``view`` (object name), ``pattern`` (literal pattern,
          e.g. ``"fly(X)"``), optional ``mode``
          (``cautious``/``skeptical``/``credulous``), optional
          ``strategy`` (``auto``/``demand`` — ``demand`` answers
          goal-directed without materializing the model where sound,
          see ``docs/query.md``)
ask       ``view``, ``pattern`` — boolean entailment; accepts the
          same ``mode``/``strategy`` fields as ``query``
explain   ``view``, ``pattern`` (ground literal) — the derivation tree
          (or per-rule failure analysis) against the current snapshot
tell      ``view``, ``rules`` (surface-syntax rules/facts)
retract   ``view``, ``rules`` (ground facts previously told)
define    ``view`` (the new object's name), optional ``rules``,
          optional ``isa`` (list of parent object names)
stats     —
health    —
metrics   — Prometheus text-format exposition of all instruments
slow      — dump the slow-query ring buffer (``--slow-ms``)
shutdown  — request a graceful drain-and-stop
subscribe ``from_version`` (stream journal entries after this
          version; default 0), optional ``views`` (list of object
          names: only entries whose ``seers`` intersect it are
          delivered with ops — other versions arrive empty)
========  =====================================================

``subscribe`` switches the connection into streaming mode: after one
normal ok reply (``result.type == "subscribed"``) the server keeps
writing lines with the same ``id`` — ``result.type`` is ``"snapshot"``
(a full KB dump when the requested range was truncated), ``"entry"``
(one published version: ``version``, ``ops``, ``leader_version``),
``"lagging"`` (the subscriber fell behind the bounded stream buffer
and must reconnect), or ``"end"`` (the server is draining).  No other
request is accepted on a subscribed connection — followers
(``docs/replication.md``) dedicate one connection to the stream.

Every request also accepts ``deadline_ms``: a relative per-request
deadline; work not *started* before it expires is shed with a
``timeout`` error.

Every query/ask/explain/tell/retract/define request additionally
accepts ``trace``: either ``true`` or ``{"id": <hex>, "baggage":
{str: str}}``.  A traced request executes under a
:class:`~repro.obs.trace.TraceContext`; the reply's result carries a
``trace`` object (``trace_id``, the span tree, and the engine cost
digest — see ``docs/observability.md`` for the schema).

Responses are ``{"id": ..., "ok": true, "version": v, "result": {...}}``
or ``{"id": ..., "ok": false, "error": {"code": ..., "message": ...}}``.
``version`` is the snapshot version a read was answered at, or the
version a mutation became visible at.  Error codes:

* ``bad_request`` — malformed JSON, unknown op, missing/ill-typed field;
* ``semantics`` — the engine rejected the request
  (:class:`~repro.lang.errors.ReproError`: unknown object, parse error,
  retracting a never-told fact, ...);
* ``overloaded`` — the bounded write queue is full (admission control);
  retry with backoff;
* ``timeout`` — the per-request deadline expired before execution;
* ``shutting_down`` — the server is draining and no longer admits work;
* ``not_leader`` — a write reached a read-only follower; retry against
  the leader (the message names it when known);
* ``internal`` — unexpected failure (a bug; details in the message).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Optional, Union

__all__ = [
    "OPS",
    "READ_OPS",
    "WRITE_OPS",
    "ADMIN_OPS",
    "STREAM_OPS",
    "ERROR_CODES",
    "BAD_REQUEST",
    "SEMANTICS",
    "OVERLOADED",
    "TIMEOUT",
    "SHUTTING_DOWN",
    "NOT_LEADER",
    "INTERNAL",
    "MODES",
    "STRATEGIES",
    "ProtocolError",
    "Request",
    "parse_request",
    "request_id_of",
    "ok_response",
    "error_response",
    "encode",
]

READ_OPS = frozenset({"query", "ask", "explain"})
WRITE_OPS = frozenset({"tell", "retract", "define"})
ADMIN_OPS = frozenset({"stats", "health", "metrics", "slow", "shutdown"})
STREAM_OPS = frozenset({"subscribe"})
OPS = READ_OPS | WRITE_OPS | ADMIN_OPS | STREAM_OPS

MODES = ("cautious", "skeptical", "credulous")

#: Per-request read strategies (None = the server default, ``auto``).
STRATEGIES = ("auto", "demand")

BAD_REQUEST = "bad_request"
SEMANTICS = "semantics"
OVERLOADED = "overloaded"
TIMEOUT = "timeout"
SHUTTING_DOWN = "shutting_down"
NOT_LEADER = "not_leader"
INTERNAL = "internal"
ERROR_CODES = frozenset(
    {BAD_REQUEST, SEMANTICS, OVERLOADED, TIMEOUT, SHUTTING_DOWN, NOT_LEADER, INTERNAL}
)


class ProtocolError(ValueError):
    """A request that cannot be admitted: malformed JSON, unknown op,
    or a missing / ill-typed field.  Maps to the ``bad_request`` code."""


@dataclass(frozen=True)
class Request:
    """One validated protocol request.

    ``arrived_at`` is the monotonic admission time; together with
    ``deadline_ms`` it defines the absolute deadline after which the
    request is shed instead of executed.
    """

    op: str
    id: Any = None
    view: Optional[str] = None
    pattern: Optional[str] = None
    mode: str = "cautious"
    rules: Optional[str] = None
    isa: tuple[str, ...] = ()
    #: Read ops only: None (server default) or one of :data:`STRATEGIES`.
    strategy: Optional[str] = None
    #: ``subscribe`` only: stream entries with version > this.
    from_version: int = 0
    #: ``subscribe`` only: None streams every entry; a tuple restricts
    #: op delivery to entries whose ``seers`` intersect it.
    views: Optional[tuple[str, ...]] = None
    deadline_ms: Optional[float] = None
    #: None (no tracing requested) or a normalized ``{"id": str|None,
    #: "baggage": {str: str}}`` — see :func:`parse_request`.
    trace: Optional[dict] = None
    arrived_at: float = field(default_factory=time.monotonic)

    @property
    def deadline(self) -> Optional[float]:
        """Absolute monotonic deadline, or None when unbounded."""
        if self.deadline_ms is None:
            return None
        return self.arrived_at + self.deadline_ms / 1000.0

    def expired(self, now: Optional[float] = None) -> bool:
        deadline = self.deadline
        if deadline is None:
            return False
        return (now if now is not None else time.monotonic()) > deadline


def _require_str(data: dict, key: str, op: str) -> str:
    value = data.get(key)
    if not isinstance(value, str) or not value:
        raise ProtocolError(f"op {op!r} requires a non-empty string {key!r}")
    return value


def parse_request(
    raw: Union[str, bytes, dict], *, default_deadline_ms: Optional[float] = None
) -> Request:
    """Validate one request line (or an already-decoded object).

    Raises:
        ProtocolError: on malformed JSON, an unknown op, or a missing /
            ill-typed per-op field.
    """
    if isinstance(raw, (str, bytes)):
        try:
            data = json.loads(raw)
        except json.JSONDecodeError as error:
            raise ProtocolError(f"invalid JSON: {error}") from error
    else:
        data = raw
    if not isinstance(data, dict):
        raise ProtocolError("request must be a JSON object")
    op = data.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r}; expected one of {sorted(OPS)}")

    view = pattern = rules = strategy = None
    isa: tuple[str, ...] = ()
    from_version = 0
    views: Optional[tuple[str, ...]] = None
    mode = data.get("mode", "cautious")
    if mode not in MODES:
        raise ProtocolError(f"unknown mode {mode!r}; expected one of {MODES}")
    if op == "subscribe":
        raw_from = data.get("from_version", 0)
        if not isinstance(raw_from, int) or raw_from < 0:
            raise ProtocolError(
                "op 'subscribe' field 'from_version' must be a non-negative integer"
            )
        from_version = raw_from
        raw_views = data.get("views")
        if raw_views is not None:
            if (
                not isinstance(raw_views, list)
                or not raw_views
                or not all(isinstance(v, str) and v for v in raw_views)
            ):
                raise ProtocolError(
                    "op 'subscribe' field 'views' must be a non-empty "
                    "list of object names"
                )
            views = tuple(raw_views)
    elif op in READ_OPS:
        view = _require_str(data, "view", op)
        pattern = _require_str(data, "pattern", op)
        strategy = data.get("strategy")
        if strategy is not None and strategy not in STRATEGIES:
            raise ProtocolError(
                f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
            )
    elif op in ("tell", "retract"):
        view = _require_str(data, "view", op)
        rules = _require_str(data, "rules", op)
    elif op == "define":
        view = _require_str(data, "view", op)
        rules = data.get("rules", "")
        if not isinstance(rules, str):
            raise ProtocolError("op 'define' field 'rules' must be a string")
        raw_isa = data.get("isa", [])
        if not isinstance(raw_isa, list) or not all(
            isinstance(p, str) for p in raw_isa
        ):
            raise ProtocolError("op 'define' field 'isa' must be a list of strings")
        isa = tuple(raw_isa)

    deadline_ms = data.get("deadline_ms", default_deadline_ms)
    if deadline_ms is not None and (
        not isinstance(deadline_ms, (int, float)) or deadline_ms < 0
    ):
        raise ProtocolError("'deadline_ms' must be a non-negative number")

    return Request(
        op=op,
        id=data.get("id"),
        view=view,
        pattern=pattern,
        mode=mode,
        rules=rules,
        isa=isa,
        strategy=strategy,
        from_version=from_version,
        views=views,
        deadline_ms=deadline_ms,
        trace=_parse_trace(data.get("trace")),
    )


def _parse_trace(raw: Any) -> Optional[dict]:
    """Normalize the optional ``trace`` field.

    ``true`` requests a fresh trace; an object may pin the trace ``id``
    (joining a distributed trace) and attach string ``baggage``.
    """
    if raw is None or raw is False:
        return None
    if raw is True:
        return {"id": None, "baggage": {}}
    if not isinstance(raw, dict):
        raise ProtocolError("'trace' must be true or an object")
    trace_id = raw.get("id")
    if trace_id is not None and (
        not isinstance(trace_id, str) or not trace_id
    ):
        raise ProtocolError("'trace.id' must be a non-empty string")
    baggage = raw.get("baggage", {})
    if not isinstance(baggage, dict) or not all(
        isinstance(k, str) and isinstance(v, str) for k, v in baggage.items()
    ):
        raise ProtocolError("'trace.baggage' must map strings to strings")
    return {"id": trace_id, "baggage": dict(baggage)}


def request_id_of(raw: Union[str, bytes]) -> Any:
    """Best-effort ``id`` extraction from a possibly-malformed line, so
    error replies can still be correlated by the client."""
    try:
        data = json.loads(raw)
    except json.JSONDecodeError:
        return None
    if isinstance(data, dict):
        return data.get("id")
    return None


def ok_response(
    request_id: Any, version: Optional[int] = None, result: Optional[dict] = None
) -> dict:
    payload: dict[str, Any] = {"id": request_id, "ok": True}
    if version is not None:
        payload["version"] = version
    payload["result"] = result if result is not None else {}
    return payload


def error_response(
    request_id: Any,
    code: str,
    message: str,
    version: Optional[int] = None,
    **extra: Any,
) -> dict:
    assert code in ERROR_CODES, code
    payload: dict[str, Any] = {
        "id": request_id,
        "ok": False,
        "error": {"code": code, "message": message, **extra},
    }
    if version is not None:
        payload["version"] = version
    return payload


def encode(payload: dict) -> bytes:
    """One response line, newline-terminated."""
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
