"""Follower replication and the read-fanout fleet tier.

Three pieces turn the leader's durable version stream
(:mod:`repro.server.wal`) into horizontally-scaled reads
(``docs/replication.md``):

* :class:`FollowerEngine` — a :class:`~repro.server.engine.ServerEngine`
  that never originates versions: writes are rejected with
  ``not_leader``, and state advances only through :meth:`apply_entry`
  (one journal entry = one leader version, applied through the KB's
  delta engine so cached views repair incrementally) or
  :meth:`load_snapshot` (full resync when the leader truncated the
  requested range).  Reads stay snapshot-isolated at the follower's
  applied version; :attr:`lag_versions` reports how far behind the
  leader it is.
* :func:`run_follower` — ``olp serve --follow <leader>``: serves the
  NDJSON protocol like a normal server while a tail task holds one
  ``subscribe`` stream to the leader, applying entries as they arrive
  and reconnecting (with backoff, from its applied version) after
  ``lagging`` cuts, leader drains, or connection loss.
* :class:`FleetServer` / :func:`run_fleet` — ``olp serve --fleet``: a
  thin NDJSON proxy that round-robins read ops across followers
  (honoring each follower's subscribed view subset) and routes writes
  and admin ops to the leader, forwarding replies verbatim.

A follower may subscribe to a view subset (``--views``): the leader
then delivers only ops whose ``seers`` intersect the subset (live) or
whose object falls in the subset's ``C*`` scope (catch-up) — every
version still arrives, possibly with no ops, so "applied v" always
means "consistent with the leader's v for the subscribed views".
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Any, Optional, Sequence

from ..obs import get_instrumentation
from ..obs.exposition import PrometheusWriter
from ..serialize import kb_from_dict
from . import protocol
from .engine import ServerConfig, ServerEngine, Snapshot
from .protocol import Request

__all__ = [
    "Backend",
    "FleetServer",
    "FollowerEngine",
    "ReplicationError",
    "parse_backend",
    "run_fleet",
    "run_follower",
]


class ReplicationError(RuntimeError):
    """The replication stream violated its contract (a version gap, an
    unexpected frame, an error reply on the subscribe connection)."""


class FollowerEngine(ServerEngine):
    """A read-only engine fed by a leader's ``subscribe`` stream."""

    def __init__(
        self,
        kb=None,
        config: Optional[ServerConfig] = None,
        leader: str = "",
        views: Optional[tuple[str, ...]] = None,
    ) -> None:
        super().__init__(kb, config)
        self.leader = leader
        self.views = views
        self.leader_version = self.version
        self.entries_applied = 0
        self.ops_replicated = 0
        self.snapshots_loaded = 0
        self.reconnects = 0
        self.resets = 0
        self.last_entry_at: Optional[float] = None

    # -- state advances only through the stream ------------------------
    async def _write(self, request: Request) -> dict:
        return self._error(
            request,
            protocol.NOT_LEADER,
            f"read-only follower; send writes to the leader"
            + (f" at {self.leader}" if self.leader else ""),
        )

    @property
    def lag_versions(self) -> int:
        return max(0, self.leader_version - self.version)

    def note_leader(self, leader_version: int) -> None:
        if leader_version > self.leader_version:
            self.leader_version = leader_version
        obs = get_instrumentation()
        if obs.enabled:
            obs.gauge("replica.lag_versions", self.lag_versions)

    def apply_entry(
        self, version: int, ops: list[dict], leader_version: Optional[int] = None
    ) -> bool:
        """Apply one streamed journal entry and publish at the leader's
        version.  Returns False for an already-applied version (catch-up
        overlap after reconnect); raises :class:`ReplicationError` on a
        gap — the tail loop answers a gap by resubscribing from the
        applied version.
        """
        if leader_version is not None:
            self.note_leader(max(leader_version, version))
        else:
            self.note_leader(version)
        if version <= self.version:
            return False
        if version != self.version + 1:
            raise ReplicationError(
                f"version gap in replication stream: applied "
                f"{self.version}, received {version}"
            )
        for op in ops:
            self.kb.apply_op(op)
        self._publish_ops(list(ops), version)
        self.entries_applied += 1
        self.ops_replicated += len(ops)
        self.last_entry_at = time.monotonic()
        obs = get_instrumentation()
        if obs.enabled:
            obs.count("replica.entries")
            obs.count("replica.ops", len(ops))
            obs.gauge("replica.applied_version", version)
            obs.gauge("replica.lag_versions", self.lag_versions)
        return True

    def reset_for_resync(self) -> None:
        """Discard all replicated state and rejoin from version 0.

        The recovery of last resort: an entry failed to apply midway,
        so the KB may hold a partial batch no version describes.
        Resubscribing from 0 then rebuilds from either the journal
        (replayed onto this now-empty KB) or a leader snapshot."""
        from ..kb.knowledge_base import KnowledgeBase

        self.kb = KnowledgeBase()
        self._version = 0
        self._snapshot = Snapshot(
            0, self.kb.program(), self.kb.grounding, self.kb.budget
        )
        self.resets += 1
        get_instrumentation().event("replica.reset", resets=self.resets)

    def load_snapshot(self, kb_dict: dict, version: int) -> None:
        """Full resync: replace the KB wholesale and publish at the
        snapshot's version (nothing cached survives — the old state may
        be arbitrarily far behind)."""
        self.kb = kb_from_dict(kb_dict)
        self._version = version
        self._snapshot = Snapshot(
            version, self.kb.program(), self.kb.grounding, self.kb.budget
        )
        self.note_leader(version)
        self.snapshots_loaded += 1
        obs = get_instrumentation()
        if obs.enabled:
            obs.count("replica.snapshots")
            obs.gauge("replica.applied_version", version)
        obs.event("replica.snapshot_loaded", version=version)

    # -- observability -------------------------------------------------
    def stats(self) -> dict:
        payload = super().stats()
        payload["replica"] = {
            "leader": self.leader,
            "views": list(self.views) if self.views is not None else None,
            "leader_version": self.leader_version,
            "applied_version": self.version,
            "lag_versions": self.lag_versions,
            "entries_applied": self.entries_applied,
            "ops_replicated": self.ops_replicated,
            "snapshots_loaded": self.snapshots_loaded,
            "reconnects": self.reconnects,
            "resets": self.resets,
        }
        return payload

    def _expose_extra(self, writer: PrometheusWriter) -> None:
        writer.gauge(
            "repro_replica_lag_versions",
            self.lag_versions,
            help="Replication lag (replica.lag_versions): leader version "
            "minus applied version.",
        )
        writer.gauge(
            "repro_replica_applied_version",
            self.version,
            help="Last leader version applied by this follower.",
        )
        writer.gauge(
            "repro_replica_leader_version",
            self.leader_version,
            help="Newest leader version observed on the stream.",
        )
        writer.counter(
            "repro_replica_entries_total",
            self.entries_applied,
            help="Journal entries applied from the stream.",
        )
        writer.counter(
            "repro_replica_ops_total",
            self.ops_replicated,
            help="Write ops replicated from the leader.",
        )
        writer.counter(
            "repro_replica_snapshots_total",
            self.snapshots_loaded,
            help="Full-snapshot resyncs performed.",
        )
        writer.counter(
            "repro_replica_reconnects_total",
            self.reconnects,
            help="Subscribe-stream reconnects.",
        )
        writer.counter(
            "repro_replica_resets_total",
            self.resets,
            help="Full state wipes after a mid-entry apply failure.",
        )


# ----------------------------------------------------------------------
# The tail task: one subscribe stream, applied as it arrives
# ----------------------------------------------------------------------

async def _tail_once(
    engine: FollowerEngine, host: str, port: int
) -> str:
    """Hold one subscribe stream until it ends.

    Returns ``"end"`` (leader drained cleanly), ``"lagging"`` (the
    leader cut us; resubscribe immediately), or raises on connection
    loss / protocol violations.
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        request: dict[str, Any] = {
            "op": "subscribe",
            "id": "follow",
            "from_version": engine.version,
        }
        if engine.views is not None:
            request["views"] = list(engine.views)
        writer.write(protocol.encode(request))
        await writer.drain()
        while not engine.draining:
            line = await reader.readline()
            if not line:
                raise ReplicationError("leader closed the stream")
            message = json.loads(line)
            if not message.get("ok"):
                raise ReplicationError(f"subscribe rejected: {message.get('error')}")
            result = message.get("result", {})
            kind = result.get("type")
            if kind == "subscribed":
                engine.note_leader(result.get("leader_version", 0))
            elif kind == "snapshot":
                engine.load_snapshot(result["kb"], message["version"])
            elif kind == "entry":
                engine.apply_entry(
                    message["version"],
                    result.get("ops", []),
                    result.get("leader_version"),
                )
            elif kind == "lagging":
                return "lagging"
            elif kind == "end":
                return "end"
            else:
                raise ReplicationError(f"unexpected stream frame {kind!r}")
        return "draining"
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


async def tail_leader(
    engine: FollowerEngine,
    host: str,
    port: int,
    *,
    backoff_s: float = 0.1,
    max_backoff_s: float = 2.0,
) -> None:
    """Keep the follower subscribed until it drains.

    Connection loss, leader drain, and ``lagging`` cuts all converge on
    the same recovery: resubscribe from the applied version (the leader
    replays the missed suffix from its journal, or sends a snapshot if
    it was truncated away).
    """
    delay = backoff_s
    obs = get_instrumentation()
    while not engine.draining and not engine.shutdown_requested.is_set():
        try:
            outcome = await _tail_once(engine, host, port)
        except (OSError, ReplicationError, json.JSONDecodeError) as error:
            # Connection loss or a stream-contract violation: both are
            # detected *before* any partial apply, so the follower's
            # state is intact — resubscribe from the applied version.
            obs.event("replica.stream_error", error=repr(error))
            outcome = "error"
        except Exception as error:  # noqa: BLE001 - apply died midway
            # An op failed to apply (e.g. the follower's state predates
            # a seed the stream assumes): the KB may hold a partial
            # entry, so wipe and rebuild from scratch.
            obs.event("replica.apply_error", error=repr(error))
            engine.reset_for_resync()
            outcome = "error"
        if engine.draining or engine.shutdown_requested.is_set():
            return
        engine.reconnects += 1
        if obs.enabled:
            obs.count("replica.reconnects")
        if outcome == "lagging":
            delay = backoff_s  # the leader is alive; rejoin at once
        else:
            delay = min(delay * 2, max_backoff_s)
        try:
            await asyncio.wait_for(
                engine.shutdown_requested.wait(), timeout=delay
            )
            return
        except asyncio.TimeoutError:
            pass


async def run_follower(
    leader_host: str,
    leader_port: int,
    host: str = "127.0.0.1",
    port: int = 0,
    config: Optional[ServerConfig] = None,
    views: Optional[tuple[str, ...]] = None,
    ready: Optional[asyncio.Event] = None,
    metrics_port: Optional[int] = None,
) -> None:
    """``olp serve --follow host:port``: serve snapshot-isolated reads
    that track a leader's version stream."""
    from .service import MetricsSidecar, QueryServer

    engine = FollowerEngine(
        None, config, leader=f"{leader_host}:{leader_port}", views=views
    )
    server = QueryServer(engine, host, port)
    sidecar: Optional[MetricsSidecar] = None
    await server.start()
    if metrics_port is not None:
        sidecar = MetricsSidecar(engine, host, metrics_port)
        await sidecar.start()
    tail = asyncio.ensure_future(
        tail_leader(engine, leader_host, leader_port)
    )
    if ready is not None:
        ready.set()
    print(
        f"olp serve: following {leader_host}:{leader_port}"
        + (f" views={','.join(views)}" if views else ""),
        flush=True,
    )
    print(f"olp serve: listening on {server.host}:{server.port}", flush=True)
    if sidecar is not None:
        print(f"olp serve: metrics on {sidecar.host}:{sidecar.port}", flush=True)
    try:
        await server.serve_until_shutdown()
    finally:
        tail.cancel()
        await asyncio.gather(tail, return_exceptions=True)
        if sidecar is not None:
            await sidecar.aclose()
        await server.aclose()
    print(
        f"olp serve: follower drained and stopped at version {engine.version} "
        f"(lag {engine.lag_versions})",
        flush=True,
    )


# ----------------------------------------------------------------------
# The fleet tier: fan reads out, funnel writes in
# ----------------------------------------------------------------------

class Backend:
    """One pooled upstream NDJSON connection (leader or follower).

    Requests are serialized per backend (one in flight at a time) —
    the fleet's parallelism comes from having many backends, not from
    pipelining into one.
    """

    def __init__(
        self, host: str, port: int, views: Optional[frozenset[str]] = None
    ) -> None:
        self.host = host
        self.port = port
        self.views = views
        self.requests = 0
        self.failures = 0
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._lock = asyncio.Lock()

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def serves(self, view: Optional[str]) -> bool:
        return self.views is None or (view is not None and view in self.views)

    async def _connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def _close(self) -> None:
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
        self._reader = self._writer = None

    async def call(self, line: bytes) -> bytes:
        """Forward one request line; return the one response line.

        A dead pooled connection is retried once on a fresh one before
        the failure propagates.
        """
        async with self._lock:
            for _attempt in (0, 1):
                try:
                    if self._writer is None:
                        await self._connect()
                    assert self._reader is not None and self._writer is not None
                    self._writer.write(line)
                    await self._writer.drain()
                    reply = await self._reader.readline()
                    if reply:
                        self.requests += 1
                        return reply
                except (ConnectionResetError, BrokenPipeError, OSError):
                    pass
                await self._close()
            self.failures += 1
            raise ConnectionError(f"backend {self.address} unavailable")

    async def aclose(self) -> None:
        async with self._lock:
            await self._close()


def parse_backend(spec: str) -> Backend:
    """``host:port`` or ``host:port=viewA,viewB`` (a view-subset
    follower that only serves those views)."""
    views: Optional[frozenset[str]] = None
    if "=" in spec:
        spec, _, raw = spec.partition("=")
        views = frozenset(v for v in raw.split(",") if v)
        if not views:
            raise ValueError(f"backend {spec!r}: empty view list")
    host, _, port = spec.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"backend spec {spec!r} is not host:port[=views]")
    return Backend(host, int(port), views)


class FleetServer:
    """``olp serve --fleet``: route reads across followers, writes and
    admin to the leader, replies forwarded verbatim (clients see
    follower versions on reads — snapshot isolation at whatever version
    the serving follower has applied)."""

    def __init__(
        self,
        leader: Backend,
        followers: Sequence[Backend],
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.leader = leader
        self.followers = list(followers)
        self.host = host
        self.port = port
        self.routed_reads = 0
        self.routed_writes = 0
        self.shutdown_requested = asyncio.Event()
        self._rr = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._closed = False

    async def start(self) -> "FleetServer":
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockets = self._server.sockets or ()
        if sockets:
            self.port = sockets[0].getsockname()[1]
        return self

    async def serve_until_shutdown(self) -> None:
        await self.shutdown_requested.wait()
        await self.aclose()

    async def aclose(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for backend in [self.leader, *self.followers]:
            await backend.aclose()

    def _pick_follower(self, view: Optional[str]) -> Optional[Backend]:
        """Round-robin over the followers that serve the view; None
        when no follower is eligible (the leader then serves the read)."""
        eligible = [b for b in self.followers if b.serves(view)]
        if not eligible:
            return None
        self._rr += 1
        return eligible[self._rr % len(eligible)]

    async def _route(self, line: bytes) -> dict | bytes:
        """One request line to one response line (dict = fleet-local)."""
        try:
            data = json.loads(line)
            op = data.get("op") if isinstance(data, dict) else None
        except json.JSONDecodeError:
            data, op = None, None
        if op == "shutdown":
            # Fleet-local: drain the proxy; backends are managed by
            # their own lifecycles (each accepts its own shutdown op).
            self.shutdown_requested.set()
            request_id = data.get("id") if isinstance(data, dict) else None
            return protocol.ok_response(request_id, None, {"draining": True})
        if op == "subscribe":
            request_id = data.get("id") if isinstance(data, dict) else None
            return protocol.error_response(
                request_id,
                protocol.BAD_REQUEST,
                f"subscribe directly to the leader at {self.leader.address}",
            )
        backend: Optional[Backend] = None
        if op in protocol.READ_OPS:
            view = data.get("view") if isinstance(data, dict) else None
            backend = self._pick_follower(
                view if isinstance(view, str) else None
            )
            self.routed_reads += 1
        else:
            self.routed_writes += 1
        if backend is None:
            backend = self.leader
        try:
            return await backend.call(line)
        except ConnectionError as error:
            if backend is not self.leader:
                # A dead follower must not fail reads: the leader can
                # always serve them.
                try:
                    return await self.leader.call(line)
                except ConnectionError as fallback_error:
                    error = fallback_error
            request_id = data.get("id") if isinstance(data, dict) else None
            return protocol.error_response(
                request_id, protocol.INTERNAL, str(error)
            )

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionResetError, asyncio.IncompleteReadError):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                reply = await self._route(line)
                payload = (
                    protocol.encode(reply) if isinstance(reply, dict) else reply
                )
                try:
                    writer.write(payload)
                    await writer.drain()
                except (ConnectionResetError, BrokenPipeError):
                    break
                if self.shutdown_requested.is_set():
                    break
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass


async def run_fleet(
    leader: Backend,
    followers: Sequence[Backend],
    host: str = "127.0.0.1",
    port: int = 0,
    ready: Optional[asyncio.Event] = None,
) -> None:
    """``olp serve --fleet``: one front address over a leader and its
    followers."""
    fleet = FleetServer(leader, followers, host, port)
    await fleet.start()
    if ready is not None:
        ready.set()
    print(
        f"olp serve: fleet listening on {fleet.host}:{fleet.port} "
        f"(leader {leader.address}, {len(fleet.followers)} followers)",
        flush=True,
    )
    try:
        await fleet.serve_until_shutdown()
    finally:
        await fleet.aclose()
    print(
        f"olp serve: fleet drained after {fleet.routed_reads} reads / "
        f"{fleet.routed_writes} writes",
        flush=True,
    )
