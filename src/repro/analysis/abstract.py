"""Abstract interpretation over the *non-ground* program: per-predicate
argument sorts, binding modes, and cardinality intervals.

The grounder and the fixpoint engines pay for every ground instance the
Herbrand universe admits, whether or not the instance can ever fire.
This module runs a whole-program **abstract fixpoint** over the signed
predicate dependency graph (SCC condensation order) and computes, for
every *signed* predicate ``(name, arity, sign)``:

* a **sort** per argument position — a finite set of ground terms
  (capped at :data:`VALUE_CAP`), a function-symbol skeleton with a term
  depth bound, or ⊤;
* **modes** per argument — ``b`` when every deriving rule builds the
  argument from body-bound variables, ``f`` when some rule leaves a
  head variable unconstrained (the unsafe-rule idiom);
* a **cardinality interval** ``[lo, hi]`` bounding the size of the
  predicate's relation in the least model (``hi = 0`` proves the
  predicate empty, ``hi = 1`` proves it at most a singleton).

Signs are tracked separately because the paper's ``¬`` is *classical*
negation: a negative body literal ``¬p(t)`` is true only when ``¬p(t)``
is a member of the interpretation, so it is derivable only through
negative-head rules (Definition 2; the closed-world idiom ``¬p(X).``
the reductions emit).

Soundness.  The abstract transformer ignores overruling and defeating
entirely, i.e. it assumes every non-blocked rule may fire.  Since
statuses only ever *remove* firings (``V_{P,C}`` fires a rule iff it is
applicable and neither overruled nor defeated), the computed sorts
over-approximate the derivable literals of the least model of every
rule subset — in particular of every component view ``C*`` drawn from
the analyzed rules.  ``lo`` is claimed only for uncontradicted
predicates backed by guard-free facts, which no status can suppress.

Termination.  Finite sorts grow at most to :data:`VALUE_CAP` before the
join widens them to a depth bound; on recursive SCCs a growing depth
bound is widened to ⊤ after :data:`WIDEN_AFTER` rounds, so every SCC
converges after a bounded number of rounds.  Widenings are counted on
the ``analysis.widenings.*`` counters.

Consumers: the grounder (:mod:`repro.grounding.grounder`, via
:meth:`AbstractAnalysis.restriction`), the Datalog engine's join
planner (:func:`repro.db.columnar.plan_join`), and the static analyzer
(:mod:`repro.analysis.static`: ``type-clash``, ``provably-empty``,
``dead-rule`` and the semantic ``function-growth`` check).  See
``docs/analysis.md`` ("Abstract domains").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Sequence

from ..classical.stratified import strongly_connected_components
from ..grounding.herbrand import HerbrandUniverse, universe_of
from ..lang.builtins import Comparison
from ..lang.errors import GroundingError
from ..lang.literals import Literal
from ..lang.program import Component, OrderedProgram
from ..lang.rules import Rule
from ..lang.terms import Compound, Constant, Term, Variable, term_depth
from ..obs import get_instrumentation

__all__ = [
    "VALUE_CAP",
    "WIDEN_AFTER",
    "Sort",
    "CardInterval",
    "PredicateFacts",
    "RuleRestriction",
    "AbstractAnalysis",
    "analyze_rules",
    "analyze_view",
    "analyze_whole_program",
]

#: A signed predicate: ``(name, arity, positive?)``.
Signed = tuple[str, int, bool]

#: Largest finite sort kept extensionally; joins past this widen to a
#: depth-bounded sort.
VALUE_CAP = 64

#: Rounds of exact iteration on a recursive SCC before a still-growing
#: depth bound is widened to ⊤.
WIDEN_AFTER = 8


def _signed(literal: Literal) -> Signed:
    return (literal.predicate, len(literal.args), literal.positive)


def _complement(key: Signed) -> Signed:
    return (key[0], key[1], not key[2])


def signed_name(key: Signed) -> str:
    """Render a signed predicate key, e.g. ``¬fly/1``."""
    prefix = "" if key[2] else "¬"
    return f"{prefix}{key[0]}/{key[1]}"


@dataclass(frozen=True)
class Sort:
    """One argument position's abstract value.

    ``values`` is a finite enumeration of the ground terms the position
    can take (``frozenset()`` = ⊥, nothing derivable binds it).  When
    ``values`` is None the sort is infinite-or-widened: any ground term
    of depth ≤ ``depth`` (``depth=None`` = ⊤, any term at all).
    """

    values: Optional[frozenset[Term]] = frozenset()
    depth: Optional[int] = None

    @classmethod
    def bottom(cls) -> "Sort":
        return cls(frozenset(), None)

    @classmethod
    def top(cls) -> "Sort":
        return cls(None, None)

    @classmethod
    def of(cls, terms: Iterable[Term]) -> "Sort":
        values = frozenset(terms)
        if len(values) > VALUE_CAP:
            return cls(None, max(term_depth(t) for t in values))
        return cls(values, None)

    @property
    def is_bottom(self) -> bool:
        return self.values is not None and not self.values

    @property
    def is_finite(self) -> bool:
        return self.values is not None

    def depth_bound(self) -> Optional[int]:
        """An upper bound on the depth of admitted terms (None = ⊤)."""
        if self.values is None:
            return self.depth
        if not self.values:
            return 0
        return max(term_depth(t) for t in self.values)

    def admits(self, term: Term) -> bool:
        """Could a ground term occur at this position?"""
        if self.values is not None:
            return term in self.values
        if self.depth is None:
            return True
        return term_depth(term) <= self.depth

    def join(self, other: "Sort") -> "Sort":
        if self.is_bottom:
            return other
        if other.is_bottom:
            return self
        if self.values is not None and other.values is not None:
            union = self.values | other.values
            if len(union) <= VALUE_CAP:
                return Sort(union, None)
            return Sort(None, max(term_depth(t) for t in union))
        a, b = self.depth_bound(), other.depth_bound()
        depth = None if a is None or b is None else max(a, b)
        return Sort(None, depth)

    def meet(self, other: "Sort") -> "Sort":
        if self.values is not None and other.values is not None:
            return Sort(self.values & other.values, None)
        if self.values is not None:
            return Sort(frozenset(t for t in self.values if other.admits(t)), None)
        if other.values is not None:
            return Sort(frozenset(t for t in other.values if self.admits(t)), None)
        if self.depth is None:
            return other
        if other.depth is None:
            return self
        return Sort(None, min(self.depth, other.depth))

    def __str__(self) -> str:
        if self.values is not None:
            if not self.values:
                return "⊥"
            shown = sorted(map(str, self.values))
            if len(shown) > 6:
                shown = shown[:6] + [f"… ({len(self.values)} terms)"]
            return "{" + ", ".join(shown) + "}"
        if self.depth is None:
            return "⊤"
        return f"⊤(depth≤{self.depth})"


@dataclass(frozen=True)
class CardInterval:
    """Bounds on the relation size in the least model: ``lo ≤ |R| ≤ hi``
    (``hi=None`` = unbounded)."""

    lo: int = 0
    hi: Optional[int] = None

    @property
    def empty(self) -> bool:
        return self.hi == 0

    @property
    def singleton(self) -> bool:
        return self.hi == 1

    def __str__(self) -> str:
        hi = "∞" if self.hi is None else str(self.hi)
        return f"[{self.lo}, {hi}]"


@dataclass(frozen=True)
class PredicateFacts:
    """Everything inferred about one signed predicate."""

    key: Signed
    derivable: bool
    sorts: tuple[Sort, ...]
    modes: tuple[str, ...]
    card: CardInterval
    recursive: bool

    @property
    def name(self) -> str:
        return signed_name(self.key)

    def depth_bound(self) -> Optional[int]:
        """Bound on the term depth of any argument (None = unbounded)."""
        bound = 0
        for sort in self.sorts:
            d = sort.depth_bound()
            if d is None:
                return None
            bound = max(bound, d)
        return bound

    def admits(self, literal: Literal) -> bool:
        """Could this ground literal be derivable?"""
        if not self.derivable:
            return False
        return all(s.admits(t) for s, t in zip(self.sorts, literal.args))

    def to_dict(self) -> dict[str, object]:
        return {
            "predicate": self.name,
            "derivable": self.derivable,
            "sorts": [str(s) for s in self.sorts],
            "modes": "".join(self.modes),
            "cardinality": {"lo": self.card.lo, "hi": self.card.hi},
            "recursive": self.recursive,
        }


@dataclass(frozen=True)
class RuleRestriction:
    """The grounder-facing result for one prune-safe rule: either the
    whole rule is statically dead, or each variable with a finite
    inferred domain is listed (unlisted variables enumerate the full
    universe)."""

    dead: bool
    domains: Mapping[Variable, tuple[Term, ...]]


class AbstractAnalysis:
    """The converged abstract interpretation of a rule set.

    Build via :func:`analyze_rules` / :func:`analyze_view` /
    :func:`analyze_whole_program`.
    """

    def __init__(
        self,
        rules: Sequence[Rule],
        universe: Optional[HerbrandUniverse] = None,
        edb: Iterable[object] = (),
    ) -> None:
        self.universe = universe
        self._rules = tuple(rules)
        self._edb_sizes: dict[Signed, int] = {}
        self._heads: set[Signed] = set()
        self._derivable: dict[Signed, bool] = {}
        self._sorts: dict[Signed, list[Sort]] = {}
        self._free: dict[Signed, list[bool]] = {}
        self._recursive: set[Signed] = set()
        self._cards: dict[Signed, CardInterval] = {}
        self._widenings_sort = 0
        self._widenings_depth = 0
        self.rounds = 0
        self._seed_edb(edb)
        self._run()
        self._finish_cards()

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def _ensure(self, key: Signed) -> None:
        if key not in self._sorts:
            self._sorts[key] = [Sort.bottom() for _ in range(key[1])]
            self._free[key] = [False] * key[1]
            self._derivable[key] = False

    def _seed_edb(self, edb: Iterable[object]) -> None:
        """Seed base relations (objects with ``name``/``arity``/``rows``)
        as derivable ground facts with exact cardinalities — the Datalog
        engine's EDB side."""
        for relation in edb:
            key = (relation.name, relation.arity, True)  # type: ignore[attr-defined]
            self._ensure(key)
            rows = relation.rows  # type: ignore[attr-defined]
            self._edb_sizes[key] = len(rows)
            if rows:
                self._derivable[key] = True
            for i in range(key[1]):
                column = Sort.of(row[i] for row in rows)
                self._sorts[key][i] = self._sorts[key][i].join(column)

    # ------------------------------------------------------------------
    # The fixpoint
    # ------------------------------------------------------------------
    def _run(self) -> None:
        by_head: dict[Signed, list[Rule]] = {}
        edges: set[tuple[Signed, Signed]] = set()
        for r in self._rules:
            head = _signed(r.head)
            self._ensure(head)
            self._heads.add(head)
            by_head.setdefault(head, []).append(r)
            for l in r.body_literals():
                key = _signed(l)
                self._ensure(key)
                # Tarjan emits sink SCCs first, so orient edges
                # head → body to get callees before callers.
                edges.add((head, key))
        self._rules_by_head = by_head
        sccs = strongly_connected_components(sorted(self._sorts), edges)
        index = {key: i for i, scc in enumerate(sccs) for key in scc}
        for src, dst in edges:
            if index[src] == index[dst]:
                self._recursive.update({src, dst} & set(by_head))
        for scc in sccs:
            if len(scc) > 1:
                self._recursive.update(scc & set(by_head))
        obs = get_instrumentation()
        # SCCs arrive callees-first, so each SCC sees converged inputs.
        for scc in sccs:
            scc_rules = [r for key in sorted(scc) for r in by_head.get(key, ())]
            if not scc_rules:
                continue
            self._iterate(scc_rules)
        if obs.enabled:
            obs.count("analysis.sccs", len(sccs))
            obs.count("analysis.rounds", self.rounds)
            obs.count("analysis.widenings.sort", self._widenings_sort)
            obs.count("analysis.widenings.depth", self._widenings_depth)

    def _iterate(self, scc_rules: Sequence[Rule]) -> None:
        round_no = 0
        changed = True
        while changed:
            changed = False
            round_no += 1
            self.rounds += 1
            widen = round_no >= WIDEN_AFTER
            for r in scc_rules:
                if self._apply(r, widen=widen):
                    changed = True

    def _apply(self, r: Rule, widen: bool) -> bool:
        env = self._env_for(r)
        if env is None:
            return False
        key = _signed(r.head)
        changed = False
        if not self._derivable[key]:
            self._derivable[key] = True
            changed = True
        sorts = self._sorts[key]
        free = self._free[key]
        for i, arg in enumerate(r.head.args):
            if arg.variables() - env.keys() and not free[i]:
                free[i] = True
                changed = True
            contribution = self._eval_term(arg, env)
            joined = sorts[i].join(contribution)
            old = sorts[i]
            if joined == old:
                continue
            if old.is_finite and not joined.is_finite:
                self._widenings_sort += 1
            if widen and not joined.is_finite and not old.is_finite:
                # The depth bound grew on a recursive SCC: jump to ⊤.
                old_d, new_d = old.depth_bound(), joined.depth_bound()
                if old_d is None or new_d is None or new_d > old_d:
                    joined = Sort.top()
                    self._widenings_depth += 1
            sorts[i] = joined
            changed = True
        return changed

    def _env_for(self, r: Rule) -> Optional[dict[Variable, Sort]]:
        """Variable sorts under which the rule body is abstractly
        satisfiable; None when it provably is not."""
        env: dict[Variable, Sort] = {}
        for l in r.body_literals():
            key = _signed(l)
            if not self._derivable.get(key, False):
                return None
            sorts = self._sorts[key]
            for i, arg in enumerate(l.args):
                if isinstance(arg, Variable):
                    current = env.get(arg)
                    env[arg] = (
                        sorts[i] if current is None else current.meet(sorts[i])
                    )
                elif arg.is_ground and not sorts[i].admits(arg):
                    return None
                # Non-ground compound arguments are not inverted: no
                # refinement, no rejection (sound, less precise).
        for guard in r.guards():
            variables = guard.variables()
            if len(variables) != 1:
                continue
            (v,) = variables
            domain = env.get(v)
            if domain is None or not domain.is_finite:
                continue
            env[v] = Sort(
                frozenset(
                    t
                    for t in domain.values or ()
                    if self._guard_admits(guard, v, t)
                ),
                None,
            )
        if any(s.is_bottom for s in env.values()):
            return None
        return env

    @staticmethod
    def _guard_admits(guard: Comparison, v: Variable, term: Term) -> bool:
        """Mirror the grounder: a guard that cannot be evaluated drops
        the instance, so exclusion on error is exact, not just sound."""
        try:
            return guard.holds({v: term})
        except GroundingError:
            return False

    def _eval_term(self, t: Term, env: Mapping[Variable, Sort]) -> Sort:
        if isinstance(t, Variable):
            return env.get(t, Sort.top())
        if isinstance(t, Constant):
            return Sort(frozenset({t}), None)
        assert isinstance(t, Compound)
        subs = [self._eval_term(a, env) for a in t.args]
        if all(s.is_finite for s in subs):
            size = 1
            for s in subs:
                size *= len(s.values or ())
            if 0 < size <= VALUE_CAP:
                return Sort(
                    frozenset(
                        Compound(t.functor, combo)
                        for combo in itertools.product(
                            *(sorted(s.values or (), key=str) for s in subs)
                        )
                    ),
                    None,
                )
            if size == 0:
                return Sort.bottom()
        depths = [s.depth_bound() for s in subs]
        if any(d is None for d in depths):
            return Sort(None, None)
        return Sort(None, 1 + max([d for d in depths if d is not None], default=0))

    # ------------------------------------------------------------------
    # Cardinalities (after the sorts converge)
    # ------------------------------------------------------------------
    def _sort_size(self, sort: Sort) -> Optional[int]:
        if sort.values is not None:
            return len(sort.values)
        if self.universe is None:
            return None
        if sort.depth is None:
            return len(self.universe.terms)
        bound = sort.depth
        return sum(1 for t in self.universe.terms if term_depth(t) <= bound)

    def _instance_bound(self, r: Rule) -> Optional[int]:
        """Bound on the distinct head instances one rule contributes."""
        env = self._env_for(r)
        if env is None:
            return 0
        head_vars = r.head.variables()
        if not head_vars:
            return 1
        bound = 1
        for v in sorted(head_vars, key=str):
            size = self._sort_size(env.get(v, Sort.top()))
            if size is None:
                return None
            bound *= size
        return bound

    def _fact_lo(self, key: Signed) -> int:
        """Facts no status can suppress: guard-free fact rules for an
        uncontradicted signed predicate.  A contradicted predicate's
        facts can be overruled or defeated (Figure 1's ``fly(penguin)``),
        so they prove nothing."""
        if self._heads_complement(key):
            return 0
        lo = self._edb_sizes.get(key, 0)
        ground_heads: set[Literal] = set()
        for r in self._rules_by_head.get(key, ()):
            if r.body_literals() or r.guards():
                continue
            if r.head.is_ground:
                ground_heads.add(r.head)
            elif self.universe is not None and self.universe.terms:
                # A non-ground fact (the CWA idiom ¬p(X).) grounds to one
                # distinct head per assignment of its head variables.
                lo = max(lo, len(self.universe.terms) ** len(r.head.variables()))
        return max(lo, len(ground_heads))

    def _heads_complement(self, key: Signed) -> bool:
        return _complement(key) in self._heads or _complement(key) in self._edb_sizes

    def _finish_cards(self) -> None:
        for key in self._sorts:
            if not self._derivable[key]:
                self._cards[key] = CardInterval(0, 0)
                continue
            if key[1] == 0:
                self._cards[key] = CardInterval(self._fact_lo(key), 1)
                continue
            product: Optional[int] = 1
            for sort in self._sorts[key]:
                size = self._sort_size(sort)
                if size is None:
                    product = None
                    break
                product *= size
            total: Optional[int] = self._edb_sizes.get(key, 0)
            for r in self._rules_by_head.get(key, ()):
                contribution = self._instance_bound(r)
                if contribution is None:
                    total = None
                    break
                assert total is not None
                total += contribution
            if product is None:
                hi = total
            elif total is None:
                hi = product
            else:
                hi = min(product, total)
            self._cards[key] = CardInterval(self._fact_lo(key), hi)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def keys(self) -> tuple[Signed, ...]:
        return tuple(sorted(self._sorts))

    @property
    def signed_heads(self) -> frozenset[Signed]:
        """Signed predicates headed by at least one rule (or EDB fed)."""
        return frozenset(self._heads) | frozenset(self._edb_sizes)

    def fact_for(self, name: str, arity: int, positive: bool = True) -> PredicateFacts:
        key = (name, arity, positive)
        if key not in self._sorts:
            return PredicateFacts(
                key, False, tuple(Sort.bottom() for _ in range(arity)),
                ("b",) * arity, CardInterval(0, 0), False,
            )
        return PredicateFacts(
            key,
            self._derivable[key],
            tuple(self._sorts[key]),
            tuple("f" if f else "b" for f in self._free[key]),
            self._cards[key],
            key in self._recursive,
        )

    def literal_fact(self, literal: Literal) -> PredicateFacts:
        return self.fact_for(literal.predicate, len(literal.args), literal.positive)

    def proven_empty(self, literal: Literal) -> bool:
        """Is the literal's signed predicate underivable in the least
        model of any view drawn from the analyzed rules?"""
        return not self._derivable.get(_signed(literal), False)

    def admits(self, literal: Literal) -> bool:
        """Could this ground literal appear in a least model?"""
        return self.literal_fact(literal).admits(literal)

    def prune_safe(self, r: Rule) -> bool:
        """True when dropping underivable instances of ``r`` cannot
        change any least model: no rule heads the complement of ``r``'s
        head, so no instance of ``r`` can ever overrule or defeat
        another rule (statuses consult only complementary heads)."""
        return not self._heads_complement(_signed(r.head))

    def restriction(self, r: Rule) -> Optional[RuleRestriction]:
        """What the grounder may skip for this rule: None when pruning
        is unsafe, otherwise dead-rule status plus finite variable
        domains."""
        if not self.prune_safe(r):
            return None
        env = self._env_for(r)
        if env is None:
            return RuleRestriction(True, {})
        domains = {
            v: tuple(sorted(s.values, key=str))
            for v, s in env.items()
            if s.values is not None
        }
        return RuleRestriction(False, domains)

    def dead_body_literal(self, r: Rule) -> Optional[Literal]:
        """A body literal whose signed predicate is proven empty, if any."""
        for l in r.body_literals():
            if self.proven_empty(l):
                return l
        return None

    def unmatchable_argument(self, r: Rule) -> Optional[tuple[Literal, int, Term]]:
        """A ground body argument outside the inferred sort of a
        *derivable* predicate — the call site can never match."""
        for l in r.body_literals():
            key = _signed(l)
            if not self._derivable.get(key, False):
                continue
            sorts = self._sorts.get(key)
            if sorts is None:
                continue
            for i, arg in enumerate(l.args):
                if arg.is_ground and not sorts[i].admits(arg):
                    return l, i, arg
        return None

    def rule_dead(self, r: Rule) -> bool:
        """Can the rule's body ever hold in a least model?"""
        return self._env_for(r) is None

    def depth_bounded(self, literal: Literal) -> bool:
        """True when every argument sort of the literal's signed
        predicate converged to a finite term-depth bound — recursion
        through it cannot grow terms past that depth."""
        return self.literal_fact(literal).depth_bound() is not None

    def to_dict(self) -> dict[str, object]:
        return {
            "universe_terms": None if self.universe is None else len(self.universe.terms),
            "predicates": [
                self.fact_for(*key).to_dict() for key in self.keys
            ],
        }

    def render(self) -> str:
        lines = []
        for key in self.keys:
            fact = self.fact_for(*key)
            flags = []
            if not fact.derivable:
                flags.append("empty")
            if fact.recursive:
                flags.append("recursive")
            suffix = f" ({', '.join(flags)})" if flags else ""
            sorts = ", ".join(map(str, fact.sorts)) if fact.sorts else "—"
            lines.append(
                f"  {fact.name}: card {fact.card}, modes "
                f"{''.join(fact.modes) or '—'}, sorts [{sorts}]{suffix}"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------


def analyze_rules(
    rules: Iterable[Rule],
    universe: Optional[HerbrandUniverse] = None,
    edb: Iterable[object] = (),
) -> AbstractAnalysis:
    """Analyze a plain rule set (one component, optionally with EDB
    relations — the Datalog engine's shape)."""
    obs = get_instrumentation()
    rules = tuple(rules)
    with obs.span("analysis.abstract", rules=len(rules)):
        return AbstractAnalysis(rules, universe=universe, edb=edb)


def analyze_view(
    program: OrderedProgram,
    component: str,
    max_depth: Optional[int] = None,
) -> AbstractAnalysis:
    """Analyze the view ``C*`` — exactly the rules the grounder sees,
    over the view's own Herbrand universe."""
    rules = tuple(r for _, r in program.visible_rules(component))
    star = Component("_star", rules)
    universe: Optional[HerbrandUniverse]
    try:
        universe = universe_of(star, max_depth=max_depth)
    except GroundingError:
        universe = None
    obs = get_instrumentation()
    with obs.span("analysis.abstract", rules=len(rules), view=component):
        return AbstractAnalysis(rules, universe=universe)


def analyze_whole_program(
    program: OrderedProgram, max_depth: Optional[int] = None
) -> AbstractAnalysis:
    """Analyze every rule of the program at once.

    Every view's rules are a subset of the whole program's, and the
    abstract derivability over-approximation is monotone in the rule
    set, so *negative* whole-program claims (a predicate is underivable,
    a call site never matches) are sound for every component view — the
    form the ``olp check`` diagnostics need.  Per-view ``lo`` bounds are
    not sound from here; use :func:`analyze_view` for those.
    """
    rules = tuple(r for comp in program.components() for r in comp.rules)
    star = Component("_star", rules)
    universe: Optional[HerbrandUniverse]
    try:
        universe = universe_of(star, max_depth=max_depth)
    except GroundingError:
        universe = None
    obs = get_instrumentation()
    with obs.span("analysis.abstract", rules=len(rules)):
        return AbstractAnalysis(rules, universe=universe)
