"""Static analysis over the *non-ground* program: the predicate
dependency graph (PDG) and a battery of authoring checks.

Everything in :mod:`repro.analysis.lint` and
:mod:`repro.analysis.conflicts` runs after grounding and solving, so
authoring mistakes only surface as runtime failures or silently
``undefined`` atoms.  This module works purely on the program text:

* :func:`build_pdg` constructs a graph whose nodes are predicate
  signatures ``(name, arity)`` annotated with the components that define
  and use them, and whose edges carry a polarity — ``POSITIVE`` body
  dependency, ``BLOCKING`` (negative body literal) dependency, or a
  ``CONTRADICTION`` between a positive and a negative head — together
  with the order relation (below / above / equal / incomparable) between
  the two components involved.
* :func:`analyze_program` runs the checks and returns a
  :class:`StaticReport` of :class:`Diagnostic` records.
* :func:`classify_view` labels each component view as ``positive``,
  ``stratified``, ``locally-stratified`` or ``unstratified`` (Section 4's
  negative-program reduction); the first two labels make a
  single-component seminegative view *routable* to the classical
  stratified backend (see :func:`repro.classical.stratified_least_model`
  and the ``strategy`` parameter of
  :class:`repro.core.semantics.OrderedSemantics`).

A contradiction only violates stratification when the order does *not*
resolve it: Figure 1's ``fly``/``¬fly`` clash between comparable
components is the paper's intended override and stays stratified, while
Figure 2's clash between incomparable components (the *defeat* trap) is
a genuine nonmonotonic loop and classifies as unstratified.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterable, Mapping, Optional, Sequence

from ..classical.stratified import (
    dependency_graph,
    stratification,
    strongly_connected_components,
)
from ..lang.literals import Literal
from ..lang.poset import PartialOrder
from ..lang.program import OrderedProgram
from ..lang.rules import Rule
from ..lang.terms import Compound, walk_terms
from ..obs import get_instrumentation
from .abstract import AbstractAnalysis, analyze_whole_program, signed_name

__all__ = [
    "Severity",
    "Diagnostic",
    "EdgeKind",
    "OrderRelation",
    "relation_between",
    "PDGNode",
    "PDGEdge",
    "PredicateDependencyGraph",
    "build_pdg",
    "ViewClassification",
    "classify_view",
    "StaticReport",
    "analyze_program",
    "DIAGNOSTIC_CODES",
]

Signature = tuple[str, int]

#: Every diagnostic code the analyzer can emit, with its severity.
DIAGNOSTIC_CODES: Mapping[str, str] = {
    "unsafe-rule": "warning",
    "undefined-predicate": "warning",
    "arity-clash": "warning",
    "unused-head": "info",
    "unreachable-component": "warning",
    "potential-defeat": "info",
    "function-growth": "warning",
    "stratification": "info",
    "type-clash": "warning",
    "provably-empty": "info",
    "dead-rule": "info",
    "demand-ineligible": "info",
}


class Severity(enum.IntEnum):
    """Diagnostic severity; comparisons follow the integer order."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @classmethod
    def parse(cls, name: str) -> "Severity":
        try:
            return cls[name.upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {name!r}; expected one of "
                f"{', '.join(s.name.lower() for s in cls)}"
            ) from None

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a stable machine-readable ``code``, a severity, a
    human-readable location (component / rule / predicate), the message
    and a suggested fix."""

    code: str
    severity: Severity
    location: str
    message: str
    fix_hint: str = ""

    def to_dict(self) -> dict[str, object]:
        return {
            "code": self.code,
            "severity": str(self.severity),
            "location": self.location,
            "message": self.message,
            "fix_hint": self.fix_hint,
        }

    def __str__(self) -> str:
        text = f"[{self.severity}] {self.code} at {self.location}: {self.message}"
        if self.fix_hint:
            text += f" (fix: {self.fix_hint})"
        return text


class EdgeKind(enum.Enum):
    """Polarity of a PDG edge."""

    POSITIVE = "positive"  # positive body literal -> head
    BLOCKING = "blocking"  # negative body literal -> head
    CONTRADICTION = "contradiction"  # positive head vs negative head

    def __str__(self) -> str:
        return self.value


class OrderRelation(enum.Enum):
    """How the source component of an edge relates to the target
    component in the program order (lower = more specific)."""

    BELOW = "below"
    ABOVE = "above"
    EQUAL = "equal"
    INCOMPARABLE = "incomparable"

    def __str__(self) -> str:
        return self.value


def relation_between(order: PartialOrder, a: str, b: str) -> OrderRelation:
    """The order relation of component ``a`` relative to component ``b``."""
    if a == b:
        return OrderRelation.EQUAL
    if order.less(a, b):
        return OrderRelation.BELOW
    if order.less(b, a):
        return OrderRelation.ABOVE
    return OrderRelation.INCOMPARABLE


@dataclass(frozen=True)
class PDGNode:
    """A predicate signature with its defining and using components."""

    signature: Signature
    positive_components: frozenset[str]  # components heading it positively
    negative_components: frozenset[str]  # components heading it negatively
    using_components: frozenset[str]  # components with a body occurrence

    @property
    def defining_components(self) -> frozenset[str]:
        return self.positive_components | self.negative_components

    @property
    def contradicted(self) -> bool:
        """True when the predicate is headed with both signs somewhere."""
        return bool(self.positive_components and self.negative_components)

    @property
    def name(self) -> str:
        return f"{self.signature[0]}/{self.signature[1]}"


@dataclass(frozen=True)
class PDGEdge:
    """A dependency or contradiction between two signatures.

    For body edges the source is the body signature (one edge per
    defining component of it), the target is the head signature, and
    ``relation`` relates the defining component to the rule's component.
    For contradiction edges source and target are the same signature;
    ``source_component`` heads it positively, ``target_component``
    negatively, and ``relation`` relates the two.
    """

    kind: EdgeKind
    source: Signature
    target: Signature
    source_component: str
    target_component: str
    relation: OrderRelation


@dataclass(frozen=True)
class PredicateDependencyGraph:
    """The PDG plus its Tarjan condensation."""

    nodes: Mapping[Signature, PDGNode]
    edges: frozenset[PDGEdge]
    order: PartialOrder

    def dependency_edges(self) -> frozenset[PDGEdge]:
        return frozenset(
            e for e in self.edges if e.kind is not EdgeKind.CONTRADICTION
        )

    def contradiction_edges(self) -> frozenset[PDGEdge]:
        return frozenset(
            e for e in self.edges if e.kind is EdgeKind.CONTRADICTION
        )

    @cached_property
    def sccs(self) -> tuple[frozenset[Signature], ...]:
        """Strongly connected components over the dependency (positive +
        blocking) edges, in reverse topological order."""
        pairs = {(e.source, e.target) for e in self.dependency_edges()}
        return tuple(strongly_connected_components(self.nodes, pairs))

    @cached_property
    def scc_index(self) -> Mapping[Signature, int]:
        return {
            sig: i for i, scc in enumerate(self.sccs) for sig in scc
        }

    @cached_property
    def recursive_signatures(self) -> frozenset[Signature]:
        """Signatures on a dependency cycle (incl. self-recursion)."""
        loops = {
            e.source
            for e in self.dependency_edges()
            if self.scc_index[e.source] == self.scc_index[e.target]
        }
        multi = {
            sig for scc in self.sccs if len(scc) > 1 for sig in scc
        }
        return frozenset(loops | multi)

    def condensation(self) -> frozenset[tuple[int, int]]:
        """Edges between SCC indices (dependency edges only)."""
        return frozenset(
            (self.scc_index[e.source], self.scc_index[e.target])
            for e in self.dependency_edges()
            if self.scc_index[e.source] != self.scc_index[e.target]
        )


def build_pdg(program: OrderedProgram) -> PredicateDependencyGraph:
    """Build the predicate dependency graph of an ordered program."""
    positive_heads: dict[Signature, set[str]] = {}
    negative_heads: dict[Signature, set[str]] = {}
    users: dict[Signature, set[str]] = {}
    order = program.order
    edges: set[PDGEdge] = set()

    components = sorted(program.components(), key=lambda c: c.name)
    for comp in components:
        for r in comp.rules:
            head_sig = r.head.signature
            bucket = positive_heads if r.head.positive else negative_heads
            bucket.setdefault(head_sig, set()).add(comp.name)
            positive_heads.setdefault(head_sig, set())
            negative_heads.setdefault(head_sig, set())
            users.setdefault(head_sig, set())
            for l in r.body_literals():
                users.setdefault(l.signature, set()).add(comp.name)
                positive_heads.setdefault(l.signature, set())
                negative_heads.setdefault(l.signature, set())

    # Body edges: one per (defining component of the body signature,
    # using rule's component).  An undefined body signature keeps a
    # single self-relative edge so the dependency structure survives.
    for comp in components:
        for r in comp.rules:
            head_sig = r.head.signature
            for l in r.body_literals():
                kind = EdgeKind.POSITIVE if l.positive else EdgeKind.BLOCKING
                sig = l.signature
                definers = positive_heads[sig] | negative_heads[sig]
                for definer in definers or {comp.name}:
                    edges.add(
                        PDGEdge(
                            kind=kind,
                            source=sig,
                            target=head_sig,
                            source_component=definer,
                            target_component=comp.name,
                            relation=relation_between(order, definer, comp.name),
                        )
                    )

    # Contradiction edges: a signature headed positively in one
    # component and negatively in another (or the same).
    for sig in positive_heads:
        for cp in positive_heads[sig]:
            for cn in negative_heads[sig]:
                edges.add(
                    PDGEdge(
                        kind=EdgeKind.CONTRADICTION,
                        source=sig,
                        target=sig,
                        source_component=cp,
                        target_component=cn,
                        relation=relation_between(order, cp, cn),
                    )
                )

    nodes = {
        sig: PDGNode(
            signature=sig,
            positive_components=frozenset(positive_heads[sig]),
            negative_components=frozenset(negative_heads[sig]),
            using_components=frozenset(users[sig]),
        )
        for sig in positive_heads
    }
    return PredicateDependencyGraph(nodes, frozenset(edges), order)


# ----------------------------------------------------------------------
# Stratification classification (Section 4)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ViewClassification:
    """The classification of one component view ``C*``."""

    component: str
    single_component: bool
    seminegative: bool
    classification: str  # positive | stratified | locally-stratified | unstratified
    strata: Optional[Mapping[str, int]] = field(default=None, compare=False)

    @property
    def routable(self) -> bool:
        """True when the view can be routed to the classical stratified
        backend: a single-component seminegative view that is positive
        or stratified (no contradictions, no overruling/defeating, so
        the ordered least model is the stratified Horn least model)."""
        return self.single_component and self.seminegative and (
            self.classification in ("positive", "stratified")
        )

    @property
    def ineligibility(self) -> Optional[str]:
        """Why the view is not routable (None when it is)."""
        if self.routable:
            return None
        if not self.single_component:
            return "the view spans more than one component"
        if not self.seminegative:
            return "the view contains negative-head rules"
        return f"the view is {self.classification}"


def _unresolved_contradiction_loops(
    rules_by_component: Sequence[tuple[str, Rule]], order: PartialOrder
) -> frozenset[str]:
    """Predicates headed with both signs by components the order does
    not relate (equal or incomparable) — the Figure 2 defeat pattern.
    Contradictions between comparable components are resolved by
    overruling and do not break stratification."""
    positive: dict[str, set[str]] = {}
    negative: dict[str, set[str]] = {}
    for comp, r in rules_by_component:
        bucket = positive if r.head.positive else negative
        bucket.setdefault(r.head.predicate, set()).add(comp)
    loops = set()
    for pred in positive.keys() & negative.keys():
        for cp in positive[pred]:
            for cn in negative[pred]:
                if relation_between(order, cp, cn) in (
                    OrderRelation.EQUAL,
                    OrderRelation.INCOMPARABLE,
                ):
                    loops.add(pred)
    return frozenset(loops)


def _is_stratified_with_loops(
    rules: Sequence[Rule], loops: Iterable[str]
) -> bool:
    """Classical stratification test, with extra negative self-loops for
    unresolved contradictions."""
    graph = dependency_graph(rules)
    negative = set(graph.negative_edges) | {(p, p) for p in loops}
    nodes = graph.predicates | set(loops)
    sccs = strongly_connected_components(
        nodes, graph.positive_edges | frozenset(negative)
    )
    member = {p: i for i, scc in enumerate(sccs) for p in scc}
    return all(member[a] != member[b] for a, b in negative)


def _is_locally_stratified(
    rules_by_component: Sequence[tuple[str, Rule]],
    order: PartialOrder,
) -> Optional[bool]:
    """Atom-level stratification for ground views; None when the view is
    not ground (the atom graph would be infinite in general)."""
    if not all(r.is_ground for _, r in rules_by_component):
        return None
    positive_atoms: dict[str, set[str]] = {}
    negative_atoms: dict[str, set[str]] = {}
    pos_edges: set[tuple[str, str]] = set()
    neg_edges: set[tuple[str, str]] = set()
    atoms: set[str] = set()
    for comp, r in rules_by_component:
        head = str(r.head.atom)
        atoms.add(head)
        bucket = positive_atoms if r.head.positive else negative_atoms
        bucket.setdefault(head, set()).add(comp)
        for l in r.body_literals():
            body = str(l.atom)
            atoms.add(body)
            (pos_edges if l.positive else neg_edges).add((body, head))
    for atom in positive_atoms.keys() & negative_atoms.keys():
        for cp in positive_atoms[atom]:
            for cn in negative_atoms[atom]:
                if relation_between(order, cp, cn) in (
                    OrderRelation.EQUAL,
                    OrderRelation.INCOMPARABLE,
                ):
                    neg_edges.add((atom, atom))
    sccs = strongly_connected_components(atoms, pos_edges | neg_edges)
    member = {a: i for i, scc in enumerate(sccs) for a in scc}
    return all(member[a] != member[b] for a, b in neg_edges)


def classify_view(program: OrderedProgram, component: str) -> ViewClassification:
    """Classify the view ``C*`` of ``component`` for routing purposes."""
    visible = program.visible_components(component)
    tagged = tuple(
        (comp.name, r) for comp in visible for r in comp.rules
    )
    rules = tuple(r for _, r in tagged)
    single = len(visible) == 1
    seminegative = all(r.is_seminegative for r in rules)
    positive = all(r.is_positive for r in rules)
    loops = _unresolved_contradiction_loops(tagged, program.order)
    stratified = _is_stratified_with_loops(rules, loops)

    strata: Optional[Mapping[str, int]] = None
    if positive:
        label = "positive"
    elif stratified:
        label = "stratified"
    elif _is_locally_stratified(tagged, program.order):
        label = "locally-stratified"
    else:
        label = "unstratified"
    if seminegative and label in ("positive", "stratified"):
        strata = stratification(rules)
    return ViewClassification(
        component=component,
        single_component=single,
        seminegative=seminegative,
        classification=label,
        strata=strata,
    )


# ----------------------------------------------------------------------
# Checks
# ----------------------------------------------------------------------


def _check_safety(program: OrderedProgram) -> list[Diagnostic]:
    """Range restriction: every variable of a rule must be bound by a
    positive body literal.  Negative-head non-ground facts are exempt —
    that is the closed-world idiom the reductions emit (``¬p(X).``)."""
    out = []
    for comp in sorted(program.components(), key=lambda c: c.name):
        for r in comp.rules:
            if r.is_fact and r.has_negative_head:
                continue
            bound = frozenset().union(
                *(l.variables() for l in r.body_literals() if l.positive),
                frozenset(),
            )
            unbound = sorted(v.name for v in r.variables() - bound)
            if unbound:
                names = ", ".join(unbound)
                out.append(
                    Diagnostic(
                        code="unsafe-rule",
                        severity=Severity.WARNING,
                        location=f"component {comp.name}: {r}",
                        message=(
                            f"variable(s) {names} are not bound by any "
                            "positive body literal, so the rule is not "
                            "range-restricted and grounding falls back to "
                            "the full Herbrand universe"
                        ),
                        fix_hint=(
                            f"add a positive body literal (a domain "
                            f"predicate) binding {names}, or ground the rule"
                        ),
                    )
                )
    return out


def _visible_definitions(
    program: OrderedProgram, pdg: PredicateDependencyGraph
) -> Mapping[str, frozenset[Signature]]:
    """For each component X, the signatures headed somewhere in at least
    one view that contains X — i.e. in ``upset(C)`` for some
    ``C <= X``.  A body signature of X outside this set can never be
    derived in any evaluation that runs X's rules."""
    order = program.order
    heads: dict[str, frozenset[Signature]] = {}
    for comp in program.components():
        heads[comp.name] = frozenset(
            l.signature for l in comp.head_literals()
        )
    view_heads = {
        name: frozenset().union(*(heads[c] for c in order.upset(name)))
        for name in heads
    }
    return {
        name: frozenset().union(
            *(view_heads[c] for c in order.downset(name))
        )
        for name in heads
    }


def _check_undefined(
    program: OrderedProgram, pdg: PredicateDependencyGraph
) -> list[Diagnostic]:
    out = []
    visible = _visible_definitions(program, pdg)
    for comp in sorted(program.components(), key=lambda c: c.name):
        reported: set[Signature] = set()
        for r in comp.rules:
            for l in r.body_literals():
                sig = l.signature
                if sig in visible[comp.name] or sig in reported:
                    continue
                reported.add(sig)
                name = f"{sig[0]}/{sig[1]}"
                definers = pdg.nodes[sig].defining_components
                if definers:
                    where = ", ".join(sorted(definers))
                    detail = (
                        f"it is only headed in {where}, which no view "
                        f"containing {comp.name} can see"
                    )
                else:
                    detail = "it is headed nowhere in the program"
                out.append(
                    Diagnostic(
                        code="undefined-predicate",
                        severity=Severity.WARNING,
                        location=f"component {comp.name}: {r}",
                        message=(
                            f"body predicate {name} is undefined in every "
                            f"view containing component {comp.name}: {detail}"
                        ),
                        fix_hint=(
                            f"add a rule or fact for {name} in a component "
                            f"visible alongside {comp.name}, or remove the "
                            "literal"
                        ),
                    )
                )
    return out


def _check_arity(pdg: PredicateDependencyGraph) -> list[Diagnostic]:
    by_name: dict[str, list[PDGNode]] = {}
    for sig, node in pdg.nodes.items():
        by_name.setdefault(sig[0], []).append(node)
    out = []
    for name in sorted(by_name):
        nodes = by_name[name]
        if len(nodes) < 2:
            continue
        variants = ", ".join(
            n.name for n in sorted(nodes, key=lambda n: n.signature)
        )
        components = sorted(
            frozenset().union(
                *((n.defining_components | n.using_components) for n in nodes)
            )
        )
        out.append(
            Diagnostic(
                code="arity-clash",
                severity=Severity.WARNING,
                location=f"predicate {name}",
                message=(
                    f"predicate {name} is used with conflicting arities "
                    f"({variants}) across components "
                    f"{', '.join(components)}; the variants never unify"
                ),
                fix_hint=(
                    f"pick one arity for {name} or rename one of the "
                    "variants"
                ),
            )
        )
    return out


def _check_unused_heads(pdg: PredicateDependencyGraph) -> list[Diagnostic]:
    out = []
    for sig in sorted(pdg.nodes):
        node = pdg.nodes[sig]
        if not node.defining_components or node.using_components:
            continue
        if node.contradicted:
            # Contradicted predicates are consumed by the conflict
            # machinery (overruling/defeating) even without body uses.
            continue
        where = ", ".join(sorted(node.defining_components))
        out.append(
            Diagnostic(
                code="unused-head",
                severity=Severity.INFO,
                location=f"predicate {node.name} (components {where})",
                message=(
                    f"{node.name} is headed in {where} but never occurs "
                    "in a rule body; it is derived output only"
                ),
                fix_hint=(
                    "reference it in a body, or drop its rules if it is "
                    "not a query target"
                ),
            )
        )
    return out


def _check_unreachable_components(program: OrderedProgram) -> list[Diagnostic]:
    """A component unrelated to every other one, in a program whose
    order is otherwise non-empty, is usually a forgotten declaration:
    no other component's view ``C*`` ever includes it."""
    order = program.order
    if not order.pairs() or len(order) < 2:
        return []
    out = []
    for name in sorted(program.component_names):
        if order.upset(name) == {name} and order.downset(name) == {name}:
            out.append(
                Diagnostic(
                    code="unreachable-component",
                    severity=Severity.WARNING,
                    location=f"component {name}",
                    message=(
                        f"component {name} is unrelated to every other "
                        "component, so no other view includes its rules; "
                        "only querying it directly evaluates them"
                    ),
                    fix_hint=(
                        f"relate {name} to the rest of the program with "
                        f"an order declaration, or remove it"
                    ),
                )
            )
    return out


def _check_potential_defeat(pdg: PredicateDependencyGraph) -> list[Diagnostic]:
    out = []
    seen: set[tuple[Signature, frozenset[str]]] = set()
    for e in sorted(
        pdg.contradiction_edges(),
        key=lambda e: (e.source, e.source_component, e.target_component),
    ):
        if e.relation not in (OrderRelation.EQUAL, OrderRelation.INCOMPARABLE):
            continue
        key = (e.source, frozenset((e.source_component, e.target_component)))
        if key in seen:
            continue
        seen.add(key)
        name = f"{e.source[0]}/{e.source[1]}"
        if e.source_component == e.target_component:
            where = f"within component {e.source_component}"
        else:
            where = (
                f"between incomparable components {e.source_component} "
                f"and {e.target_component}"
            )
        out.append(
            Diagnostic(
                code="potential-defeat",
                severity=Severity.INFO,
                location=f"predicate {name} ({where})",
                message=(
                    f"{name} and ¬{name} are derivable {where}; neither "
                    "side overrules the other, so both rules can defeat "
                    "each other and leave the atom undefined (the paper's "
                    "Figure 2 situation)"
                ),
                fix_hint=(
                    "order the components if one conclusion should win; "
                    "leave as is if the ambiguity is intended"
                ),
            )
        )
    return out


def _check_function_growth(
    program: OrderedProgram,
    pdg: PredicateDependencyGraph,
    abstract: Optional["AbstractAnalysis"] = None,
) -> list[Diagnostic]:
    """A recursive rule whose head buries a variable inside a function
    symbol grows the term depth every round: grounding (and therefore
    the fixpoint) only terminates because of the ``max_depth`` cutoff.

    The syntactic pattern alone over-warns: recursion like
    ``p(f(X)) :- p(X), d(X).`` is depth-bounded when ``d`` holds only
    constants.  When the abstract interpretation proves a finite
    term-depth bound for the head predicate, the warning is suppressed;
    the syntactic heuristic remains the fallback whenever inference
    reaches ⊤."""
    out = []
    for comp in sorted(program.components(), key=lambda c: c.name):
        for r in comp.rules:
            head_sig = r.head.signature
            scc = pdg.scc_index.get(head_sig)
            recursive = head_sig in pdg.recursive_signatures or any(
                pdg.scc_index.get(l.signature) == scc
                for l in r.body_literals()
            )
            if not recursive:
                continue
            growing = sorted(
                {
                    str(t)
                    for arg in r.head.args
                    for t in walk_terms(arg)
                    if isinstance(t, Compound) and not t.is_ground
                }
            )
            if not growing:
                continue
            if (
                abstract is not None
                and abstract.literal_fact(r.head).depth_bound() is not None
            ):
                continue
            terms = ", ".join(growing)
            out.append(
                Diagnostic(
                    code="function-growth",
                    severity=Severity.WARNING,
                    location=f"component {comp.name}: {r}",
                    message=(
                        f"recursive rule builds the term(s) {terms} in its "
                        "head; each round grows the Herbrand universe, so "
                        "grounding only stops at the max-depth cutoff"
                    ),
                    fix_hint=(
                        "bound the recursion with a guard or domain "
                        "predicate, or rely on --max-depth deliberately"
                    ),
                )
            )
    return out


def _check_abstract(
    program: OrderedProgram, abstract: AbstractAnalysis
) -> list[Diagnostic]:
    """Semantic diagnostics from the whole-program abstract
    interpretation (:mod:`repro.analysis.abstract`).

    The abstraction ignores overruling/defeating, so its *negative*
    claims (underivable, never matches) over-approximate every
    component view: a predicate it proves empty is empty in every
    view's least model, making these findings sound program-wide."""
    out = []
    heads = abstract.signed_heads
    # Provably-empty: predicates with rules that can never fire.
    for key in abstract.keys:
        if key not in heads:
            # Body-only signatures are the undefined-predicate check's
            # territory; here we only grade predicates that have rules.
            continue
        fact = abstract.fact_for(*key)
        if fact.derivable:
            continue
        out.append(
            Diagnostic(
                code="provably-empty",
                severity=Severity.INFO,
                location=f"predicate {fact.name}",
                message=(
                    f"{fact.name} has rules but is underivable in every "
                    "component view: no chain of rules can ever establish "
                    "its body"
                ),
                fix_hint=(
                    f"supply facts for the predicates {fact.name} depends "
                    "on, or remove its rules"
                ),
            )
        )
    for comp in sorted(program.components(), key=lambda c: c.name):
        for r in comp.rules:
            # Type-clash: a ground argument at a call site falls outside
            # the inferred sort of a derivable predicate.
            clash = abstract.unmatchable_argument(r)
            if clash is not None:
                literal, position, term = clash
                out.append(
                    Diagnostic(
                        code="type-clash",
                        severity=Severity.WARNING,
                        location=f"component {comp.name}: {r}",
                        message=(
                            f"argument {term} (position {position + 1} of "
                            f"{literal}) lies outside every value "
                            + signed_name(
                                (
                                    literal.predicate,
                                    len(literal.args),
                                    literal.positive,
                                )
                            )
                            + " can take, so the literal never matches"
                        ),
                        fix_hint=(
                            f"check the constant {term} for a typo, or add "
                            "a rule deriving it"
                        ),
                    )
                )
            if r.is_fact or not abstract.rule_dead(r):
                continue
            culprit = abstract.dead_body_literal(r)
            if culprit is not None:
                key = (culprit.predicate, len(culprit.args), culprit.positive)
                if key not in heads:
                    # Headed nowhere: undefined-predicate (positive
                    # literals) already warns; for negative literals the
                    # missing ¬-heads make the rule dead — still ours.
                    if culprit.positive:
                        continue
                reason = f"body literal {culprit} is underivable"
            elif clash is not None:
                reason = "a body argument lies outside its predicate's values"
            else:
                reason = (
                    "its body constraints (sorts and guards) are jointly "
                    "unsatisfiable"
                )
            out.append(
                Diagnostic(
                    code="dead-rule",
                    severity=Severity.INFO,
                    location=f"component {comp.name}: {r}",
                    message=(
                        f"the rule can never fire in any component view: "
                        f"{reason}"
                    ),
                    fix_hint=(
                        "make the body derivable or remove the rule"
                    ),
                )
            )
    return out


def _check_stratification(program: OrderedProgram) -> tuple[
    list[Diagnostic], dict[str, ViewClassification]
]:
    out = []
    views: dict[str, ViewClassification] = {}
    for name in sorted(program.component_names):
        info = classify_view(program, name)
        views[name] = info
        if info.routable:
            note = "routable to the classical stratified backend"
        else:
            note = f"not routable ({info.ineligibility})"
        out.append(
            Diagnostic(
                code="stratification",
                severity=Severity.INFO,
                location=f"view {name}*",
                message=f"the view of component {name} is "
                f"{info.classification}; {note}",
                fix_hint="",
            )
        )
    return out, views


_DEMAND_FIX_HINTS = {
    "unroutable": (
        "demand answering needs a seminegative, positive-or-stratified "
        "view; queries fall back to full materialization"
    ),
    "unsafe-sips": (
        "bind every head and guard variable in a positive body literal "
        "so sideways information passing can order the joins"
    ),
    "function-growth": (
        "compound terms in rule heads force depth-bounded grounding; "
        "query such views with the materializing strategies"
    ),
}


def _check_demand(program: OrderedProgram) -> list[Diagnostic]:
    """Views no goal can ever take the demand path against
    (``strategy="demand"`` silently falls back to materialization).

    Informational: programs that never use goal-directed queries lose
    nothing.  The import is deferred because :mod:`repro.query` builds
    on this module's :func:`classify_view`.
    """
    from ..query import demand_ineligibility

    out = []
    for name in sorted(program.component_names):
        problem = demand_ineligibility(program, name)
        if problem is None:
            continue
        reason, detail = problem
        out.append(
            Diagnostic(
                code="demand-ineligible",
                severity=Severity.INFO,
                location=f"view {name}*",
                message=(
                    f"queries against the view of component {name} cannot "
                    f"use strategy='demand' ({reason}): {detail}"
                ),
                fix_hint=_DEMAND_FIX_HINTS.get(reason, ""),
            )
        )
    return out


# ----------------------------------------------------------------------
# Report
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class StaticReport:
    """The result of :func:`analyze_program`."""

    pdg: PredicateDependencyGraph
    diagnostics: tuple[Diagnostic, ...]
    views: Mapping[str, ViewClassification]
    #: The whole-program abstract interpretation the semantic
    #: diagnostics were drawn from (None for hand-built reports).
    abstract: Optional[AbstractAnalysis] = field(default=None, compare=False)

    def by_code(self) -> Mapping[str, int]:
        counts: dict[str, int] = {}
        for d in self.diagnostics:
            counts[d.code] = counts.get(d.code, 0) + 1
        return counts

    def by_severity(self) -> Mapping[str, int]:
        counts = {str(s): 0 for s in Severity}
        for d in self.diagnostics:
            counts[str(d.severity)] += 1
        return counts

    def gating(self, max_severity: Severity) -> tuple[Diagnostic, ...]:
        """Diagnostics strictly above the allowed severity."""
        return tuple(
            d for d in self.diagnostics if d.severity > max_severity
        )

    def worst(self) -> Optional[Severity]:
        return max(
            (d.severity for d in self.diagnostics), default=None
        )

    def to_dict(self) -> dict[str, object]:
        return {
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "counts": {
                "by_code": dict(self.by_code()),
                "by_severity": dict(self.by_severity()),
            },
            "views": {
                name: {
                    "classification": info.classification,
                    "single_component": info.single_component,
                    "seminegative": info.seminegative,
                    "routable": info.routable,
                }
                for name, info in sorted(self.views.items())
            },
            "pdg": {
                "predicates": sorted(
                    f"{s[0]}/{s[1]}" for s in self.pdg.nodes
                ),
                "sccs": [sorted(f"{s[0]}/{s[1]}" for s in scc)
                         for scc in self.pdg.sccs],
            },
            "abstract": (
                self.abstract.to_dict() if self.abstract is not None else None
            ),
        }

    def render(self) -> str:
        lines = []
        ordered = sorted(
            self.diagnostics,
            key=lambda d: (-int(d.severity), d.code, d.location),
        )
        for d in ordered:
            lines.append(f"  {d}")
        severities = self.by_severity()
        lines.append(
            "  {} diagnostic(s): {} error(s), {} warning(s), {} note(s)".format(
                len(self.diagnostics),
                severities["error"],
                severities["warning"],
                severities["info"],
            )
        )
        return "\n".join(lines)


def analyze_program(program: OrderedProgram) -> StaticReport:
    """Run every static check over ``program``.

    Emits one ``check.diagnostic.<code>`` counter per finding and a
    ``check.analyze`` span when instrumentation is enabled.
    """
    obs = get_instrumentation()
    with obs.span(
        "check.analyze",
        components=len(program),
        rules=program.rule_count(),
    ):
        pdg = build_pdg(program)
        abstract = analyze_whole_program(program)
        diagnostics: list[Diagnostic] = []
        diagnostics.extend(_check_safety(program))
        diagnostics.extend(_check_undefined(program, pdg))
        diagnostics.extend(_check_arity(pdg))
        diagnostics.extend(_check_unused_heads(pdg))
        diagnostics.extend(_check_unreachable_components(program))
        diagnostics.extend(_check_potential_defeat(pdg))
        diagnostics.extend(_check_abstract(program, abstract))
        diagnostics.extend(_check_function_growth(program, pdg, abstract))
        strat_diags, views = _check_stratification(program)
        diagnostics.extend(strat_diags)
        diagnostics.extend(_check_demand(program))
        report = StaticReport(pdg, tuple(diagnostics), views, abstract)
        obs.count("check.diagnostics", len(diagnostics))
        for code, n in sorted(report.by_code().items()):
            obs.count(f"check.diagnostic.{code}", n)
        return report
