"""SARIF 2.1.0 export for ``olp check`` diagnostics.

SARIF (Static Analysis Results Interchange Format) is the standard
interchange format code-review tooling ingests; emitting it lets the
``analysis`` CI job upload ``olp check`` findings as a reviewable
artifact.  One log document carries one *run* of the ``olp-check``
driver; every :class:`~repro.analysis.static.Diagnostic` becomes a
*result* pointing at its source file (as the artifact) and its
component/rule location (as a logical location — the surface syntax has
no line table, so physical regions are omitted).
"""

from __future__ import annotations

from typing import Sequence

from .static import DIAGNOSTIC_CODES, Severity, StaticReport

__all__ = ["SARIF_VERSION", "SARIF_SCHEMA", "sarif_log"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Diagnostic severity → SARIF result level.
_LEVELS = {
    Severity.INFO: "note",
    Severity.WARNING: "warning",
    Severity.ERROR: "error",
}

#: One-line rule descriptions, surfaced in review UIs next to the id.
_RULE_DESCRIPTIONS = {
    "unsafe-rule": "A rule variable is not bound by a positive body literal.",
    "undefined-predicate": "A body predicate is headed in no visible view.",
    "arity-clash": "One predicate name is used with conflicting arities.",
    "unused-head": "A derived predicate never occurs in a rule body.",
    "unreachable-component": "No other component's view sees this component.",
    "potential-defeat": "Contradicting rules in unordered components can defeat each other.",
    "function-growth": "A recursive rule grows term depth without an inferred bound.",
    "stratification": "The view's classification and routing eligibility.",
    "type-clash": "A call-site argument lies outside the predicate's inferred values.",
    "provably-empty": "A predicate with rules is underivable in every view.",
    "dead-rule": "A rule body is statically unsatisfiable in every view.",
}


def _rules() -> list[dict]:
    rules = []
    for code in sorted(DIAGNOSTIC_CODES):
        severity = Severity.parse(DIAGNOSTIC_CODES[code])
        rules.append(
            {
                "id": code,
                "shortDescription": {
                    "text": _RULE_DESCRIPTIONS.get(code, code)
                },
                "defaultConfiguration": {"level": _LEVELS[severity]},
            }
        )
    return rules


def sarif_log(reports: Sequence[tuple[str, StaticReport]]) -> dict:
    """A SARIF 2.1.0 log document for ``(file path, report)`` pairs.

    The result is plain JSON-serialisable data; callers dump it with
    ``json.dumps``.  Files are indexed into the run's ``artifacts``
    array and each result references its artifact by index.
    """
    from .. import __version__

    rules = _rules()
    rule_index = {r["id"]: i for i, r in enumerate(rules)}
    artifacts = [{"location": {"uri": path}} for path, _ in reports]
    results = []
    for file_index, (_path, report) in enumerate(reports):
        for d in report.diagnostics:
            message = d.message
            if d.fix_hint:
                message += f" (fix: {d.fix_hint})"
            results.append(
                {
                    "ruleId": d.code,
                    "ruleIndex": rule_index[d.code],
                    "level": _LEVELS[d.severity],
                    "message": {"text": message},
                    "locations": [
                        {
                            "physicalLocation": {
                                "artifactLocation": {
                                    "uri": artifacts[file_index]["location"]["uri"],
                                    "index": file_index,
                                }
                            },
                            "logicalLocations": [
                                {"fullyQualifiedName": d.location}
                            ],
                        }
                    ],
                }
            )
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "olp-check",
                        "version": __version__,
                        "rules": rules,
                    }
                },
                "artifacts": artifacts,
                "results": results,
                "columnKind": "unicodeCodePoints",
            }
        ],
    }
