"""Conflict analysis: where can overruling and defeating happen?

For a grounded component view, every pair of rules with complementary
heads is a potential conflict; its *kind* is decided by the component
order exactly as Definition 2 does:

* the lower rule can **overrule** the upper one when their components
  are strictly ordered;
* the two rules **defeat** each other when their components are equal
  or incomparable.

The conflict graph explains a program's non-monotone structure before
any interpretation is chosen; the CLI's ``explain`` output and the
hierarchy benchmarks use it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator

from ..core.semantics import OrderedSemantics
from ..core.statuses import ComponentOrder
from ..grounding.grounder import GroundRule
from ..lang.literals import Literal

__all__ = ["ConflictKind", "Conflict", "find_conflicts", "conflict_summary"]


class ConflictKind(enum.Enum):
    #: ``winner``'s component is strictly below ``loser``'s.
    OVERRULE = "overrule"
    #: The components are equal or incomparable: mutual defeat.
    DEFEAT = "defeat"


@dataclass(frozen=True)
class Conflict:
    """One potential conflict between two complementary-headed rules.

    For ``OVERRULE``, ``first`` is the potential winner (the more
    specific rule); for ``DEFEAT`` the roles are symmetric.
    """

    kind: ConflictKind
    first: GroundRule
    second: GroundRule

    @property
    def atom_str(self) -> str:
        return str(self.first.head.atom)

    def __str__(self) -> str:
        arrow = "overrules" if self.kind is ConflictKind.OVERRULE else "defeats"
        return f"{self.first}  {arrow}  {self.second}"


def find_conflicts(
    rules: Iterable[GroundRule], order: ComponentOrder
) -> Iterator[Conflict]:
    """All potential conflicts among the given ground rules.

    Emits each OVERRULE pair once (winner first) and each DEFEAT pair
    once (deterministic order).
    """
    by_head: dict[Literal, list[GroundRule]] = {}
    for r in rules:
        by_head.setdefault(r.head, []).append(r)
    seen_defeats: set[tuple[GroundRule, GroundRule]] = set()
    for head, with_head in sorted(by_head.items(), key=lambda kv: str(kv[0])):
        opponents = by_head.get(head.complement(), ())
        for mine in with_head:
            for theirs in opponents:
                if order.strictly_below(mine.component, theirs.component):
                    yield Conflict(ConflictKind.OVERRULE, mine, theirs)
                elif order.incomparable_or_equal(mine.component, theirs.component):
                    key = tuple(sorted((mine, theirs), key=str))
                    if key not in seen_defeats:
                        seen_defeats.add(key)
                        yield Conflict(ConflictKind.DEFEAT, key[0], key[1])


def conflict_summary(semantics: OrderedSemantics) -> dict[str, int]:
    """Counts of each conflict kind for a component view."""
    counts = {kind.value: 0 for kind in ConflictKind}
    for conflict in find_conflicts(semantics.ground.rules, semantics.evaluator.order):
        counts[conflict.kind.value] += 1
    return counts
