"""ASCII rendering of the component hierarchy (a Hasse diagram).

Components are laid out by *height* (longest chain to a maximal
element): the most general knowledge at the top, the most specific at
the bottom, exactly as the paper draws its figures.  Covering edges are
listed per layer; the rendering is deterministic.
"""

from __future__ import annotations

from typing import Union

from ..lang.poset import PartialOrder
from ..lang.program import OrderedProgram

__all__ = ["hasse_layers", "render_hasse"]


def hasse_layers(order: PartialOrder) -> list[list[str]]:
    """Components grouped by height, most general first.

    The height of an element is the length of the longest chain from it
    up to a maximal element; maximal elements have height 0.
    """
    heights: dict[str, int] = {}

    def height(element: str) -> int:
        if element in heights:
            return heights[element]
        above = order.strictly_above(element)
        value = 0 if not above else 1 + max(height(a) for a in above)
        heights[element] = value
        return value

    for element in order:
        height(element)
    if not heights:
        return []
    layers: list[list[str]] = [[] for _ in range(max(heights.values()) + 1)]
    for element, h in heights.items():
        layers[h].append(element)
    return [sorted(layer) for layer in layers]


def render_hasse(source: Union[OrderedProgram, PartialOrder]) -> str:
    """A multi-line ASCII Hasse diagram.

    Each layer is one line; beneath it, the covering edges from the
    layer below point upward (``child --> parent``).
    """
    order = source.order if isinstance(source, OrderedProgram) else source
    layers = hasse_layers(order)
    if not layers:
        return "(empty hierarchy)"
    covers = order.covering_pairs()
    lines = []
    for layer in layers:
        lines.append("  ".join(f"[{name}]" for name in layer))
        incoming = sorted(
            (low, high) for low, high in covers if high in layer
        )
        for low, high in incoming:
            lines.append(f"    {low} --> {high}")
    return "\n".join(lines)
