"""Program statistics: the paper's size measure and structural counts.

"The size of a program is the total number of symbols that occur in it"
(Section 3) — :func:`program_size` implements exactly that measure, used
by the tests of the paper's polynomial-size remark about ``OV``/``EV``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Union

from ..lang.builtins import BinaryOp, Comparison
from ..lang.literals import Literal
from ..lang.program import Component, OrderedProgram
from ..lang.rules import Rule
from ..lang.terms import Compound, Term

__all__ = ["ProgramStats", "program_size", "program_stats"]


def _term_symbols(term: Term) -> int:
    if isinstance(term, Compound):
        return 1 + sum(_term_symbols(a) for a in term.args)
    return 1


def _literal_symbols(literal: Literal) -> int:
    size = 1 + sum(_term_symbols(a) for a in literal.args)
    return size + (0 if literal.positive else 1)


def _expr_symbols(expr) -> int:
    if isinstance(expr, BinaryOp):
        return 1 + _expr_symbols(expr.left) + _expr_symbols(expr.right)
    return _term_symbols(expr)


def _rule_symbols(r: Rule) -> int:
    size = _literal_symbols(r.head)
    for item in r.body:
        if isinstance(item, Literal):
            size += _literal_symbols(item)
        elif isinstance(item, Comparison):
            size += 1 + _expr_symbols(item.left) + _expr_symbols(item.right)
    return size


def program_size(
    program: Union[OrderedProgram, Component, Iterable[Rule]],
) -> int:
    """Total number of symbol occurrences (the paper's size measure)."""
    if isinstance(program, OrderedProgram):
        return sum(program_size(c) for c in program.components())
    if isinstance(program, Component):
        return sum(_rule_symbols(r) for r in program.rules)
    return sum(_rule_symbols(r) for r in program)


@dataclass(frozen=True)
class ProgramStats:
    """Structural counts of an ordered program."""

    components: int
    rules: int
    facts: int
    negative_head_rules: int
    positive_rules: int
    predicates: int
    constants: int
    order_pairs: int
    size: int

    def __str__(self) -> str:
        return (
            f"{self.components} components, {self.rules} rules "
            f"({self.facts} facts, {self.negative_head_rules} with negated heads, "
            f"{self.positive_rules} Horn), {self.predicates} predicates, "
            f"{self.constants} constants, {self.order_pairs} order pairs, "
            f"size {self.size}"
        )


def program_stats(program: OrderedProgram) -> ProgramStats:
    """Structural statistics for an ordered program."""
    all_rules = [r for comp in program.components() for r in comp.rules]
    return ProgramStats(
        components=len(program),
        rules=len(all_rules),
        facts=sum(1 for r in all_rules if r.is_fact),
        negative_head_rules=sum(1 for r in all_rules if r.has_negative_head),
        positive_rules=sum(1 for r in all_rules if r.is_positive),
        predicates=len(program.predicate_signatures()),
        constants=len(program.constants()),
        order_pairs=len(program.order.pairs()),
        size=program_size(program),
    )
