"""Linting ordered programs: find conclusions that can never fire.

The recurring pitfall of ordered logic (it bit Figure 3's loan program,
the taxonomy example and the policy KB during this reproduction — see
EXPERIMENTS.md §5): Definition 2's overrulers and defeaters need only be
*non-blocked*, and a rule whose body literals' complements head no rule
can **never** be blocked.  Such a rule permanently suppresses every
contradicting rule above (or beside) it, no matter whether its own body
is ever derivable.

The linter reports, per component view ("permanently" = in the least
model and in every assumption-free model; an arbitrary Definition-3
model may still contain a non-derivable blocker):

* ``permanently-overruled`` — a rule with a never-blockable overruler
  strictly below it: its head can never be derived in this view;
* ``permanently-defeated`` — the same with an incomparable-or-equal
  contradictor: the conclusion can never be decided either way;
* ``missing-closure`` — the usual fix: the body literals of the
  offending contradictor whose complements no rule derives (adding a
  closure rule for one of them unblocks the conclusion).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, Optional

from ..core.semantics import OrderedSemantics
from ..grounding.grounder import GroundRule
from ..lang.literals import Literal
from ..lang.program import OrderedProgram

__all__ = ["LintWarning", "lint_component", "lint_program"]


@dataclass(frozen=True)
class LintWarning:
    """One finding: ``rule`` is suppressed by ``witness``; the
    ``unblockable`` literals are the witness's body literals whose
    complements nothing derives.  When the same rule is suppressed by
    several witnesses (or by the same witness in several nested views),
    the aggregated finding keeps one representative witness and counts
    the rest in ``extra_witnesses``."""

    kind: str  # "permanently-overruled" | "permanently-defeated"
    component: str
    rule: GroundRule
    witness: GroundRule
    unblockable: tuple[Literal, ...]
    extra_witnesses: int = 0

    def __str__(self) -> str:
        verb = (
            "overruled" if self.kind == "permanently-overruled" else "defeated"
        )
        fixes = ", ".join(str(l.complement()) for l in self.unblockable)
        text = (
            f"[{self.component}] {self.rule}\n"
            f"  is permanently {verb} by  {self.witness}\n"
            f"  (never blockable: no rule derives any of {fixes} — "
            "add a closure rule for one of them)"
        )
        if self.extra_witnesses:
            text += (
                f"\n  (+{self.extra_witnesses} more witness(es) suppress "
                "the same rule)"
            )
        return text


def _never_blockable(
    r: GroundRule, head_literals: frozenset[Literal]
) -> tuple[bool, tuple[Literal, ...]]:
    """A non-fact rule can never be blocked iff no body literal's
    complement is the head of any rule.  Returns the flag plus the body
    literals involved (for the fix hint).

    Facts are excluded on purpose: a contradicting *fact* in a lower or
    incomparable component is a deliberate assertion (Figure 1 overrides
    the ``-ground_animal`` default with the ``ground_animal(penguin)``
    fact; Figure 2's experts assert contradicting facts) — the lint
    targets rules whose *conditional* exception suppresses a conclusion
    even though the condition is closure-less and can never be settled.
    """
    if r.is_fact:
        return False, ()
    blockers = tuple(
        l for l in sorted(r.body) if l.complement() in head_literals
    )
    if blockers:
        return False, ()
    return True, tuple(sorted(r.body))


def lint_component(semantics: OrderedSemantics) -> Iterator[LintWarning]:
    """All findings for one component view."""
    ev = semantics.evaluator
    head_literals = frozenset(r.head for r in semantics.ground.rules)
    for r in semantics.ground.rules:
        for other in ev.contradictors(r):
            never, body = _never_blockable(other, head_literals)
            if not never:
                continue
            if ev.order.strictly_below(other.component, r.component):
                yield LintWarning(
                    "permanently-overruled",
                    semantics.component,
                    r,
                    other,
                    body,
                )
            elif ev.order.incomparable_or_equal(other.component, r.component):
                yield LintWarning(
                    "permanently-defeated",
                    semantics.component,
                    r,
                    other,
                    body,
                )


def lint_program(
    program: OrderedProgram,
    aggregate: bool = True,
    component: Optional[str] = None,
    **semantics_kwargs,
) -> list[LintWarning]:
    """Findings across every component view (or just ``component``'s,
    mirroring ``olp run -c``).

    With ``aggregate`` (the default), findings are deduplicated per
    *suppressed source rule* — one representative per (kind, suppressed
    rule), since a single non-ground rule typically produces one finding
    per Herbrand instance and per witnessing contradictor, repeated in
    every nested component view that contains both rules.  The number of
    distinct extra witnesses is kept on
    :attr:`LintWarning.extra_witnesses`.
    """
    names = (
        [component] if component is not None
        else sorted(program.component_names)
    )
    seen: set[tuple] = set()
    findings: list[LintWarning] = []
    index: dict[tuple, int] = {}
    witnesses: dict[tuple, set[tuple]] = {}
    for name in names:
        sem = OrderedSemantics(program, name, **semantics_kwargs)
        for warning in lint_component(sem):
            witness_key = (
                warning.witness.component,
                warning.witness.origin or warning.witness,
            )
            if aggregate:
                key = (
                    warning.kind,
                    warning.rule.component,
                    warning.rule.origin or warning.rule,
                )
                witnesses.setdefault(key, set()).add(witness_key)
            else:
                key = (warning.kind, warning.rule, warning.witness)
            if key not in seen:
                seen.add(key)
                index[key] = len(findings)
                findings.append(warning)
    if aggregate:
        for key, extra in witnesses.items():
            if len(extra) > 1:
                at = index[key]
                findings[at] = replace(
                    findings[at], extra_witnesses=len(extra) - 1
                )
    return findings
