"""Program analysis: static checks, conflict graphs and statistics."""

from .conflicts import Conflict, ConflictKind, conflict_summary, find_conflicts
from .hasse import hasse_layers, render_hasse
from .lint import LintWarning, lint_component, lint_program
from .static import (
    Diagnostic,
    EdgeKind,
    OrderRelation,
    PredicateDependencyGraph,
    Severity,
    StaticReport,
    ViewClassification,
    analyze_program,
    build_pdg,
    classify_view,
)
from .stats import ProgramStats, program_size, program_stats

__all__ = [
    "Conflict",
    "ConflictKind",
    "find_conflicts",
    "conflict_summary",
    "hasse_layers",
    "render_hasse",
    "LintWarning",
    "lint_component",
    "lint_program",
    "Diagnostic",
    "EdgeKind",
    "OrderRelation",
    "PredicateDependencyGraph",
    "Severity",
    "StaticReport",
    "ViewClassification",
    "analyze_program",
    "build_pdg",
    "classify_view",
    "ProgramStats",
    "program_size",
    "program_stats",
]
