"""Program analysis: conflict graphs and structural statistics."""

from .conflicts import Conflict, ConflictKind, conflict_summary, find_conflicts
from .hasse import hasse_layers, render_hasse
from .lint import LintWarning, lint_component, lint_program
from .stats import ProgramStats, program_size, program_stats

__all__ = [
    "Conflict",
    "ConflictKind",
    "find_conflicts",
    "conflict_summary",
    "hasse_layers",
    "render_hasse",
    "LintWarning",
    "lint_component",
    "lint_program",
    "ProgramStats",
    "program_size",
    "program_stats",
]
