"""Program analysis: static checks, conflict graphs and statistics."""

from .abstract import (
    AbstractAnalysis,
    CardInterval,
    PredicateFacts,
    RuleRestriction,
    Sort,
    analyze_rules,
    analyze_view,
    analyze_whole_program,
)
from .conflicts import Conflict, ConflictKind, conflict_summary, find_conflicts
from .hasse import hasse_layers, render_hasse
from .lint import LintWarning, lint_component, lint_program
from .sarif import sarif_log
from .static import (
    Diagnostic,
    EdgeKind,
    OrderRelation,
    PredicateDependencyGraph,
    Severity,
    StaticReport,
    ViewClassification,
    analyze_program,
    build_pdg,
    classify_view,
)
from .stats import ProgramStats, program_size, program_stats

__all__ = [
    "AbstractAnalysis",
    "CardInterval",
    "PredicateFacts",
    "RuleRestriction",
    "Sort",
    "analyze_rules",
    "analyze_view",
    "analyze_whole_program",
    "sarif_log",
    "Conflict",
    "ConflictKind",
    "find_conflicts",
    "conflict_summary",
    "hasse_layers",
    "render_hasse",
    "LintWarning",
    "lint_component",
    "lint_program",
    "Diagnostic",
    "EdgeKind",
    "OrderRelation",
    "PredicateDependencyGraph",
    "Severity",
    "StaticReport",
    "ViewClassification",
    "analyze_program",
    "build_pdg",
    "classify_view",
    "ProgramStats",
    "program_size",
    "program_stats",
]
