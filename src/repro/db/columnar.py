"""Columnar relation storage: interned term ids + sorted-merge joins.

The row-oriented :class:`~repro.db.relation.Relation` compares and
hashes structured :class:`~repro.lang.terms.Term` objects on every join
probe.  This module gives each relation a lazily-built **columnar
index**: every column becomes a flat ``array('l')`` of dense term ids
from a shared :class:`TermInterner`, so an equi-join becomes a merge of
two sorted integer arrays — the same dense-id discipline the fixpoint
kernel applies to literals (see ``docs/performance.md``).

Ids are assigned in interning order, not term order; a merge join only
needs *both* sides sorted in the same id space, which the shared
interner guarantees.  Sort orders are cached per (relation, key
columns), so the repeated joins of semi-naive iteration re-sort
nothing.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import TYPE_CHECKING, Callable, Iterator, Optional, Sequence

from ..lang.terms import Term, Variable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..lang.literals import Literal
    from .relation import Relation

__all__ = ["TermInterner", "ColumnarIndex", "merge_join", "plan_join"]


class TermInterner:
    """Ground terms interned to dense integer ids (append-only)."""

    __slots__ = ("_ids", "_terms")

    def __init__(self) -> None:
        self._ids: dict[Term, int] = {}
        self._terms: list[Term] = []

    def intern(self, term: Term) -> int:
        tid = self._ids.get(term)
        if tid is None:
            tid = len(self._terms)
            self._ids[term] = tid
            self._terms.append(term)
        return tid

    def term(self, tid: int) -> Term:
        return self._terms[tid]

    def __len__(self) -> int:
        return len(self._terms)

    def __contains__(self, term: Term) -> bool:
        return term in self._ids


#: The default interner.  Shared across relations so that ids are
#: comparable between any two columnar indexes (the merge join relies
#: on this).
_SHARED = TermInterner()


def shared_interner() -> TermInterner:
    return _SHARED


class ColumnarIndex:
    """One relation's rows as id columns plus cached sort orders.

    Attributes:
        rows: the relation's rows in a fixed positional order — join
            results are assembled by row index.
        columns: per-column ``array('l')`` of interned term ids.
    """

    __slots__ = ("interner", "rows", "columns", "_orders")

    def __init__(
        self, relation: "Relation", interner: TermInterner | None = None
    ) -> None:
        self.interner = interner if interner is not None else _SHARED
        intern = self.interner.intern
        self.rows: tuple = tuple(relation.rows)
        arity = relation.arity
        columns = [array("l", bytes(array("l").itemsize * len(self.rows)))
                   for _ in range(arity)]
        for r, row in enumerate(self.rows):
            for c in range(arity):
                columns[c][r] = intern(row[c])
        self.columns = columns
        self._orders: dict[tuple[tuple[int, ...], int], tuple[array, array]] = {}

    def __len__(self) -> int:
        return len(self.rows)

    def sorted_by(
        self, cols: Sequence[int], radix: int | None = None
    ) -> tuple[array, array]:
        """``(keys, order)``: the composite key of each row under the
        given columns, and the row indices sorted by that key.

        Composite keys are flattened to single ints by mixing with
        ``radix`` (a perfect injective mix when every id is below it),
        so the merge loop compares one machine int per row regardless of
        key arity.  Both sides of a join must mix with the *same* radix
        — :func:`merge_join` snapshots one and passes it down, and the
        cache is keyed on it (a stale cached mix from a smaller interner
        must not be reused).
        """
        key = tuple(cols)
        if len(key) == 1:
            radix = 0  # single column: no mixing, radix-independent
        elif radix is None:
            radix = max(len(self.interner), 1)
        cached = self._orders.get((key, radix))
        if cached is not None:
            return cached
        n = len(self.rows)
        if len(key) == 1:
            keys = self.columns[key[0]]
        else:
            keys = array("q", bytes(8 * n))
            for r in range(n):
                mixed = 0
                for c in key:
                    mixed = mixed * radix + self.columns[c][r]
                keys[r] = mixed
        order = array("l", sorted(range(n), key=keys.__getitem__))
        sorted_keys = array(keys.typecode, (keys[r] for r in order))
        cached = (sorted_keys, order)
        self._orders[(key, radix)] = cached
        return cached


def merge_join(
    left: ColumnarIndex,
    right: ColumnarIndex,
    left_cols: Sequence[int],
    right_cols: Sequence[int],
) -> Iterator[tuple[int, int]]:
    """Row-index pairs matching on the key columns, by sorted merge.

    Both sides must be indexed against the same interner.  Composite
    keys must be mixed identically, so multi-column joins share one
    radix: the max of the two interner sizes (identical here because
    the interner is shared).
    """
    if left.interner is not right.interner:
        raise ValueError("merge_join requires indexes over one interner")
    radix = max(len(left.interner), 1)
    lkeys, lorder = left.sorted_by(left_cols, radix)
    rkeys, rorder = right.sorted_by(right_cols, radix)
    nl, nr = len(lkeys), len(rkeys)
    i = j = 0
    while i < nl and j < nr:
        lk, rk = lkeys[i], rkeys[j]
        if lk < rk:
            i = bisect_left(lkeys, rk, i + 1)
        elif rk < lk:
            j = bisect_left(rkeys, lk, j + 1)
        else:
            i_end = i
            while i_end < nl and lkeys[i_end] == lk:
                i_end += 1
            j_end = j
            while j_end < nr and rkeys[j_end] == lk:
                j_end += 1
            for a in range(i, i_end):
                la = lorder[a]
                for b in range(j, j_end):
                    yield la, rorder[b]
            i, j = i_end, j_end


def plan_join(
    literals: Sequence["Literal"],
    cardinality: Callable[["Literal"], Optional[int]],
) -> tuple[int, ...]:
    """A join order over conjunctive body literals, as indices into
    ``literals``: smallest estimated relation first, then greedily the
    cheapest literal *connected* to the already-bound variables.

    ``cardinality`` maps a literal to an upper bound on its relation
    size (typically ``CardInterval.hi`` from
    :mod:`repro.analysis.abstract`); None means unknown and sorts last
    within its connectivity class.  Ties break on the textual position,
    so planning is deterministic and a no-information plan degenerates
    to textual order.  Any permutation of a conjunction is
    semantics-preserving — the planner only chooses evaluation cost.
    """
    remaining = list(range(len(literals)))
    bound: set[Variable] = set()
    order: list[int] = []

    def rank(i: int) -> tuple[bool, float, int]:
        lit = literals[i]
        card = cardinality(lit)
        estimate = float("inf") if card is None else float(card)
        variables = lit.variables()
        connected = not order or not variables or bool(variables & bound)
        return (not connected, estimate, i)

    while remaining:
        best = min(remaining, key=rank)
        remaining.remove(best)
        order.append(best)
        bound |= literals[best].variables()
    return tuple(order)
