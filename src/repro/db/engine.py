"""A non-ground Datalog engine: stratified semi-naive evaluation.

The grounder-based pipeline materialises every rule instance over the
Herbrand universe — the only sound strategy for *ordered* programs (see
DESIGN.md).  For the classical substrate, evaluation can instead join
rules directly against relations: this engine implements the standard
deductive-database algorithm — stratified, semi-naive, with comparison
guards — and is the fast path for Example-6-style workloads (the
``bench_datalog_engine`` benchmark measures the gap against
ground-then-close evaluation).

Supported programs: *safe, stratified* seminegative rules.  Safety:
every variable of the head, of a guard, and of a negative body literal
must occur in a positive body literal.  Negation is evaluated against
the completed lower strata (the perfect-model semantics, [ABW]).
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Union

from ..classical.stratified import stratification
from ..grounding.substitution import Substitution, match_atom
from ..lang.errors import UnsafeRuleError
from ..lang.literals import Atom, Literal
from ..lang.parser import parse_literal
from ..lang.rules import Rule
from ..lang.terms import Term, Variable
from ..obs import Level, get_instrumentation
from .database import Database
from .relation import Relation, RelationError

__all__ = ["DatalogEngine"]

Row = tuple[Term, ...]


def _check_safety(rules: Sequence[Rule]) -> None:
    for r in rules:
        if not r.head.positive:
            raise UnsafeRuleError(f"the Datalog engine needs positive heads: {r}")
        bound: set[Variable] = set()
        for l in r.body_literals():
            if l.positive:
                bound |= l.variables()
        unsafe = r.head.variables() - bound
        if unsafe:
            raise UnsafeRuleError(
                f"unsafe rule (head variables {sorted(map(str, unsafe))} not "
                f"bound by a positive body literal): {r}"
            )
        for l in r.body_literals():
            if not l.positive and l.variables() - bound:
                raise UnsafeRuleError(
                    f"unsafe negative literal {l} in: {r}"
                )
        for guard in r.guards():
            if guard.variables() - bound:
                raise UnsafeRuleError(f"unsafe guard {guard} in: {r}")


class _Store:
    """Tuple storage with a first-argument hash index.

    Join patterns almost always arrive with their first argument bound
    (``anc(Z, Y)`` after ``parent(X, Z)`` matched), so candidate rows
    are fetched by ``(signature, first value)`` instead of scanning the
    whole relation."""

    __slots__ = ("_all", "_by_first", "index_hits", "index_scans")

    def __init__(self) -> None:
        self._all: dict[tuple[str, int], set[Row]] = {}
        self._by_first: dict[tuple[str, int, Term], set[Row]] = {}
        # Tallies for the observability layer: lookups answered by the
        # first-argument index vs. full-relation scans.
        self.index_hits = 0
        self.index_scans = 0

    def add(self, signature: tuple[str, int], row: Row) -> bool:
        """Insert a row; returns True when it is new."""
        bucket = self._all.setdefault(signature, set())
        if row in bucket:
            return False
        bucket.add(row)
        if row:
            key = (signature[0], signature[1], row[0])
            self._by_first.setdefault(key, set()).add(row)
        return True

    def rows(self, signature: tuple[str, int]) -> set[Row]:
        return self._all.get(signature, set())

    def contains(self, signature: tuple[str, int], row: Row) -> bool:
        return row in self._all.get(signature, ())

    def candidates(self, pattern: Atom) -> set[Row]:
        """Rows that could match the pattern (first-arg indexed)."""
        signature = pattern.signature
        if pattern.args and pattern.args[0].is_ground:
            self.index_hits += 1
            key = (signature[0], signature[1], pattern.args[0])
            return self._by_first.get(key, set())
        self.index_scans += 1
        return self._all.get(signature, set())

    def items(self):
        return self._all.items()


class DatalogEngine:
    """Bottom-up evaluation of a safe stratified program over an EDB.

    >>> db = Database()
    >>> db.insert("parent", ("adam", "cain"))
    >>> db.insert("parent", ("cain", "enoch"))
    >>> engine = DatalogEngine(parse_rules('''
    ...     anc(X, Y) :- parent(X, Y).
    ...     anc(X, Y) :- parent(X, Z), anc(Z, Y).
    ... '''), db)
    >>> engine.holds("anc(adam, enoch)")
    True
    """

    def __init__(
        self,
        rules: Sequence[Rule],
        database: Optional[Database] = None,
        plan_joins: bool = True,
    ) -> None:
        rules = tuple(rules)
        _check_safety(rules)
        self._strata = stratification(rules)
        if self._strata is None:
            raise UnsafeRuleError(
                "the Datalog engine needs a stratified program"
            )
        self._rules = [r for r in rules if not (r.is_fact and r.is_ground)]
        self._database = database.copy() if database is not None else Database()
        for r in rules:
            if r.is_fact and r.is_ground:
                self._database.insert(r.head.predicate, r.head.args)
        self._plan_joins = plan_joins
        self._plans: dict[int, tuple[int, ...]] = {}
        self._total: Optional[_Store] = None

    def _build_plans(self) -> None:
        """Order each rule's positive-literal conjunction by the
        abstract interpretation's cardinality bounds (smallest relation
        first, connected literals next) instead of textual order.

        The engine's negation is negation-as-failure, not the paper's
        classical ``¬``, so negative literals are stripped before the
        analysis (removing a NAF literal only widens satisfiability —
        the bounds stay sound as estimates).  Plans only reorder a
        commutative conjunction, so any plan is semantics-preserving.
        """
        from ..analysis.abstract import analyze_rules
        from .columnar import plan_join

        positive_rules = [
            Rule(r.head, [*(l for l in r.body_literals() if l.positive), *r.guards()])
            for r in self._rules
        ]
        analysis = analyze_rules(positive_rules, edb=list(self._database))

        def estimate(literal: Literal) -> Optional[int]:
            return analysis.literal_fact(literal).card.hi

        reorders = 0
        for r in self._rules:
            positives = [l for l in r.body_literals() if l.positive]
            if len(positives) < 2:
                continue
            plan = plan_join(positives, estimate)
            if plan != tuple(range(len(positives))):
                self._plans[id(r)] = plan
                reorders += 1
        obs = get_instrumentation()
        if obs.enabled:
            obs.count("analysis.join_reorders", reorders)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _tuples(self) -> _Store:
        if self._total is None:
            self._total = self._evaluate()
        return self._total

    def _evaluate(self) -> _Store:
        obs = get_instrumentation()
        total = _Store()
        edb_rows = 0
        with obs.span("db.evaluate", rules=len(self._rules)):
            if self._plan_joins:
                self._build_plans()
            for relation in self._database:
                for row in relation.rows:
                    total.add((relation.name, relation.arity), row)
                    edb_rows += 1
            strata = self._strata or {}
            max_stratum = max(strata.values(), default=0)
            for level in range(max_stratum + 1):
                level_rules = [
                    r
                    for r in self._rules
                    if strata.get(r.head.predicate, 0) == level
                ]
                self._fixpoint(level_rules, total)
        if obs.enabled:
            idb_rows = sum(len(rows) for _sig, rows in total.items()) - edb_rows
            obs.count("db.edb_rows", edb_rows)
            obs.count("db.rows_derived", idb_rows)
            obs.count("db.index_hits", total.index_hits)
            obs.count("db.index_scans", total.index_scans)
            obs.gauge("db.strata", max_stratum + 1)
            obs.event(
                "db.evaluated",
                Level.INFO,
                edb_rows=edb_rows,
                derived_rows=idb_rows,
                strata=max_stratum + 1,
            )
        return total

    def _fixpoint(self, rules: list[Rule], total: _Store) -> None:
        """Semi-naive iteration of one stratum's rules over ``total``."""
        obs = get_instrumentation()
        firings = 0
        rounds = 0
        # Seed: a full naive round establishes the initial delta.
        delta: dict[tuple[str, int], set[Row]] = {}
        for r in rules:
            # Materialise before mutating total (solve iterates over it).
            for row in list(self._fire(r, total, delta=None)):
                firings += 1
                if total.add(r.head.signature, row):
                    delta.setdefault(r.head.signature, set()).add(row)
        while delta:
            rounds += 1
            new_delta: dict[tuple[str, int], set[Row]] = {}
            for r in rules:
                body = r.body_literals()
                touches_delta = any(
                    l.positive and l.signature in delta for l in body
                )
                if not touches_delta:
                    continue
                for row in list(self._fire(r, total, delta=delta)):
                    firings += 1
                    if total.add(r.head.signature, row):
                        new_delta.setdefault(r.head.signature, set()).add(row)
            delta = new_delta
        obs.count("db.rule_firings", firings)
        obs.count("db.delta_rounds", rounds)

    def _fire(
        self,
        r: Rule,
        total: _Store,
        delta: Optional[dict[tuple[str, int], set[Row]]],
    ) -> Iterator[Row]:
        """All head rows derivable by one rule.

        With ``delta`` given, at least one positive body literal is
        required to match a delta row (semi-naive restriction).
        """
        positives = [l for l in r.body_literals() if l.positive]
        plan = self._plans.get(id(r))
        if plan is not None:
            positives = [positives[i] for i in plan]
        negatives = [l for l in r.body_literals() if not l.positive]
        guards = r.guards()

        def emit(theta: Substitution) -> Iterator[Row]:
            for l in negatives:
                atom = theta.apply_atom(l.atom)
                if total.contains(atom.signature, atom.args):  # true -> blocked
                    return
            bindings = theta.as_dict()
            for guard in guards:
                try:
                    if not guard.holds(bindings):
                        return
                except Exception:
                    return  # unevaluable guard (symbolic order cmp): drop
            yield theta.apply_atom(r.head.atom).args

        def solve(
            index: int, theta: Substitution, used_delta: bool
        ) -> Iterator[Row]:
            if index == len(positives):
                if delta is None or used_delta:
                    yield from emit(theta)
                return
            literal = positives[index]
            pattern = theta.apply_atom(literal.atom)
            for row in total.candidates(pattern):
                bound = match_atom(pattern, Atom(pattern.predicate, row))
                if bound is None:
                    continue
                is_delta_row = (
                    delta is not None
                    and row in delta.get(pattern.signature, ())
                )
                yield from solve(
                    index + 1, theta.compose(bound), used_delta or is_delta_row
                )

        if not positives:
            # Body is guards/negatives only; safety guarantees ground.
            if delta is None:
                yield from emit(Substitution())
            return
        yield from solve(0, Substitution(), False)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def relation(self, name: str, arity: int) -> Relation:
        """The materialised relation for a predicate."""
        rows = self._tuples().rows((name, arity))
        return Relation(name, arity, rows)

    def database(self) -> Database:
        """Every materialised relation (EDB and IDB) as a database."""
        result = Database()
        for (name, arity), rows in sorted(self._tuples().items()):
            result.add_relation(Relation(name, arity, rows))
        return result

    def atoms(self) -> frozenset[Atom]:
        """All derived ground atoms."""
        found: set[Atom] = set()
        for (name, _arity), rows in self._tuples().items():
            for row in rows:
                found.add(Atom(name, row))
        return frozenset(found)

    def query(self, goal: Union[Literal, str]) -> list[Substitution]:
        """Bindings of a positive goal pattern against the fixpoint."""
        if isinstance(goal, str):
            goal = parse_literal(goal)
        if not goal.positive:
            raise RelationError("Datalog queries are positive literals")
        answers = []
        for row in sorted(
            self._tuples().rows(goal.signature), key=str
        ):
            theta = match_atom(goal.atom, Atom(goal.predicate, row))
            if theta is not None:
                answers.append(theta.restrict(goal.variables()))
        return answers

    def holds(self, goal: Union[Literal, str]) -> bool:
        """Is a ground positive goal derivable?"""
        return bool(self.query(goal))
