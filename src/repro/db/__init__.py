"""The deductive-database substrate: relations, an extensional
database, and a non-ground stratified semi-naive Datalog engine
(Example 6's "parent is defined through a database relation")."""

from .columnar import ColumnarIndex, TermInterner, merge_join, shared_interner
from .database import Database
from .edb import EdbError, EdbStore
from .engine import DatalogEngine
from .relation import Relation, RelationError

__all__ = [
    "Relation",
    "RelationError",
    "Database",
    "DatalogEngine",
    "ColumnarIndex",
    "TermInterner",
    "merge_join",
    "shared_interner",
    "EdbError",
    "EdbStore",
]
