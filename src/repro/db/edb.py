"""Disk-backed EDB storage: a SQLite column store behind the
:class:`~repro.db.relation.Relation` interface.

Fact bases larger than RAM are a supported scenario: an
:class:`EdbStore` keeps every relation as an integer column table in a
single SQLite file, with ground terms deduplicated through a ``terms``
dictionary table — the on-disk analogue of the in-memory
:class:`~repro.db.columnar.TermInterner`.  Reads come back as
:class:`~repro.lang.terms.Term` objects that are *also* interned into
the process-wide :func:`~repro.db.columnar.shared_interner`, so rows
fetched from disk join seamlessly against in-memory columnar indexes.

The store is the data half of the demand-driven query path
(``docs/query.md``): :meth:`fetch` pulls only the tuples a magic
predicate asks for (a ``WHERE`` over the bound columns, answered from
per-column indexes), so a point query over a multi-million-fact EDB
never scans the fact base.  :meth:`relation` materializes a full
in-memory :class:`Relation` for code that needs the classical
interface, and is deliberately documented as expensive.

Attach a store to a knowledge base with
:meth:`repro.kb.KnowledgeBase.attach_edb`, or to a server with
``olp serve --edb PATH``.  Stores are read-only at serve time: writes
flow through the ordinary delta pipeline, never into the file.
"""

from __future__ import annotations

import json
import sqlite3
from typing import Iterable, Iterator, Optional, Sequence

from ..lang.literals import Atom, Literal
from ..lang.rules import Rule
from ..lang.terms import Compound, Constant, Term
from .columnar import TermInterner, shared_interner
from .relation import Relation

__all__ = ["EdbStore", "EdbError"]

#: Schema version recorded in the ``meta`` table.
FORMAT = "edb/1"


class EdbError(ValueError):
    """Raised for malformed stores or invalid relation operations."""


def _encode_term(term: Term) -> object:
    """A JSON-serializable encoding of a ground term.

    ``[0, n]`` for integer constants, ``[1, s]`` for symbolic
    constants, ``[2, functor, [args...]]`` for compounds.  The encoding
    is injective, so the ``terms`` table can UNIQUE-constrain it.
    """
    if isinstance(term, Constant):
        if isinstance(term.value, int):
            return [0, term.value]
        return [1, term.value]
    if isinstance(term, Compound):
        return [2, term.functor, [_encode_term(a) for a in term.args]]
    raise EdbError(f"only ground terms can be stored, got {term!r}")


def _decode_term(payload: object) -> Term:
    tag = payload[0]  # type: ignore[index]
    if tag == 0 or tag == 1:
        return Constant(payload[1])  # type: ignore[index]
    if tag == 2:
        return Compound(
            payload[1],  # type: ignore[index]
            tuple(_decode_term(a) for a in payload[2]),  # type: ignore[index]
        )
    raise EdbError(f"corrupt term encoding {payload!r}")


def _table(name: str) -> str:
    if not name.isidentifier():
        raise EdbError(f"invalid relation name {name!r}")
    return f"rel_{name}"


class EdbStore:
    """One SQLite file holding extensional relations as id columns.

    Args:
        path: the database file (``":memory:"`` works for tests).
        object_name: the knowledge-base object the facts belong to;
            recorded in the file on creation, read back on open.
    """

    def __init__(
        self,
        path: str,
        object_name: Optional[str] = None,
        interner: Optional[TermInterner] = None,
    ) -> None:
        self.path = path
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self.interner = interner if interner is not None else shared_interner()
        #: tid -> decoded Term, and its inverse, filled lazily on reads.
        self._terms: dict[int, Term] = {}
        self._tids: dict[Term, int] = {}
        self._arities: dict[str, int] = {}
        self._init_schema(object_name)

    # ------------------------------------------------------------------
    # Schema
    # ------------------------------------------------------------------
    def _init_schema(self, object_name: Optional[str]) -> None:
        cur = self._conn.cursor()
        cur.execute(
            "CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT)"
        )
        cur.execute(
            "CREATE TABLE IF NOT EXISTS terms "
            "(tid INTEGER PRIMARY KEY, text TEXT UNIQUE NOT NULL)"
        )
        cur.execute(
            "CREATE TABLE IF NOT EXISTS relations "
            "(name TEXT PRIMARY KEY, arity INTEGER NOT NULL)"
        )
        stored = self._meta("format")
        if stored is None:
            self._set_meta("format", FORMAT)
        elif stored != FORMAT:
            raise EdbError(
                f"unsupported EDB format {stored!r} in {self.path}"
            )
        if object_name is not None:
            self._set_meta("object", object_name)
        elif self._meta("object") is None:
            self._set_meta("object", "edb")
        for name, arity in cur.execute("SELECT name, arity FROM relations"):
            self._arities[name] = arity
        self._conn.commit()

    def _meta(self, key: str) -> Optional[str]:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        return row[0] if row else None

    def _set_meta(self, key: str, value: str) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
            (key, value),
        )

    @property
    def object_name(self) -> str:
        """The knowledge-base object this store's facts belong to."""
        return self._meta("object") or "edb"

    # ------------------------------------------------------------------
    # Writing (load time; the server never writes here)
    # ------------------------------------------------------------------
    def _tid(self, term: Term, cur: sqlite3.Cursor) -> int:
        tid = self._tids.get(term)
        if tid is not None:
            return tid
        text = json.dumps(_encode_term(term), separators=(",", ":"))
        row = cur.execute(
            "SELECT tid FROM terms WHERE text = ?", (text,)
        ).fetchone()
        if row is None:
            cur.execute("INSERT INTO terms (text) VALUES (?)", (text,))
            tid = cur.lastrowid
        else:
            tid = row[0]
        self._tids[term] = tid
        self._terms[tid] = term
        self.interner.intern(term)
        return tid

    def bulk_load(
        self, name: str, arity: int, rows: Iterable[Sequence[Term]]
    ) -> int:
        """Create (or extend) one relation with ground rows; returns the
        number of rows inserted.  One transaction, duplicate rows are
        collapsed by the table's primary key."""
        if arity < 0:
            raise EdbError("arity must be non-negative")
        known = self._arities.get(name)
        if known is not None and known != arity:
            raise EdbError(
                f"relation {name!r} has arity {known}, not {arity}"
            )
        table = _table(name)
        cur = self._conn.cursor()
        if known is None:
            cols = ", ".join(f"c{i} INTEGER NOT NULL" for i in range(arity))
            key = ", ".join(f"c{i}" for i in range(arity))
            if arity:
                cur.execute(
                    f"CREATE TABLE IF NOT EXISTS {table} "
                    f"({cols}, PRIMARY KEY ({key})) WITHOUT ROWID"
                )
                for i in range(arity):
                    cur.execute(
                        f"CREATE INDEX IF NOT EXISTS idx_{table}_c{i} "
                        f"ON {table} (c{i})"
                    )
            else:
                cur.execute(
                    f"CREATE TABLE IF NOT EXISTS {table} "
                    "(present INTEGER PRIMARY KEY)"
                )
            cur.execute(
                "INSERT OR REPLACE INTO relations (name, arity) VALUES (?, ?)",
                (name, arity),
            )
            self._arities[name] = arity
        inserted = 0
        if arity:
            marks = ", ".join("?" for _ in range(arity))
            sql = f"INSERT OR IGNORE INTO {table} VALUES ({marks})"
            encoded = []
            for row in rows:
                if len(row) != arity:
                    raise EdbError(
                        f"row {tuple(map(str, row))} does not match "
                        f"arity {arity} of {name!r}"
                    )
                encoded.append(tuple(self._tid(t, cur) for t in row))
            cur.executemany(sql, encoded)
            inserted += max(cur.rowcount, 0)
        else:
            for _ in rows:
                cur.execute(f"INSERT OR IGNORE INTO {table} VALUES (1)")
                inserted += cur.rowcount
        self._conn.commit()
        return inserted

    def load_database(self, database) -> int:
        """Load every relation of an in-memory
        :class:`~repro.db.database.Database`."""
        total = 0
        for name in database.names():
            rel = database.relation(name)
            total += self.bulk_load(rel.name, rel.arity, rel.rows)
        return total

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._arities))

    def arity(self, name: str) -> Optional[int]:
        """The relation's arity, or None when the store has no such
        relation."""
        return self._arities.get(name)

    def count(self, name: str) -> int:
        if name not in self._arities:
            return 0
        row = self._conn.execute(
            f"SELECT COUNT(*) FROM {_table(name)}"
        ).fetchone()
        return row[0]

    def _term(self, tid: int) -> Term:
        term = self._terms.get(tid)
        if term is None:
            row = self._conn.execute(
                "SELECT text FROM terms WHERE tid = ?", (tid,)
            ).fetchone()
            if row is None:
                raise EdbError(f"dangling term id {tid} in {self.path}")
            term = _decode_term(json.loads(row[0]))
            self._terms[tid] = term
            self._tids[term] = tid
            # Key disk rows through the shared interner so fetched terms
            # carry process-wide dense ids like any in-memory relation.
            self.interner.intern(term)
        return term

    def fetch(
        self, name: str, pattern: Sequence[Optional[Term]]
    ) -> Iterator[tuple[Term, ...]]:
        """Rows of one relation matching a positional pattern.

        ``pattern`` holds one entry per column: a ground term constrains
        the column, None leaves it free.  Only the constrained columns
        are touched (per-column indexes); this is the only read the
        demand evaluator issues.
        """
        arity = self._arities.get(name)
        if arity is None or len(pattern) != arity:
            return
        if arity == 0:
            if self._conn.execute(
                f"SELECT 1 FROM {_table(name)} LIMIT 1"
            ).fetchone():
                yield ()
            return
        where = []
        params: list[int] = []
        for i, term in enumerate(pattern):
            if term is None:
                continue
            tid = self._tids.get(term)
            if tid is None:
                text = json.dumps(_encode_term(term), separators=(",", ":"))
                row = self._conn.execute(
                    "SELECT tid FROM terms WHERE text = ?", (text,)
                ).fetchone()
                if row is None:
                    return  # the constant never occurs: no rows
                tid = row[0]
                self._tids[term] = tid
                self._terms[tid] = term
                self.interner.intern(term)
            where.append(f"c{i} = ?")
            params.append(tid)
        sql = f"SELECT * FROM {_table(name)}"
        if where:
            sql += " WHERE " + " AND ".join(where)
        for row in self._conn.execute(sql, params):
            yield tuple(self._term(tid) for tid in row)

    def sample(self, name: str, limit: int = 32) -> list[tuple[Term, ...]]:
        """Up to ``limit`` rows, for sort inference in the abstract
        analyzer — never used for answering queries."""
        arity = self._arities.get(name)
        if arity is None:
            return []
        if arity == 0:
            return [()] if self.count(name) else []
        rows = self._conn.execute(
            f"SELECT * FROM {_table(name)} LIMIT ?", (limit,)
        ).fetchall()
        return [tuple(self._term(tid) for tid in row) for row in rows]

    def relation(self, name: str) -> Relation:
        """The full relation materialized in memory.

        **Expensive**: reads every row off disk.  Exists for
        compatibility with the classical :class:`Relation` interface;
        the demand path never calls it.
        """
        arity = self._arities.get(name)
        if arity is None:
            raise EdbError(f"no relation named {name!r} in {self.path}")
        return Relation(name, arity, list(self.fetch(name, (None,) * arity)))

    def facts(self) -> Iterator[Rule]:
        """Every stored tuple as a ground fact rule, relation by
        relation — the shape :meth:`KnowledgeBase.tell_facts` expects.
        **Expensive** for large stores (full scan); materialization-time
        only."""
        for name in self.names():
            arity = self._arities[name]
            for row in self.fetch(name, (None,) * arity):
                yield Rule(Literal(Atom(name, row), True))

    def total_facts(self) -> int:
        return sum(self.count(name) for name in self._arities)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "EdbStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return (
            f"EdbStore({self.path!r}, object={self.object_name!r}, "
            f"relations={len(self._arities)})"
        )
