"""A small extensional database: named relations plus conversions to
and from the logic side (facts, components)."""

from __future__ import annotations

from typing import Iterable, Iterator, Union

from ..lang.literals import Literal
from ..lang.program import Component
from ..lang.rules import Rule
from ..lang.terms import Term
from .relation import Relation, RelationError

__all__ = ["Database"]


class Database:
    """A mutable collection of extensional relations.

    >>> db = Database()
    >>> db.insert("parent", ("adam", "cain"))
    >>> db.insert("parent", ("adam", "abel"))
    >>> len(db.relation("parent"))
    2
    """

    def __init__(self, relations: Iterable[Relation] = ()) -> None:
        self._relations: dict[str, Relation] = {}
        for relation in relations:
            self.add_relation(relation)

    # ------------------------------------------------------------------
    # Schema and updates
    # ------------------------------------------------------------------
    def add_relation(self, relation: Relation) -> None:
        existing = self._relations.get(relation.name)
        if existing is not None and existing.arity != relation.arity:
            raise RelationError(
                f"relation {relation.name!r} already has arity {existing.arity}"
            )
        if existing is None:
            self._relations[relation.name] = relation
        else:
            self._relations[relation.name] = existing.union(relation)

    def insert(self, name: str, row: Iterable[Union[Term, str, int]]) -> None:
        """Insert one tuple, creating the relation on first use."""
        row = tuple(row)
        existing = self._relations.get(name)
        if existing is None:
            self._relations[name] = Relation(name, len(row), [row])
        else:
            self._relations[name] = existing.with_rows([row])

    def relation(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise RelationError(f"no relation named {name!r}") from None

    def __contains__(self, name: object) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[Relation]:
        return iter(
            self._relations[name] for name in sorted(self._relations)
        )

    def names(self) -> frozenset[str]:
        return frozenset(self._relations)

    # ------------------------------------------------------------------
    # Bridges to the logic side
    # ------------------------------------------------------------------
    def facts(self) -> list[Rule]:
        """Every tuple as a ground fact, deterministically ordered."""
        result = []
        for relation in self:
            for atom in sorted(relation.atoms(), key=str):
                result.append(Rule(Literal(atom, True), ()))
        return result

    def as_component(self, name: str = "edb") -> Component:
        """The whole database as one component of facts."""
        return Component(name, self.facts())

    def copy(self) -> "Database":
        """An independent copy (relations are immutable and shared)."""
        clone = Database()
        clone._relations = dict(self._relations)
        return clone

    @classmethod
    def from_facts(cls, facts: Iterable[Rule]) -> "Database":
        """Build a database from ground positive facts."""
        db = cls()
        for fact in facts:
            if not fact.is_fact or not fact.head.positive or not fact.is_ground:
                raise RelationError(f"not a ground positive fact: {fact}")
            db.insert(fact.head.predicate, fact.head.args)
        return db
