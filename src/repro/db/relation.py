"""Relations: named sets of ground tuples (the paper's database side).

Example 6 defines ``parent`` "through a database relation [U]"; this
module supplies that substrate.  A :class:`Relation` is an immutable
named set of equal-length tuples of ground terms, with the relational
operations the Datalog engine needs (selection, projection, natural
join via patterns, union, difference).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Union

from ..lang.errors import ReproError
from ..lang.literals import Atom
from ..lang.terms import Term, term_from_python

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .columnar import ColumnarIndex

__all__ = ["RelationError", "Relation"]

#: A database tuple: ground terms.
Row = tuple[Term, ...]


class RelationError(ReproError):
    """Raised for arity mismatches and non-ground tuples."""


def _coerce_row(values: Iterable[Union[Term, str, int]], arity: int) -> Row:
    row = tuple(term_from_python(v) for v in values)
    if len(row) != arity:
        raise RelationError(
            f"expected a tuple of arity {arity}, got {len(row)}: {row}"
        )
    for term in row:
        if not term.is_ground:
            raise RelationError(f"database tuples must be ground: {row}")
    return row


class Relation:
    """An immutable named relation.

    Construction accepts plain Python values (strings become symbolic
    constants, ints become integer constants):

    >>> parent = Relation("parent", 2, [("adam", "cain"), ("adam", "abel")])
    >>> len(parent)
    2
    """

    __slots__ = ("name", "arity", "_rows", "_columnar")

    def __init__(
        self,
        name: str,
        arity: int,
        rows: Iterable[Iterable[Union[Term, str, int]]] = (),
    ) -> None:
        if not name:
            raise RelationError("relation name must be non-empty")
        if arity < 0:
            raise RelationError("arity must be non-negative")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "arity", arity)
        object.__setattr__(
            self, "_rows", frozenset(_coerce_row(r, arity) for r in rows)
        )
        object.__setattr__(self, "_columnar", None)

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("Relation is immutable")

    # ------------------------------------------------------------------
    # Basic access
    # ------------------------------------------------------------------
    @property
    def rows(self) -> frozenset[Row]:
        return self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(sorted(self._rows, key=str))

    def __contains__(self, row: object) -> bool:
        if isinstance(row, tuple):
            try:
                return _coerce_row(row, self.arity) in self._rows
            except RelationError:
                return False
        return False

    def atoms(self) -> frozenset[Atom]:
        """The relation as a set of ground atoms ``name(row...)``."""
        return frozenset(Atom(self.name, row) for row in self._rows)

    def columnar(self) -> "ColumnarIndex":
        """The relation's columnar index (interned id columns + cached
        sort orders), built lazily on first join and reused — the
        relation is immutable, so the index never goes stale."""
        index = self._columnar
        if index is None:
            from .columnar import ColumnarIndex

            index = ColumnarIndex(self)
            object.__setattr__(self, "_columnar", index)
        return index

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def _same_shape(self, other: "Relation") -> None:
        if other.arity != self.arity:
            raise RelationError(
                f"arity mismatch: {self.name}/{self.arity} vs "
                f"{other.name}/{other.arity}"
            )

    def select(self, predicate: Callable[[Row], bool]) -> "Relation":
        """Rows satisfying a Python predicate."""
        return Relation(self.name, self.arity, filter(predicate, self._rows))

    def select_eq(self, position: int, value: Union[Term, str, int]) -> "Relation":
        """Rows whose ``position``-th column equals the value."""
        term = term_from_python(value)
        return self.select(lambda row: row[position] == term)

    def project(self, positions: Iterable[int]) -> "Relation":
        """The relation restricted to the given columns (in order)."""
        positions = tuple(positions)
        return Relation(
            self.name,
            len(positions),
            (tuple(row[i] for i in positions) for row in self._rows),
        )

    def union(self, other: "Relation") -> "Relation":
        self._same_shape(other)
        return Relation(self.name, self.arity, self._rows | other._rows)

    def difference(self, other: "Relation") -> "Relation":
        self._same_shape(other)
        return Relation(self.name, self.arity, self._rows - other._rows)

    def intersection(self, other: "Relation") -> "Relation":
        self._same_shape(other)
        return Relation(self.name, self.arity, self._rows & other._rows)

    def join(
        self, other: "Relation", positions: Iterable[tuple[int, int]]
    ) -> "Relation":
        """Equi-join on ``(my column, their column)`` pairs; the result
        columns are mine followed by theirs (no deduplication of join
        columns — project afterwards)."""
        positions = tuple(positions)
        if not positions:
            # Degenerate cross product: no keys to merge on.
            combined = [
                row + match for row in self._rows for match in other._rows
            ]
            return Relation(self.name, self.arity + other.arity, combined)
        # Sorted-merge over the columnar indexes: key columns are dense
        # interned term ids, so the merge compares machine ints instead
        # of hashing structured terms per probe.
        from .columnar import merge_join

        left, right = self.columnar(), other.columnar()
        lrows, rrows = left.rows, right.rows
        combined = [
            lrows[i] + rrows[j]
            for i, j in merge_join(
                left,
                right,
                tuple(i for i, _ in positions),
                tuple(j for _, j in positions),
            )
        ]
        return Relation(self.name, self.arity + other.arity, combined)

    def with_rows(
        self, extra: Iterable[Iterable[Union[Term, str, int]]]
    ) -> "Relation":
        """A new relation with extra rows added."""
        added = frozenset(_coerce_row(r, self.arity) for r in extra)
        return Relation(self.name, self.arity, self._rows | added)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Relation)
            and other.name == self.name
            and other.arity == self.arity
            and other._rows == self._rows
        )

    def __hash__(self) -> int:
        return hash((self.name, self.arity, self._rows))

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return f"Relation({self.name}/{self.arity}, {len(self._rows)} rows)"
