"""Query answering over ordered semantics.

Three entailment modes, all standard for partial-model semantics:

* **cautious** — true in the least model ``V↑ω(∅)`` (the paper's
  assumption-free core: nothing in it depends on any assumption);
* **skeptical** — true in every stable model;
* **credulous** — true in some stable model.

Queries are literal *patterns*: ``fly(X)`` asks for every binding of
``X`` that makes the literal entailed.  Answers carry the matched ground
literal and the substitution that produced it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Sequence, Union

from ..core.interpretation import Interpretation
from ..core.semantics import OrderedSemantics
from ..core.transform import DEMAND_STRATEGY
from ..grounding.substitution import Substitution, match_atom
from ..lang.errors import QueryError
from ..lang.literals import Literal
from ..lang.parser import parse_literal

__all__ = ["QueryMode", "Answer", "evaluate_query", "answers_in"]


class QueryMode(enum.Enum):
    CAUTIOUS = "cautious"
    SKEPTICAL = "skeptical"
    CREDULOUS = "credulous"


@dataclass(frozen=True)
class Answer:
    """One query answer: the entailed ground literal and the bindings."""

    literal: Literal
    bindings: Substitution

    def __str__(self) -> str:
        return f"{self.literal}  {self.bindings}"


def _entailed_sets(
    semantics: OrderedSemantics, mode: QueryMode
) -> list[Interpretation]:
    if mode is QueryMode.CAUTIOUS:
        return [semantics.least_model]
    stable = semantics.stable_models()
    if not stable:
        # A stable model always exists (the least model is assumption-free
        # and the AF family is finite), so this is defensive only.
        return [semantics.least_model]
    return stable


def answers_in(
    interp: Interpretation, pattern: Union[Literal, str]
) -> list[Answer]:
    """All matches of a literal pattern in one interpretation.

    This is cautious entailment against an already-materialized model —
    the lock-free read path of the query server evaluates patterns
    against published snapshot models through this function, without
    touching an :class:`OrderedSemantics`.
    """
    if isinstance(pattern, str):
        pattern = parse_literal(pattern)
    answers = [Answer(lit, bindings) for lit, bindings in _matches(interp, pattern)]
    return sorted(answers, key=lambda a: str(a.literal))


def evaluate_query(
    semantics: OrderedSemantics,
    pattern: Union[Literal, str],
    mode: Union[QueryMode, str] = QueryMode.CAUTIOUS,
    sources: Sequence = (),
) -> list[Answer]:
    """All answers to a literal pattern under the given mode.

    For cautious mode, answers are matches in the least model.  For
    skeptical mode, matches true in *every* stable model; for credulous
    mode, matches true in *some* stable model.

    Under ``strategy="demand"``, cautious queries are answered
    goal-directed through :func:`repro.query.demand_answers` (with
    ``sources`` as extra extensional fact sources) whenever the view is
    eligible; anything else falls back to the materialized path below.
    """
    if isinstance(pattern, str):
        pattern = parse_literal(pattern)
    if isinstance(mode, str):
        try:
            mode = QueryMode(mode)
        except ValueError:
            raise QueryError(
                f"unknown query mode {mode!r}; "
                f"use one of {[m.value for m in QueryMode]}"
            ) from None
    if semantics.strategy == DEMAND_STRATEGY:
        from ..query import demand_answers  # deferred: repro.query imports us

        result = demand_answers(
            semantics.program,
            semantics.component,
            pattern,
            mode.value,
            sources=tuple(sources),
        )
        if result.used:
            assert result.answers is not None
            return result.answers
    models = _entailed_sets(semantics, mode)
    candidates = _matches(models[0], pattern)
    answers = []
    for literal, bindings in candidates:
        if mode is QueryMode.SKEPTICAL:
            if not all(literal in m for m in models):
                continue
        answers.append(Answer(literal, bindings))
    if mode is QueryMode.CREDULOUS:
        seen = {a.literal for a in answers}
        for m in models[1:]:
            for literal, bindings in _matches(m, pattern):
                if literal not in seen:
                    seen.add(literal)
                    answers.append(Answer(literal, bindings))
    return sorted(answers, key=lambda a: str(a.literal))


def _matches(
    interp: Interpretation, pattern: Literal
) -> Iterator[tuple[Literal, Substitution]]:
    for literal in interp:
        if literal.positive != pattern.positive:
            continue
        bindings = match_atom(pattern.atom, literal.atom)
        if bindings is not None:
            yield literal, bindings
