"""Knowledge-base shell: objects, isa inheritance, defaults and
exceptions, versioning, and query answering (cautious / skeptical /
credulous)."""

from .knowledge_base import KnowledgeBase
from .query import Answer, QueryMode, evaluate_query

__all__ = ["KnowledgeBase", "Answer", "QueryMode", "evaluate_query"]
