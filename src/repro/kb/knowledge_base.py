"""An object-oriented knowledge-base shell over ordered programs.

Section 1 of the paper pitches ordered logic as "a novel attempt to
combine the logic paradigm with the object-oriented one in knowledge
base systems": components are *objects*, the ``<`` relation is an *isa*
hierarchy carrying rule inheritance, local rules hide (overrule) global
rules, and a most specific module doubles as a new *version* of a more
general one (Section 5).

:class:`KnowledgeBase` is the mutable builder exposing those
abstractions:

>>> kb = KnowledgeBase()
>>> kb.define("bird", '''
...     fly(X) :- bird_of(X).
... ''')
>>> kb.define("penguin", '''
...     -fly(X) :- penguin_of(X).
...     bird_of(X) :- penguin_of(X).
... ''', isa=["bird"])
>>> kb.tell("penguin", "penguin_of(tweety).")
>>> kb.ask("penguin", "-fly(tweety)")
True

Mutations are absorbed *incrementally* (docs/maintenance.md): telling
or retracting ground facts only dirties the cached views whose ``C*``
contains the mutated object, and a dirty view repairs itself through
the delta engine on its next read instead of recomputing from scratch.
Structural mutations (non-fact rules, new isa edges, closure
assumptions) still drop the affected views.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

from ..core.interpretation import Interpretation, TruthValue
from ..core.maintenance import ASSERT, RETRACT, MaintenanceConfig
from ..core.semantics import OrderedSemantics
from ..core.solver import SearchBudget
from ..core.transform import AUTO_STRATEGY, DEMAND_STRATEGY
from ..grounding.grounder import GroundingOptions
from ..lang.errors import QueryError, SemanticsError
from ..lang.literals import Literal
from ..lang.parser import parse_literal, parse_rules
from ..lang.poset import PartialOrder
from ..obs import get_instrumentation
from ..lang.program import Component, OrderedProgram
from ..lang.rules import Rule
from .query import Answer, QueryMode, evaluate_query

__all__ = ["KnowledgeBase"]


class KnowledgeBase:
    """A mutable collection of objects (components) with isa inheritance.

    Terminology: ``child isa parent`` puts ``child < parent`` in the
    order, so the child *sees and may overrule* the parent's rules.
    """

    def __init__(
        self,
        grounding: Optional[GroundingOptions] = None,
        budget: Optional[SearchBudget] = None,
        maintenance: Optional[MaintenanceConfig] = None,
    ) -> None:
        self._rules: dict[str, list[Rule]] = {}
        self._pairs: set[tuple[str, str]] = set()
        self._grounding = grounding if grounding is not None else GroundingOptions()
        self._budget = budget if budget is not None else SearchBudget()
        self._maintenance = (
            maintenance if maintenance is not None else MaintenanceConfig()
        )
        self._semantics_cache: dict[str, OrderedSemantics] = {}
        #: Fact deltas queued per cached view, flushed on next read.
        self._pending: dict[str, list[tuple[str, str, Literal]]] = {}
        #: Disk-backed extensional stores per object (read-only here;
        #: writes keep flowing through tell/retract + the delta engine).
        self._edb: dict[str, object] = {}

    @classmethod
    def from_program(
        cls,
        program: OrderedProgram,
        grounding: Optional[GroundingOptions] = None,
        budget: Optional[SearchBudget] = None,
        maintenance: Optional[MaintenanceConfig] = None,
    ) -> "KnowledgeBase":
        """A mutable knowledge base over an existing ordered program.

        The program's components become objects and its order relation
        the isa hierarchy, verbatim (no implicit ``_defaults`` linking),
        so ``kb.program()`` round-trips to an order-equivalent program.
        """
        kb = cls(grounding=grounding, budget=budget, maintenance=maintenance)
        kb._rules = {c.name: list(c.rules) for c in program.components()}
        kb._pairs = set(program.order.pairs())
        return kb

    # ------------------------------------------------------------------
    # Configuration (read-only; the option objects are frozen)
    # ------------------------------------------------------------------
    @property
    def grounding(self) -> GroundingOptions:
        return self._grounding

    @property
    def budget(self) -> SearchBudget:
        return self._budget

    @property
    def maintenance(self) -> MaintenanceConfig:
        return self._maintenance

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def define(
        self,
        name: str,
        rules: Union[str, Iterable[Rule]] = (),
        isa: Sequence[str] = (),
    ) -> None:
        """Create an object with optional rules and isa parents.

        Raises:
            SemanticsError: if the object already exists or a parent is
                unknown.
        """
        if name in self._rules:
            raise SemanticsError(f"object {name!r} already defined")
        self._rules[name] = self._parse(rules)
        for parent in isa:
            self._link(name, parent)
        if self.DEFAULTS_OBJECT in self._rules and name != self.DEFAULTS_OBJECT:
            self._pairs.add((name, self.DEFAULTS_OBJECT))
        # A fresh object sits below (or beside) everything that exists,
        # so no cached view can see it: existing views stay warm.

    def tell(self, name: str, rules: Union[str, Iterable[Rule]]) -> None:
        """Add rules to an existing object.

        Ground facts flow to the cached views through the delta engine
        (only views whose ``C*`` contains ``name`` are touched); any
        non-fact rule makes the mutation structural, dropping the
        views that see ``name``.
        """
        self._require(name)
        parsed = self._parse(rules)
        self._rules[name].extend(parsed)
        if all(r.is_fact and r.is_ground for r in parsed):
            self._queue_facts(ASSERT, name, parsed)
        else:
            self._drop_views_seeing(name)

    def isa(self, child: str, parent: str) -> None:
        """Declare ``child < parent`` (child inherits from parent)."""
        self._require(child)
        self._link(child, parent)
        # Every view that sees the child now also sees the parent's
        # rules: structural for exactly those views.
        self._drop_views_seeing(child)

    def tell_facts(self, name: str, database) -> None:
        """Load an extensional :class:`repro.db.Database` into an object
        as ground facts (Example 6's "parent is defined through a
        database relation")."""
        self._require(name)
        facts = list(database.facts())
        self._rules[name].extend(facts)
        if all(r.is_fact and r.is_ground for r in facts):
            self._queue_facts(ASSERT, name, facts)
        else:  # pragma: no cover - databases produce ground facts
            self._drop_views_seeing(name)

    def attach_edb(self, name: str, store) -> None:
        """Attach a disk-backed :class:`~repro.db.edb.EdbStore` to an
        object as its extensional fact base.

        The store is read-only from the knowledge base's point of view:
        subsequent :meth:`tell`/:meth:`retract` calls keep flowing
        through the delta pipeline and are unioned with the store's
        rows at query time.  Demand queries (``strategy="demand"``)
        fetch only the tuples their magic predicates request; full
        materialization (:meth:`view`, :meth:`least_model`) scans the
        store into the program, which is expensive by design — see
        ``docs/query.md``.

        The object is created when it does not exist yet.
        """
        if name not in self._rules:
            self.define(name)
        self._edb[name] = store
        self._drop_views_seeing(name)

    def edb_sources(self, name: str) -> tuple:
        """The attached EDB stores visible from ``name``'s view, as
        :class:`~repro.query.sources.FactSource` objects."""
        self._require(name)
        if not self._edb:
            return ()
        from ..query.sources import EdbFactSource

        return tuple(
            EdbFactSource(self._edb[obj])
            for obj in sorted(self.scope(name))
            if obj in self._edb
        )

    def retract(self, name: str, rules: Union[str, Iterable[Rule]]) -> None:
        """Remove previously told ground facts from an object.

        Each fact removes one told copy; affected cached views repair
        incrementally on their next read (a retraction can un-overrule
        or un-defeat inherited rules, restoring more general defaults).

        Raises:
            SemanticsError: if a rule is not a ground fact, or the fact
                was never told (the whole batch is rejected atomically).
        """
        self._require(name)
        parsed = self._parse(rules)
        bucket = self._rules[name]
        removals: dict[Rule, int] = {}
        for r in parsed:
            if not (r.is_fact and r.is_ground):
                raise SemanticsError(
                    f"only ground facts can be retracted, not {r}"
                )
            removals[r] = removals.get(r, 0) + 1
        for r, wanted in removals.items():
            present = sum(1 for existing in bucket if existing == r)
            if present < wanted:
                raise SemanticsError(
                    f"cannot retract {r} from object {name!r}: "
                    "fact was never told"
                )
        for r in parsed:
            bucket.remove(r)
        self._queue_facts(RETRACT, name, parsed)

    def derive(
        self,
        name: str,
        parent: str,
        rules: Union[str, Iterable[Rule]] = (),
    ) -> None:
        """Create a new *version* of ``parent``: a fresh most-specific
        object below it (Section 5's versioning reading)."""
        self.define(name, rules, isa=[parent])

    def apply_op(self, op: dict) -> None:
        """Apply one protocol-shaped write op (``{"op", "view", "rules",
        "isa"}``) to this knowledge base.

        This is the single replay path shared by WAL recovery, follower
        apply, and test oracles — whatever the server logged or streamed
        re-executes here through the same delta engine the leader used.

        Raises:
            SemanticsError: under exactly the conditions of the
                underlying :meth:`tell`/:meth:`retract`/:meth:`define`.
            ValueError: for an unknown op kind.
        """
        kind = op.get("op")
        view = op["view"]
        rules = op.get("rules") or ""
        if kind == "tell":
            self.tell(view, rules)
        elif kind == "retract":
            self.retract(view, rules)
        elif kind == "define":
            self.define(view, rules, isa=list(op.get("isa") or ()))
        else:
            raise ValueError(f"cannot replay unknown op {kind!r}")

    # ------------------------------------------------------------------
    # Negation conventions (Section 2's discussion after Example 4)
    # ------------------------------------------------------------------
    #: Name of the implicit defaults object holding closure assumptions.
    DEFAULTS_OBJECT = "_defaults"

    def assume_closed(
        self, predicate: str, arity: int, negative: bool = True
    ) -> None:
        """Declare a closure assumption for one predicate.

        The paper: "any assumption for deriving negative literals must
        be explicitly declared".  Three conventions are available per
        predicate:

        * ``assume_closed(p, n)`` — classical CWA: ``¬p(X..)`` holds
          unless overruled (the paper's situation (i));
        * ``assume_closed(p, n, negative=False)`` — the dual: ``p(X..)``
          holds unless overruled (situation (ii));
        * no declaration — everything stays undefined unless explicitly
          derived (situation (iii), the default).

        The assumption lives in an implicit most-general object
        ``_defaults`` placed above every user object, so every object's
        local and inherited rules overrule it.
        """
        from ..lang.literals import Atom, Literal
        from ..lang.terms import Variable

        variables = tuple(Variable(f"X{i + 1}") for i in range(arity))
        head = Literal(Atom(predicate, variables), not negative)
        if self.DEFAULTS_OBJECT not in self._rules:
            self._rules[self.DEFAULTS_OBJECT] = []
        existing_objects = [
            name for name in self._rules if name != self.DEFAULTS_OBJECT
        ]
        self._rules[self.DEFAULTS_OBJECT].append(Rule(head, ()))
        for name in existing_objects:
            pair = (name, self.DEFAULTS_OBJECT)
            if pair not in self._pairs:
                self._pairs.add(pair)
        self._invalidate()

    def _link(self, child: str, parent: str) -> None:
        self._require(parent)
        # Validate against cycles by building the order eagerly.
        trial = PartialOrder(self._rules.keys(), self._pairs)
        trial.add_pair(child, parent)
        self._pairs.add((child, parent))

    def _parse(self, rules: Union[str, Iterable[Rule]]) -> list[Rule]:
        if isinstance(rules, str):
            return parse_rules(rules)
        return list(rules)

    def _require(self, name: str) -> None:
        if name not in self._rules:
            raise SemanticsError(f"unknown object {name!r}")

    def _invalidate(self) -> None:
        self._semantics_cache.clear()
        self._pending.clear()

    # ------------------------------------------------------------------
    # Fine-grained invalidation (docs/maintenance.md)
    # ------------------------------------------------------------------
    def _poset(self) -> PartialOrder:
        return PartialOrder(self._rules.keys(), self._pairs)

    def seers(self, name: str) -> frozenset[str]:
        """Objects whose point of view sees ``name`` (``name ∈ C*``) —
        exactly the views a mutation of ``name`` can change."""
        self._require(name)
        return self._poset().downset(name)

    def scope(self, name: str) -> frozenset[str]:
        """The objects ``name``'s point of view consults (``C*``, the
        upset) — fixed once ``name`` is defined, since isa edges are
        only added at define time of the child.  Replication filters
        use it to select the journal prefix a view-subset follower
        needs (``docs/replication.md``)."""
        self._require(name)
        return self._poset().upset(name)

    def _seeing_views(self, name: str) -> list[str]:
        """Cached views whose ``C*`` contains ``name`` — exactly the
        views whose meaning a mutation of ``name`` can change."""
        if not self._semantics_cache:
            return []
        down = self._poset().downset(name)
        return [view for view in self._semantics_cache if view in down]

    def _drop_views_seeing(self, name: str) -> None:
        for view in self._seeing_views(name):
            del self._semantics_cache[view]
            self._pending.pop(view, None)

    def _queue_facts(
        self, kind: str, name: str, facts: Iterable[Rule]
    ) -> None:
        """Queue fact deltas for every cached view that sees ``name``;
        views that cannot see the object stay cached *and* clean."""
        if not self._maintenance.enabled:
            self._drop_views_seeing(name)
            return
        ops = [(kind, name, r.head) for r in facts]
        if not ops:
            return
        for view in self._seeing_views(name):
            self._pending.setdefault(view, []).extend(ops)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def objects(self) -> frozenset[str]:
        return frozenset(self._rules)

    def parents(self, name: str) -> frozenset[str]:
        """Direct isa parents of an object."""
        self._require(name)
        return frozenset(high for low, high in self._pairs if low == name)

    def program(self) -> OrderedProgram:
        """A snapshot of the knowledge base as an ordered program.

        Attached EDB stores are *not* expanded here (this snapshot must
        stay cheap — the server republishes it on every write); use
        :meth:`_program_for_eval` where materialization needs the
        extensional rows.
        """
        comps = [Component(name, rules) for name, rules in self._rules.items()]
        return OrderedProgram(comps, self._pairs)

    def _program_for_eval(self) -> OrderedProgram:
        """The program with attached EDB rows expanded into facts — the
        input to full materialization.  O(store size); the demand path
        never builds this."""
        if not self._edb:
            return self.program()
        comps = []
        for name, rules in self._rules.items():
            store = self._edb.get(name)
            if store is not None:
                rules = list(rules) + list(store.facts())
            comps.append(Component(name, rules))
        return OrderedProgram(comps, self._pairs)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def view(self, name: str) -> OrderedSemantics:
        """The semantics of the KB from one object's point of view.

        A cached view with queued fact deltas repairs itself through
        the delta engine before it is returned.
        """
        self._require(name)
        cached = self._semantics_cache.get(name)
        if cached is None:
            cached = OrderedSemantics(
                self._program_for_eval(),
                name,
                grounding=self._grounding,
                budget=self._budget,
                maintenance=self._maintenance,
            )
            self._semantics_cache[name] = cached
            self._pending.pop(name, None)
            return cached
        pending = self._pending.pop(name, None)
        if pending:
            with get_instrumentation().span(
                "kb.view.repair", view=name, ops=len(pending)
            ):
                cached.apply_ops(pending)
        return cached

    def ask(
        self,
        name: str,
        literal: Union[Literal, str],
        mode: Union[QueryMode, str] = QueryMode.CAUTIOUS,
        strategy: Optional[str] = None,
    ) -> bool:
        """Is a ground literal entailed from an object's point of view?"""
        return bool(self.query(name, literal, mode, strategy=strategy))

    def value(self, name: str, literal: Union[Literal, str]) -> TruthValue:
        """Truth value in the object's least model."""
        return self.view(name).value(literal)

    def query(
        self,
        name: str,
        pattern: Union[Literal, str],
        mode: Union[QueryMode, str] = QueryMode.CAUTIOUS,
        strategy: Optional[str] = None,
    ) -> list[Answer]:
        """All bindings of a literal pattern entailed at an object.

        ``strategy`` selects the read path: ``"demand"`` answers
        goal-directed through the magic-sets rewrite where sound (and
        silently falls back to materialization where not);
        ``"auto"``/None additionally requires a cautious ground point
        query with no warm materialized view (or an attached EDB) before
        trying the demand path.  Answers are identical either way —
        see ``docs/query.md``.
        """
        self._require(name)
        if strategy not in (None, AUTO_STRATEGY, DEMAND_STRATEGY):
            raise QueryError(
                f"unknown query strategy {strategy!r}; "
                f"use one of {AUTO_STRATEGY!r}, {DEMAND_STRATEGY!r}"
            )
        if isinstance(pattern, str):
            pattern = parse_literal(pattern)
        if strategy == DEMAND_STRATEGY or self._auto_demand(name, pattern, mode):
            answers = self._demand_query(name, pattern, mode)
            if answers is not None:
                return answers
        return evaluate_query(self.view(name), pattern, mode)

    def _auto_demand(
        self, name: str, pattern: Literal, mode: Union[QueryMode, str]
    ) -> bool:
        """Should an unforced query try the demand path first?  Yes for
        cautious ground point queries when materialization would not be
        (or stay) free: the view is cold, or an EDB store is attached."""
        if mode not in (QueryMode.CAUTIOUS, QueryMode.CAUTIOUS.value):
            return False
        if not pattern.is_ground:
            return False
        if any(obj in self._edb for obj in self.scope(name)):
            return True
        return name not in self._semantics_cache

    def _demand_query(
        self, name: str, pattern: Literal, mode: Union[QueryMode, str]
    ) -> Optional[list[Answer]]:
        """Goal-directed answers, or None when the demand path declined
        (the caller then materializes)."""
        from ..query import demand_answers

        mode_value = mode.value if isinstance(mode, QueryMode) else str(mode)
        result = demand_answers(
            self.program(),
            name,
            pattern,
            mode_value,
            sources=self.edb_sources(name),
        )
        return result.answers if result.used else None

    def least_model(self, name: str) -> Interpretation:
        return self.view(name).least_model

    def stable_models(self, name: str) -> list[Interpretation]:
        return self.view(name).stable_models()
