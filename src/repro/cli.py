"""Command-line interface: run ``.olp`` programs under any semantics.

Installed as ``olp`` (also ``python -m repro``).  Subcommands:

* ``olp run FILE -c COMPONENT`` — print the least model; ``--semantics``
  selects stable / assumption-free / all-models enumeration instead.
* ``olp query FILE -c COMPONENT -q 'fly(X)'`` — answer a literal
  pattern under cautious / skeptical / credulous entailment.
* ``olp explain FILE -c COMPONENT`` — Definition-2 status of every
  ground rule under the least model, plus the conflict summary.
* ``olp stats FILE`` — structural statistics of the program.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .analysis.conflicts import conflict_summary
from .analysis.stats import program_stats
from .core.semantics import OrderedSemantics
from .kb.query import evaluate_query
from .lang.errors import ReproError
from .lang.parser import parse_program
from .lang.program import OrderedProgram

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="olp",
        description="Ordered logic programming (Laenens, Sacca & Vermeir, SIGMOD 1990)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="compute the meaning of a component")
    _add_common(run)
    run.add_argument(
        "--semantics",
        choices=["least", "stable", "af", "models", "total", "exhaustive"],
        default="least",
        help="which models to compute (default: the least model)",
    )
    run.add_argument(
        "--json",
        action="store_true",
        help="emit the result as JSON (see repro.serialize for the schema)",
    )

    query = sub.add_parser("query", help="answer a literal pattern")
    _add_common(query)
    query.add_argument("-q", "--query", required=True, help="literal pattern, e.g. 'fly(X)'")
    query.add_argument(
        "--mode",
        choices=["cautious", "skeptical", "credulous"],
        default="cautious",
    )

    explain = sub.add_parser(
        "explain", help="rule statuses under the least model + conflicts"
    )
    _add_common(explain)

    why = sub.add_parser(
        "why", help="derivation tree (or failure analysis) for a literal"
    )
    _add_common(why)
    why.add_argument("-q", "--query", required=True, help="ground literal")

    stats = sub.add_parser("stats", help="structural program statistics")
    stats.add_argument("file", help="path to an .olp file")

    lint = sub.add_parser(
        "lint",
        help="find conclusions that can never fire (closure gaps)",
    )
    lint.add_argument("file", help="path to an .olp file")
    lint.add_argument(
        "--max-depth",
        type=int,
        default=None,
        help="Herbrand-universe depth bound (needed with function symbols)",
    )

    repl = sub.add_parser("repl", help="interactive ordered-logic shell")
    repl.add_argument("file", nargs="?", default=None, help="optional .olp to load")
    return parser


def _add_common(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("file", help="path to an .olp file")
    sub.add_argument(
        "-c",
        "--component",
        default=None,
        help="component whose point of view to take (default: the unique "
        "minimal component)",
    )
    sub.add_argument(
        "--max-depth",
        type=int,
        default=None,
        help="Herbrand-universe depth bound (needed with function symbols)",
    )


def _load(path: str) -> OrderedProgram:
    with open(path) as handle:
        return parse_program(handle.read())


def _pick_component(program: OrderedProgram, requested: Optional[str]) -> str:
    if requested is not None:
        return requested
    minimal = sorted(program.order.minimal_elements())
    if len(minimal) == 1:
        return minimal[0]
    raise ReproError(
        f"program has several minimal components {minimal}; pick one with -c"
    )


def _semantics(args: argparse.Namespace) -> OrderedSemantics:
    from .grounding.grounder import GroundingOptions

    program = _load(args.file)
    component = _pick_component(program, args.component)
    return OrderedSemantics(
        program, component, grounding=GroundingOptions(max_depth=args.max_depth)
    )


def _cmd_run(args: argparse.Namespace) -> int:
    sem = _semantics(args)
    if args.semantics == "least":
        models = [sem.least_model]
    else:
        chooser = {
            "stable": sem.stable_models,
            "af": sem.assumption_free_models,
            "models": sem.models,
            "total": sem.total_models,
            "exhaustive": sem.exhaustive_models,
        }
        models = chooser[args.semantics]()
    if args.json:
        import json

        from .serialize import interpretation_to_dict

        payload = {
            "component": sem.component,
            "semantics": args.semantics,
            "models": [interpretation_to_dict(m) for m in models],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    if args.semantics == "least":
        model = models[0]
        print(f"least model of component {sem.component}:")
        for literal in sorted(model):
            print(f"  {literal}")
        undefined = sorted(map(str, model.undefined_atoms()))
        if undefined:
            print(f"undefined: {', '.join(undefined)}")
        return 0
    print(f"{len(models)} {args.semantics} model(s) of component {sem.component}:")
    for i, model in enumerate(models):
        print(f"  [{i}] {model}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    sem = _semantics(args)
    answers = evaluate_query(sem, args.query, args.mode)
    if not answers:
        print("no")
        return 1
    for answer in answers:
        print(answer.literal)
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from .analysis.hasse import render_hasse

    sem = _semantics(args)
    print("component hierarchy (most general on top):")
    print(render_hasse(sem.program))
    print()
    print(sem.describe())
    print("rule statuses under the least model:")
    for report in sem.statuses():
        print(f"  {report}")
    summary = conflict_summary(sem)
    print(
        f"conflicts: {summary['overrule']} overruling pair(s), "
        f"{summary['defeat']} defeating pair(s)"
    )
    return 0


def _cmd_why(args: argparse.Namespace) -> int:
    from .explain.trace import Explainer

    sem = _semantics(args)
    print(Explainer(sem).explain(args.query))
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    program = _load(args.file)
    print(program_stats(program))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .analysis.lint import lint_program
    from .grounding.grounder import GroundingOptions

    program = _load(args.file)
    findings = lint_program(
        program, grounding=GroundingOptions(max_depth=args.max_depth)
    )
    if not findings:
        print("no findings")
        return 0
    for warning in findings:
        print(warning)
        print()
    print(f"{len(findings)} finding(s)")
    return 1


def _cmd_repl(args: argparse.Namespace) -> int:  # pragma: no cover - interactive
    from .repl import run

    return run(args.file)


_COMMANDS = {
    "run": _cmd_run,
    "query": _cmd_query,
    "explain": _cmd_explain,
    "why": _cmd_why,
    "stats": _cmd_stats,
    "lint": _cmd_lint,
    "repl": _cmd_repl,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
