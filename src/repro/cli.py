"""Command-line interface: run ``.olp`` programs under any semantics.

Installed as ``olp`` (also ``python -m repro``).  Subcommands:

* ``olp run FILE -c COMPONENT`` — print the least model; ``--semantics``
  selects stable / assumption-free / all-models enumeration instead.
* ``olp query FILE -c COMPONENT -q 'fly(X)'`` — answer a literal
  pattern under cautious / skeptical / credulous entailment.
* ``olp explain FILE -c COMPONENT`` — Definition-2 status of every
  ground rule under the least model, plus the conflict summary.
* ``olp stats FILE`` — structural statistics of the program.
* ``olp check FILE...`` — static analysis: safety, undefined predicates,
  arity clashes, defeat traps, stratification classification and more
  (``docs/analysis.md``); ``--max-severity`` controls the exit code.
* ``olp profile FILE -c COMPONENT`` — run with instrumentation on and
  print a per-phase timing / counter breakdown.
* ``olp serve [FILE]`` — serve queries and mutations over TCP with
  snapshot-isolated reads and a single-writer delta pipeline
  (``docs/server.md``); ``--metrics-port`` adds a Prometheus
  ``/metrics`` + ``/healthz`` HTTP sidecar, ``--slow-ms`` a slow-query
  log.
* ``olp top HOST:PORT`` — poll a running server: qps, latency
  percentiles, queue depth, snapshot age, per-view refresh cost.
* ``olp slow HOST:PORT`` — dump a running server's slow-query log
  (span trees and engine cost digests).

Observability flags (every subcommand): ``-v`` / ``-vv`` stream INFO /
DEBUG events to stderr, ``--quiet`` silences events entirely,
``--events-jsonl PATH`` appends the event stream as JSON lines, and
``--metrics`` (run / query) prints a metrics report after the result.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from .analysis.conflicts import conflict_summary
from .analysis.stats import program_stats
from .core.semantics import OrderedSemantics
from .core.transform import AUTO_STRATEGY, SEMANTICS_STRATEGIES
from .kb.query import evaluate_query
from .lang.errors import ReproError
from .lang.parser import parse_program
from .lang.program import OrderedProgram
from .obs import (
    JsonLinesSink,
    Level,
    Sink,
    TextSink,
    get_instrumentation,
    instrumented,
    render_report,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="olp",
        description="Ordered logic programming (Laenens, Sacca & Vermeir, SIGMOD 1990)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="compute the meaning of a component")
    _add_common(run)
    run.add_argument(
        "--semantics",
        choices=["least", "stable", "af", "models", "total", "exhaustive"],
        default="least",
        help="which models to compute (default: the least model)",
    )
    run.add_argument(
        "--json",
        action="store_true",
        help="emit the result as JSON (see repro.serialize for the schema)",
    )
    run.add_argument(
        "--metrics",
        action="store_true",
        help="print an instrumentation report after the result",
    )
    run.add_argument(
        "--strategy",
        choices=list(SEMANTICS_STRATEGIES),
        default=AUTO_STRATEGY,
        help="fixpoint strategy: 'auto' routes stratified views to the "
        "classical backend, 'classical' requires routing, "
        "'seminaive'/'naive' force the ordered engine",
    )

    query = sub.add_parser("query", help="answer a literal pattern")
    _add_common(query)
    query.add_argument("-q", "--query", required=True, help="literal pattern, e.g. 'fly(X)'")
    query.add_argument(
        "--mode",
        choices=["cautious", "skeptical", "credulous"],
        default="cautious",
    )
    query.add_argument(
        "--metrics",
        action="store_true",
        help="print an instrumentation report after the result",
    )

    explain = sub.add_parser(
        "explain", help="rule statuses under the least model + conflicts"
    )
    _add_common(explain)

    why = sub.add_parser(
        "why", help="derivation tree (or failure analysis) for a literal"
    )
    _add_common(why)
    why.add_argument("-q", "--query", required=True, help="ground literal")

    stats = sub.add_parser("stats", help="structural program statistics")
    stats.add_argument("file", help="path to an .olp file")
    _add_output_flags(stats)

    lint = sub.add_parser(
        "lint",
        help="find conclusions that can never fire (closure gaps)",
    )
    lint.add_argument("file", help="path to an .olp file")
    lint.add_argument(
        "-c",
        "--component",
        default=None,
        help="lint a single component view (default: every view)",
    )
    lint.add_argument(
        "--max-depth",
        type=int,
        default=None,
        help="Herbrand-universe depth bound (needed with function symbols)",
    )
    _add_output_flags(lint)

    check = sub.add_parser(
        "check",
        help="static analysis over the non-ground program (no solving): "
        "safety, undefined predicates, arity clashes, defeat traps, "
        "stratification",
    )
    check.add_argument("files", nargs="+", help="paths to .olp files")
    check.add_argument(
        "--json",
        action="store_true",
        help="emit one JSON report per file",
    )
    check.add_argument(
        "--sarif",
        action="store_true",
        help="emit one SARIF 2.1.0 log covering every file (for code "
        "review tooling; mutually exclusive with --json)",
    )
    check.add_argument(
        "--facts",
        action="store_true",
        help="also print the abstract interpretation's inferred "
        "types/modes/cardinalities per file (text output only)",
    )
    check.add_argument(
        "--max-severity",
        choices=["info", "warning", "error"],
        default="info",
        help="highest severity that still exits 0 (default: info — any "
        "warning or error fails the check)",
    )
    check.add_argument(
        "--metrics",
        action="store_true",
        help="print an instrumentation report after the result",
    )
    _add_output_flags(check)

    profile = sub.add_parser(
        "profile",
        help="run a program with instrumentation on; print the per-phase "
        "timing and counter breakdown",
    )
    _add_common(profile)
    profile.add_argument(
        "--semantics",
        choices=["least", "stable", "af", "models"],
        default="least",
        help="how far to take the run (default: ground + least model)",
    )
    profile.add_argument(
        "--json",
        action="store_true",
        help="emit the metrics snapshot as JSON",
    )

    repl = sub.add_parser("repl", help="interactive ordered-logic shell")
    repl.add_argument("file", nargs="?", default=None, help="optional .olp to load")
    _add_output_flags(repl)

    serve = sub.add_parser(
        "serve",
        help="serve queries and mutations over TCP (newline-delimited "
        "JSON; see docs/server.md)",
    )
    serve.add_argument(
        "file",
        nargs="?",
        default=None,
        help="optional .olp program to preload as the knowledge base",
    )
    serve.add_argument(
        "--restore",
        metavar="PATH",
        default=None,
        help="restore the knowledge base from a serialized snapshot "
        "(repro.serialize.dumps_kb JSON) instead of an .olp file",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7411)
    serve.add_argument(
        "--max-queue",
        type=int,
        default=256,
        help="bound of the write queue; a full queue sheds writes with "
        "an 'overloaded' reply (default: 256)",
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=64,
        help="most write requests coalesced into one published snapshot "
        "version (default: 64)",
    )
    serve.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="default per-request deadline; requests not started before "
        "it expires are shed with a 'timeout' reply",
    )
    serve.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="also serve Prometheus /metrics and /healthz over HTTP on "
        "this port (0 picks a free one)",
    )
    serve.add_argument(
        "--slow-ms",
        type=float,
        default=None,
        metavar="MS",
        help="record requests at or above MS milliseconds (span tree + "
        "engine cost digest) in the slow-query log served by 'olp slow'",
    )
    serve.add_argument(
        "--wal",
        metavar="DIR",
        default=None,
        help="durable write-ahead log directory: boot recovers the KB "
        "from the newest checkpoint + journal replay, every published "
        "version is journaled, and followers can subscribe "
        "(docs/replication.md)",
    )
    serve.add_argument(
        "--wal-fsync",
        choices=["always", "batch", "never"],
        default="always",
        help="journal durability: 'always' fsyncs each published batch "
        "before acking (default), 'batch' group-commits on an interval, "
        "'never' leaves flushing to the OS",
    )
    serve.add_argument(
        "--segment-bytes",
        type=int,
        default=64 * 1024 * 1024,
        metavar="N",
        help="rotate journal segments at N bytes (default: 64 MiB)",
    )
    serve.add_argument(
        "--checkpoint-every",
        type=int,
        default=256,
        metavar="N",
        help="checkpoint the KB and truncate sealed segments every N "
        "versions; 0 disables periodic checkpoints (default: 256)",
    )
    serve.add_argument(
        "--edb",
        metavar="PATH",
        default=None,
        help="attach a disk-backed EDB store (SQLite, built with "
        "repro.db.EdbStore) as the extensional fact base of the view "
        "it names; demand queries fetch only the tuples they need "
        "(docs/query.md)",
    )
    serve.add_argument(
        "--follow",
        metavar="HOST:PORT",
        default=None,
        help="run as a read-only follower tailing this leader's "
        "subscribe stream (writes are rejected with 'not_leader')",
    )
    serve.add_argument(
        "--views",
        metavar="V1,V2",
        default=None,
        help="with --follow: subscribe to this view subset only "
        "(comma-separated object names)",
    )
    serve.add_argument(
        "--fleet",
        action="store_true",
        help="run the fleet front tier: fan reads across --follower "
        "backends, route writes to --leader",
    )
    serve.add_argument(
        "--leader",
        metavar="HOST:PORT",
        default=None,
        help="with --fleet: the write backend",
    )
    serve.add_argument(
        "--follower",
        metavar="HOST:PORT[=V1,V2]",
        action="append",
        default=None,
        help="with --fleet: a read backend, repeatable; '=V1,V2' marks "
        "a view-subset follower that only serves those views",
    )
    _add_output_flags(serve)

    top = sub.add_parser(
        "top",
        help="poll a running server's stats: qps, latency percentiles, "
        "queue depth, snapshot age, per-view refresh cost",
    )
    top.add_argument("address", help="server address, host:port")
    top.add_argument(
        "-i",
        "--interval",
        type=float,
        default=2.0,
        help="seconds between polls (default: 2)",
    )
    top.add_argument(
        "-n",
        "--count",
        type=int,
        default=None,
        help="stop after N polls (default: run until interrupted)",
    )
    top.add_argument(
        "--no-clear",
        action="store_true",
        help="append frames instead of redrawing the screen",
    )
    _add_output_flags(top)

    slow = sub.add_parser(
        "slow",
        help="dump a running server's slow-query log (requires "
        "'olp serve --slow-ms')",
    )
    slow.add_argument("address", help="server address, host:port")
    slow.add_argument(
        "--json",
        action="store_true",
        help="emit the raw slow-log entries as JSON",
    )
    _add_output_flags(slow)
    return parser


def _add_common(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("file", help="path to an .olp file")
    sub.add_argument(
        "-c",
        "--component",
        default=None,
        help="component whose point of view to take (default: the unique "
        "minimal component)",
    )
    sub.add_argument(
        "--max-depth",
        type=int,
        default=None,
        help="Herbrand-universe depth bound (needed with function symbols)",
    )
    _add_output_flags(sub)


def _add_output_flags(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="stream engine events to stderr (-v: INFO, -vv: DEBUG)",
    )
    sub.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the event stream entirely",
    )
    sub.add_argument(
        "--events-jsonl",
        metavar="PATH",
        default=None,
        help="append structured events to PATH, one JSON object per line",
    )


def _load(path: str) -> OrderedProgram:
    with open(path) as handle:
        return parse_program(handle.read())


def _pick_component(program: OrderedProgram, requested: Optional[str]) -> str:
    if requested is not None:
        return requested
    minimal = sorted(program.order.minimal_elements())
    if len(minimal) == 1:
        return minimal[0]
    raise ReproError(
        f"program has several minimal components {minimal}; pick one with -c"
    )


def _semantics(args: argparse.Namespace) -> OrderedSemantics:
    from .grounding.grounder import GroundingOptions

    program = _load(args.file)
    component = _pick_component(program, args.component)
    return OrderedSemantics(
        program,
        component,
        grounding=GroundingOptions(max_depth=args.max_depth),
        strategy=getattr(args, "strategy", AUTO_STRATEGY),
    )


def _print_metrics(args: argparse.Namespace) -> None:
    if getattr(args, "metrics", False):
        print(render_report(get_instrumentation().snapshot()))


def _cmd_run(args: argparse.Namespace) -> int:
    sem = _semantics(args)
    if args.semantics == "least":
        models = [sem.least_model]
    else:
        chooser = {
            "stable": sem.stable_models,
            "af": sem.assumption_free_models,
            "models": sem.models,
            "total": sem.total_models,
            "exhaustive": sem.exhaustive_models,
        }
        models = chooser[args.semantics]()
    if args.json:
        from .serialize import interpretation_to_dict

        payload = {
            "component": sem.component,
            "semantics": args.semantics,
            "models": [interpretation_to_dict(m) for m in models],
        }
        if args.metrics:
            payload["metrics"] = get_instrumentation().snapshot()
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    if args.semantics == "least":
        model = models[0]
        print(f"least model of component {sem.component}:")
        for literal in sorted(model):
            print(f"  {literal}")
        undefined = sorted(map(str, model.undefined_atoms()))
        if undefined:
            print(f"undefined: {', '.join(undefined)}")
        _print_metrics(args)
        return 0
    print(f"{len(models)} {args.semantics} model(s) of component {sem.component}:")
    for i, model in enumerate(models):
        print(f"  [{i}] {model}")
    _print_metrics(args)
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    sem = _semantics(args)
    answers = evaluate_query(sem, args.query, args.mode)
    if not answers:
        print("no")
        _print_metrics(args)
        return 1
    for answer in answers:
        print(answer.literal)
    _print_metrics(args)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    obs = get_instrumentation()
    with obs.span("profile", file=args.file, semantics=args.semantics):
        with obs.span("parse"):
            program = _load(args.file)
        component = _pick_component(program, args.component)
        from .grounding.grounder import GroundingOptions

        sem = OrderedSemantics(
            program, component, grounding=GroundingOptions(max_depth=args.max_depth)
        )
        _ = sem.ground  # grounding phase (span "ground")
        model = sem.least_model  # fixpoint phase
        counts = {"least": len(model.literals)}
        if args.semantics == "stable":
            counts["stable"] = len(sem.stable_models())
        elif args.semantics == "af":
            counts["af"] = len(sem.assumption_free_models())
        elif args.semantics == "models":
            counts["models"] = len(sem.models())
    snapshot = obs.snapshot()
    if args.json:
        payload = {
            "file": args.file,
            "component": component,
            "semantics": args.semantics,
            "results": counts,
            "metrics": snapshot,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(
        f"profile of {args.file} (component {component}, "
        f"semantics {args.semantics}):"
    )
    for name, value in counts.items():
        label = "literals in least model" if name == "least" else f"{name} model(s)"
        print(f"  {value} {label}")
    print(render_report(snapshot, title="per-phase breakdown"))
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from .analysis.hasse import render_hasse

    sem = _semantics(args)
    print("component hierarchy (most general on top):")
    print(render_hasse(sem.program))
    print()
    print(sem.describe())
    print("rule statuses under the least model:")
    for report in sem.statuses():
        print(f"  {report}")
    summary = conflict_summary(sem)
    print(
        f"conflicts: {summary['overrule']} overruling pair(s), "
        f"{summary['defeat']} defeating pair(s)"
    )
    return 0


def _cmd_why(args: argparse.Namespace) -> int:
    from .explain.trace import Explainer

    sem = _semantics(args)
    print(Explainer(sem).explain(args.query))
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    program = _load(args.file)
    print(program_stats(program))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .analysis.lint import lint_program
    from .grounding.grounder import GroundingOptions

    program = _load(args.file)
    findings = lint_program(
        program,
        component=args.component,
        grounding=GroundingOptions(max_depth=args.max_depth),
    )
    if not findings:
        print("no findings")
        return 0
    for warning in findings:
        print(warning)
        print()
    print(f"{len(findings)} finding(s)")
    return 1


def _cmd_check(args: argparse.Namespace) -> int:
    from .analysis.static import Severity, analyze_program

    if args.json and args.sarif:
        raise ReproError("--json and --sarif are mutually exclusive")
    gate = Severity.parse(args.max_severity)
    payloads = []
    reports = []
    failed = False
    for path in args.files:
        program = _load(path)
        report = analyze_program(program)
        gating = report.gating(gate)
        if gating:
            failed = True
        if args.sarif:
            reports.append((path, report))
        elif args.json:
            payload = report.to_dict()
            payload["file"] = path
            payload["gating"] = len(gating)
            payloads.append(payload)
        else:
            print(f"{path}:")
            print(report.render())
            if args.facts and report.abstract is not None:
                print("  inferred facts:")
                for line in report.abstract.render().splitlines():
                    print(f"  {line}")
            if gating:
                print(
                    f"  FAIL: {len(gating)} diagnostic(s) above "
                    f"--max-severity={args.max_severity}"
                )
    if args.sarif:
        from .analysis.sarif import sarif_log

        print(json.dumps(sarif_log(reports), indent=2, sort_keys=True))
    elif args.json:
        print(json.dumps(payloads, indent=2, sort_keys=True))
    _print_metrics(args)
    return 1 if failed else 0


def _cmd_repl(args: argparse.Namespace) -> int:  # pragma: no cover - interactive
    from .repl import run

    return run(args.file)


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .kb.knowledge_base import KnowledgeBase
    from .server import ServerConfig, run_server

    config = ServerConfig(
        max_queue=args.max_queue,
        max_batch=args.max_batch,
        default_deadline_ms=args.deadline_ms,
        slow_ms=args.slow_ms,
    )

    if args.fleet:
        from .server import parse_backend, run_fleet

        if args.edb is not None:
            raise ReproError("--edb applies to the serving backend, not --fleet")
        if args.leader is None:
            raise ReproError("--fleet requires --leader HOST:PORT")
        try:
            leader = parse_backend(args.leader)
            followers = [parse_backend(spec) for spec in (args.follower or [])]
        except ValueError as error:
            raise ReproError(str(error)) from error
        try:
            asyncio.run(
                run_fleet(leader, followers, host=args.host, port=args.port)
            )
        except KeyboardInterrupt:  # pragma: no cover - interactive
            print("olp serve: interrupted", file=sys.stderr)
            return 130
        return 0

    if args.follow is not None:
        from .server import run_follower

        if args.edb is not None:
            raise ReproError(
                "--edb applies to the leader; followers replicate its journal"
            )

        leader_host, leader_port = _parse_address(args.follow)
        views = (
            tuple(v for v in args.views.split(",") if v)
            if args.views is not None
            else None
        )
        try:
            asyncio.run(
                run_follower(
                    leader_host,
                    leader_port,
                    host=args.host,
                    port=args.port,
                    config=config,
                    views=views,
                    metrics_port=args.metrics_port,
                )
            )
        except KeyboardInterrupt:  # pragma: no cover - interactive
            print("olp serve: interrupted", file=sys.stderr)
            return 130
        return 0

    if args.file is not None and args.restore is not None:
        raise ReproError("pass an .olp file or --restore, not both")
    wal = None
    initial_version = 0
    if args.wal is not None:
        from .server import Wal

        wal = Wal(
            args.wal,
            fsync=args.wal_fsync,
            segment_bytes=args.segment_bytes,
            checkpoint_every=args.checkpoint_every or None,
        )
        kb, initial_version = wal.recover()
        print(
            f"olp serve: recovered version {initial_version} from {args.wal} "
            f"(checkpoint {wal.checkpoint_version}, "
            f"replayed {wal.replayed} journal records)",
            flush=True,
        )
        if args.file is not None or args.restore is not None:
            if initial_version:
                raise ReproError(
                    "--wal directory already holds state; "
                    "drop the .olp/--restore seed or point --wal elsewhere"
                )
            # Seed a fresh WAL directory from the given program/dump.
            if args.restore is not None:
                from .serialize import loads_kb

                with open(args.restore) as handle:
                    kb = loads_kb(handle.read())
            else:
                kb = KnowledgeBase.from_program(_load(args.file))
            wal.checkpoint(kb, 0)
    elif args.restore is not None:
        from .serialize import loads_kb

        with open(args.restore) as handle:
            kb = loads_kb(handle.read())
    elif args.file is not None:
        kb = KnowledgeBase.from_program(_load(args.file))
    else:
        kb = KnowledgeBase()
    if args.edb is not None:
        from .db.edb import EdbStore

        store = EdbStore(args.edb)
        target = store.object_name
        if target == "edb" and target not in kb.objects:
            # A store built without an explicit object name lands on the
            # program's sole object (the common
            # `olp serve rules.olp --edb facts.edb` case).
            objects = sorted(kb.objects)
            if len(objects) == 1:
                target = objects[0]
        kb.attach_edb(target, store)
        print(
            f"olp serve: attached EDB {args.edb} to view {target!r} "
            f"({store.total_facts()} facts, {len(list(store.names()))} relations)",
            flush=True,
        )
    try:
        asyncio.run(
            run_server(
                kb,
                host=args.host,
                port=args.port,
                config=config,
                metrics_port=args.metrics_port,
                wal=wal,
                initial_version=initial_version,
            )
        )
    except KeyboardInterrupt:  # pragma: no cover - interactive
        print("olp serve: interrupted", file=sys.stderr)
        return 130
    return 0


def _parse_address(address: str) -> tuple[str, int]:
    host, _, port = address.rpartition(":")
    if not host or not port.isdigit():
        raise ReproError(f"expected host:port, got {address!r}")
    return host, int(port)


def _ndjson_request(host: str, port: int, payload: dict, timeout: float = 5.0) -> dict:
    """One request/one reply over a fresh NDJSON connection."""
    import socket

    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall((json.dumps(payload) + "\n").encode("utf-8"))
        buf = b""
        while not buf.endswith(b"\n"):
            chunk = sock.recv(65536)
            if not chunk:
                break
            buf += chunk
    reply = json.loads(buf.decode("utf-8"))
    if not reply.get("ok"):
        error = reply.get("error", {})
        raise ReproError(
            f"server error [{error.get('code')}]: {error.get('message')}"
        )
    return reply


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1000.0:.2f}ms"


def _render_top_frame(
    stats: dict, prev: Optional[dict], interval: float, address: str
) -> str:
    lines = [
        f"olp top {address} — version {stats['version']}, "
        f"uptime {stats['uptime_s']:.1f}s, "
        f"queue {stats['queue_depth']}, "
        f"draining {'yes' if stats['draining'] else 'no'}"
    ]
    if prev is not None and interval > 0:
        reads_now = sum(
            stats["requests"].get(op, 0) for op in ("query", "ask", "explain")
        )
        reads_before = sum(
            prev["requests"].get(op, 0) for op in ("query", "ask", "explain")
        )
        writes_now = stats["writes"]["ops"]
        writes_before = prev["writes"]["ops"]
        lines.append(
            f"  qps: read {(reads_now - reads_before) / interval:.1f} "
            f"write {(writes_now - writes_before) / interval:.1f} "
            f"(over {interval:.1f}s)"
        )
    for kind in ("read", "write"):
        lat = stats["latency"][kind]
        lines.append(
            f"  {kind:5s} p50 {_fmt_ms(lat['p50_s'])} "
            f"p95 {_fmt_ms(lat['p95_s'])} p99 {_fmt_ms(lat['p99_s'])} "
            f"max {_fmt_ms(lat['max_s'])} (n={lat['count']})"
        )
    wait = stats.get("queue_wait_ms", {})
    if wait.get("count"):
        lines.append(
            f"  queue wait p50 {wait['p50']:.2f}ms p95 {wait['p95']:.2f}ms "
            f"(n={wait['count']})"
        )
    lines.append(
        f"  snapshot age {stats['snapshot_age_s']:.2f}s, "
        f"{stats['views_materialized']} view(s) materialized"
    )
    slow = stats.get("slow", {})
    if slow.get("threshold_ms") is not None:
        lines.append(
            f"  slow (>= {slow['threshold_ms']:g}ms): {slow['total']} total, "
            f"{slow['logged']} logged, max {slow['max_ms']:.2f}ms"
        )
    views = stats.get("views", {})
    if views:
        lines.append("  view refresh cost at publish:")
        for view, cost in views.items():
            lines.append(
                f"    {view}: n={cost['refreshes']} "
                f"mean {_fmt_ms(cost['mean_s'])} p95 {_fmt_ms(cost['p95_s'])} "
                f"max {_fmt_ms(cost['max_s'])}"
            )
    return "\n".join(lines)


def _cmd_top(args: argparse.Namespace) -> int:
    import time as _time

    host, port = _parse_address(args.address)
    prev: Optional[dict] = None
    polls = 0
    try:
        while True:
            reply = _ndjson_request(host, port, {"op": "stats", "id": "top"})
            stats = reply["result"]
            frame = _render_top_frame(
                stats, prev, args.interval if prev is not None else 0.0, args.address
            )
            if not args.no_clear and polls:
                print("\033[2J\033[H", end="")
            print(frame, flush=True)
            polls += 1
            prev = stats
            if args.count is not None and polls >= args.count:
                return 0
            _time.sleep(args.interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive
        return 0
    except ConnectionError as error:
        raise ReproError(f"cannot reach {args.address}: {error}") from error


def _cmd_slow(args: argparse.Namespace) -> int:
    host, port = _parse_address(args.address)
    try:
        reply = _ndjson_request(host, port, {"op": "slow", "id": "slow"})
    except ConnectionError as error:
        raise ReproError(f"cannot reach {args.address}: {error}") from error
    result = reply["result"]
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True))
        return 0
    threshold = result.get("threshold_ms")
    if threshold is None:
        print("slow-query log disabled (start the server with --slow-ms)")
        return 1
    entries = result.get("entries", [])
    print(
        f"slow-query log (>= {threshold:g}ms): {result.get('total', 0)} "
        f"recorded, showing {len(entries)}"
    )
    for entry in entries:
        target = entry.get("pattern") or entry.get("rules") or ""
        print(
            f"\n[{entry.get('trace_id')}] {entry.get('op')} "
            f"{entry.get('view')} {target!r} — "
            f"{entry.get('elapsed_ms')}ms at version {entry.get('version')}"
        )
        cost = entry.get("cost") or {}
        if cost:
            rendered = ", ".join(
                f"{key}={cost[key]:g}" for key in sorted(cost)
            )
            print(f"  cost: {rendered}")
        spans = entry.get("spans")
        if spans:
            _print_span(spans, depth=1)
    return 0


def _print_span(node: dict, depth: int) -> None:
    fields = node.get("fields") or {}
    rendered = (
        " [" + ", ".join(f"{k}={v}" for k, v in sorted(fields.items())) + "]"
        if fields
        else ""
    )
    print(f"{'  ' * depth}{node['name']}: {node['duration_ms']}ms{rendered}")
    for child in node.get("children", ()):
        _print_span(child, depth + 1)


_COMMANDS = {
    "run": _cmd_run,
    "query": _cmd_query,
    "explain": _cmd_explain,
    "why": _cmd_why,
    "stats": _cmd_stats,
    "lint": _cmd_lint,
    "check": _cmd_check,
    "profile": _cmd_profile,
    "repl": _cmd_repl,
    "serve": _cmd_serve,
    "top": _cmd_top,
    "slow": _cmd_slow,
}


def _event_sinks(args: argparse.Namespace) -> tuple[bool, list[Sink]]:
    """(enable instrumentation?, sinks) implied by the output flags."""
    sinks: list[Sink] = []
    verbose = getattr(args, "verbose", 0)
    quiet = getattr(args, "quiet", False)
    jsonl = getattr(args, "events_jsonl", None)
    wants_obs = (
        verbose > 0
        or jsonl is not None
        or getattr(args, "metrics", False)
        or args.command == "profile"
    )
    if not wants_obs:
        return False, sinks
    level = Level.from_verbosity(verbose, quiet)
    if level is not None:
        sinks.append(TextSink(sys.stderr, min_level=level))
    if jsonl is not None:
        sinks.append(JsonLinesSink(jsonl))
    return True, sinks


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        enable, sinks = _event_sinks(args)
        if enable:
            with instrumented(*sinks):
                return _COMMANDS[args.command](args)
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
