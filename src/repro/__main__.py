"""``python -m repro`` — the ``olp`` command-line interface."""

import sys

from .cli import main

sys.exit(main())
