"""JSON serialization of programs, interpretations and results.

The ``.olp`` surface syntax is the human format; this module provides a
lossless structured format for toolchains (saving reproduction
artifacts, diffing models, shipping programs between processes).

Schema (stable, versioned by ``FORMAT_VERSION``):

* term — ``{"var": name}`` | ``{"const": str|int}`` |
  ``{"fn": name, "args": [term, ...]}``
* literal — ``{"pred": name, "args": [term, ...], "positive": bool}``
* expr — term | ``{"binop": op, "left": expr, "right": expr}``
* body item — literal | ``{"cmp": op, "left": expr, "right": expr}``
* rule — ``{"head": literal, "body": [item, ...]}``
* program — ``{"format": N, "components": {name: [rule, ...]},
  "order": [[low, high], ...]}``
* interpretation — ``{"literals": [literal, ...],
  "base": [literal, ...]}`` (base entries are positive literals
  standing for atoms)
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import TYPE_CHECKING, Any, Union

from .core.interpretation import Interpretation
from .lang.builtins import ArithExpr, BinaryOp, Comparison
from .lang.errors import ReproError
from .lang.literals import Atom, Literal
from .lang.program import Component, OrderedProgram
from .lang.rules import BodyItem, Rule
from .lang.terms import Compound, Constant, Term, Variable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .kb.knowledge_base import KnowledgeBase

__all__ = [
    "FORMAT_VERSION",
    "term_to_dict",
    "term_from_dict",
    "literal_to_dict",
    "literal_from_dict",
    "rule_to_dict",
    "rule_from_dict",
    "program_to_dict",
    "program_from_dict",
    "interpretation_to_dict",
    "interpretation_from_dict",
    "dumps_program",
    "loads_program",
    "kb_to_dict",
    "kb_from_dict",
    "dumps_kb",
    "loads_kb",
    "kb_signature",
]

FORMAT_VERSION = 1


class SerializationError(ReproError):
    """Raised for malformed serialized data."""


# ----------------------------------------------------------------------
# Terms
# ----------------------------------------------------------------------

def term_to_dict(term: Term) -> dict[str, Any]:
    if isinstance(term, Variable):
        return {"var": term.name}
    if isinstance(term, Constant):
        return {"const": term.value}
    if isinstance(term, Compound):
        return {"fn": term.functor, "args": [term_to_dict(a) for a in term.args]}
    raise SerializationError(f"not a term: {term!r}")


def term_from_dict(data: dict[str, Any]) -> Term:
    if not isinstance(data, dict):
        raise SerializationError(f"term must be an object, got {data!r}")
    if "var" in data:
        return Variable(data["var"])
    if "const" in data:
        return Constant(data["const"])
    if "fn" in data:
        return Compound(
            data["fn"], tuple(term_from_dict(a) for a in data.get("args", []))
        )
    raise SerializationError(f"unknown term shape: {data!r}")


# ----------------------------------------------------------------------
# Literals
# ----------------------------------------------------------------------

def literal_to_dict(literal: Literal) -> dict[str, Any]:
    return {
        "pred": literal.predicate,
        "args": [term_to_dict(a) for a in literal.args],
        "positive": literal.positive,
    }


def literal_from_dict(data: dict[str, Any]) -> Literal:
    try:
        atom = Atom(
            data["pred"], tuple(term_from_dict(a) for a in data.get("args", []))
        )
        return Literal(atom, bool(data.get("positive", True)))
    except (KeyError, TypeError, ValueError) as error:
        raise SerializationError(f"bad literal {data!r}: {error}") from error


# ----------------------------------------------------------------------
# Expressions, guards, rules
# ----------------------------------------------------------------------

def _expr_to_dict(expr: ArithExpr) -> dict[str, Any]:
    if isinstance(expr, BinaryOp):
        return {
            "binop": expr.op,
            "left": _expr_to_dict(expr.left),
            "right": _expr_to_dict(expr.right),
        }
    return term_to_dict(expr)


def _expr_from_dict(data: dict[str, Any]) -> ArithExpr:
    if isinstance(data, dict) and "binop" in data:
        return BinaryOp(
            data["binop"],
            _expr_from_dict(data["left"]),
            _expr_from_dict(data["right"]),
        )
    return term_from_dict(data)


def _body_item_to_dict(item: BodyItem) -> dict[str, Any]:
    if isinstance(item, Comparison):
        return {
            "cmp": item.op,
            "left": _expr_to_dict(item.left),
            "right": _expr_to_dict(item.right),
        }
    return literal_to_dict(item)


def _body_item_from_dict(data: dict[str, Any]) -> BodyItem:
    if isinstance(data, dict) and "cmp" in data:
        return Comparison(
            data["cmp"], _expr_from_dict(data["left"]), _expr_from_dict(data["right"])
        )
    return literal_from_dict(data)


def rule_to_dict(r: Rule) -> dict[str, Any]:
    return {
        "head": literal_to_dict(r.head),
        "body": [_body_item_to_dict(item) for item in r.body],
    }


def rule_from_dict(data: dict[str, Any]) -> Rule:
    try:
        return Rule(
            literal_from_dict(data["head"]),
            tuple(_body_item_from_dict(item) for item in data.get("body", [])),
        )
    except (KeyError, TypeError) as error:
        raise SerializationError(f"bad rule {data!r}: {error}") from error


# ----------------------------------------------------------------------
# Programs
# ----------------------------------------------------------------------

def program_to_dict(program: OrderedProgram) -> dict[str, Any]:
    return {
        "format": FORMAT_VERSION,
        "components": {
            comp.name: [rule_to_dict(r) for r in comp.rules]
            for comp in program.components()
        },
        "order": sorted(
            [list(pair) for pair in program.order.covering_pairs()]
        ),
    }


def program_from_dict(data: dict[str, Any]) -> OrderedProgram:
    version = data.get("format")
    if version != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported format version {version!r} (expected {FORMAT_VERSION})"
        )
    try:
        components = [
            Component(name, [rule_from_dict(r) for r in rules])
            for name, rules in data["components"].items()
        ]
        order = [tuple(pair) for pair in data.get("order", [])]
    except (KeyError, TypeError) as error:
        raise SerializationError(f"bad program payload: {error}") from error
    return OrderedProgram(components, order)


def dumps_program(program: OrderedProgram, indent: Union[int, None] = 2) -> str:
    """Serialize a program to a JSON string."""
    return json.dumps(program_to_dict(program), indent=indent, sort_keys=True)


def loads_program(text: str) -> OrderedProgram:
    """Parse a program from its JSON string."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise SerializationError(f"invalid JSON: {error}") from error
    return program_from_dict(data)


# ----------------------------------------------------------------------
# Interpretations
# ----------------------------------------------------------------------

def interpretation_to_dict(interp: Interpretation) -> dict[str, Any]:
    return {
        "literals": [literal_to_dict(l) for l in sorted(interp.literals)],
        "base": [
            literal_to_dict(Literal(atom, True))
            for atom in sorted(interp.base, key=str)
        ],
    }


def interpretation_from_dict(data: dict[str, Any]) -> Interpretation:
    try:
        literals = [literal_from_dict(l) for l in data.get("literals", [])]
        base = frozenset(
            literal_from_dict(l).atom for l in data.get("base", [])
        )
    except (KeyError, TypeError) as error:
        raise SerializationError(f"bad interpretation payload: {error}") from error
    return Interpretation(literals, base or None)


# ----------------------------------------------------------------------
# Knowledge bases (state snapshot / restore for the query server)
# ----------------------------------------------------------------------

def kb_to_dict(kb: "KnowledgeBase") -> dict[str, Any]:
    """A full :class:`~repro.kb.knowledge_base.KnowledgeBase` snapshot:
    every object's told rules, the raw isa order, and the engine
    configuration — everything :func:`kb_from_dict` needs to rebuild an
    equivalent instance (cached views are derived state and excluded)."""
    program = kb.program()
    return {
        "format": FORMAT_VERSION,
        "objects": {
            comp.name: [rule_to_dict(r) for r in comp.rules]
            for comp in program.components()
        },
        "order": sorted(list(pair) for pair in program.order.pairs()),
        "config": {
            "grounding": dataclasses.asdict(kb.grounding),
            "budget": dataclasses.asdict(kb.budget),
            "maintenance": dataclasses.asdict(kb.maintenance),
        },
    }


def kb_from_dict(data: dict[str, Any]) -> "KnowledgeBase":
    """Rebuild a knowledge base from its :func:`kb_to_dict` payload."""
    from .core.maintenance import MaintenanceConfig
    from .core.solver import SearchBudget
    from .grounding.grounder import GroundingOptions
    from .kb.knowledge_base import KnowledgeBase

    version = data.get("format")
    if version != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported format version {version!r} (expected {FORMAT_VERSION})"
        )
    config = data.get("config", {})
    try:
        components = [
            Component(name, [rule_from_dict(r) for r in rules])
            for name, rules in data["objects"].items()
        ]
        order = [(low, high) for low, high in data.get("order", [])]
        grounding = GroundingOptions(**config.get("grounding", {}))
        budget = SearchBudget(**config.get("budget", {}))
        maintenance = MaintenanceConfig(**config.get("maintenance", {}))
    except (KeyError, TypeError, ValueError) as error:
        raise SerializationError(f"bad knowledge-base payload: {error}") from error
    return KnowledgeBase.from_program(
        OrderedProgram(components, order),
        grounding=grounding,
        budget=budget,
        maintenance=maintenance,
    )


def dumps_kb(kb: "KnowledgeBase", indent: Union[int, None] = 2) -> str:
    """Serialize a knowledge base to a JSON string."""
    return json.dumps(kb_to_dict(kb), indent=indent, sort_keys=True)


def loads_kb(text: str) -> "KnowledgeBase":
    """Rebuild a knowledge base from its JSON string."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise SerializationError(f"invalid JSON: {error}") from error
    return kb_from_dict(data)


def kb_signature(kb: "KnowledgeBase") -> str:
    """A stable content hash of a knowledge base's full serialized
    state (told rules, isa order, engine configuration).

    Two knowledge bases with equal signatures serialize identically —
    the bit-identity predicate the crash-recovery and replication
    differential suites assert against their oracles."""
    payload = json.dumps(
        kb_to_dict(kb), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
