"""Derivation traces: why is a literal (not) in the least model?

The ``V_{P,C}`` fixpoint has a natural notion of proof: a literal enters
at the first stage where some rule for it is applicable and neither
overruled nor defeated.  Recording that rule per literal yields a
well-founded derivation tree (premise stages strictly decrease).

For literals *outside* the least model the explainer reports, per rule
with that head, exactly which Definition-2 condition failed: an unmet
body literal, a blocking literal, the overruling rule, or the defeating
rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..core.interpretation import Interpretation, TruthValue
from ..core.semantics import OrderedSemantics
from ..grounding.grounder import GroundRule
from ..lang.literals import Literal
from ..lang.parser import parse_literal

__all__ = ["Derivation", "RuleFailure", "NonDerivation", "Explainer"]


@dataclass(frozen=True)
class Derivation:
    """A proof tree node: ``literal`` derived by ``rule`` at ``stage``
    from the premises (one per body literal)."""

    literal: Literal
    rule: GroundRule
    stage: int
    premises: tuple["Derivation", ...]

    def render(self, indent: str = "") -> str:
        lines = [f"{indent}{self.literal}  [stage {self.stage}]  via  {self.rule}"]
        for premise in self.premises:
            lines.append(premise.render(indent + "  "))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


@dataclass(frozen=True)
class RuleFailure:
    """Why one candidate rule did not establish the literal.

    ``reason`` is one of ``"unmet-body"``, ``"blocked"``, ``"overruled"``
    or ``"defeated"``; ``witness`` is the body literal (for the first
    two) or the opposing rule (for the last two).
    """

    rule: GroundRule
    reason: str
    witness: Union[Literal, GroundRule, None]

    def __str__(self) -> str:
        if self.reason == "unmet-body":
            return f"{self.rule}  — body literal {self.witness} is not established"
        if self.reason == "blocked":
            return f"{self.rule}  — blocked: {self.witness} holds"
        if self.reason == "overruled":
            return f"{self.rule}  — overruled by  {self.witness}"
        if self.reason == "defeated":
            return f"{self.rule}  — defeated by  {self.witness}"
        return f"{self.rule}  — {self.reason}"


@dataclass(frozen=True)
class NonDerivation:
    """Why a literal is not in the least model."""

    literal: Literal
    value: TruthValue
    failures: tuple[RuleFailure, ...]
    #: Set when the complement is derived — the strongest explanation.
    complement_derivation: Optional[Derivation] = None

    def render(self) -> str:
        lines = [f"{self.literal} is {self.value} in the least model"]
        if self.complement_derivation is not None:
            lines.append("its complement is derived:")
            lines.append(self.complement_derivation.render("  "))
        if not self.failures and self.complement_derivation is None:
            lines.append("  no ground rule has this head")
        for failure in self.failures:
            lines.append(f"  {failure}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


class Explainer:
    """Builds derivations against a component's least model."""

    def __init__(self, semantics: OrderedSemantics) -> None:
        self._sem = semantics
        self._support: dict[Literal, tuple[GroundRule, int]] = {}
        self._replay_fixpoint()

    # ------------------------------------------------------------------
    # Fixpoint replay
    # ------------------------------------------------------------------
    def _replay_fixpoint(self) -> None:
        """Re-run the V iteration, recording the first supporting rule
        and stage for every derived literal."""
        sem = self._sem
        ev = sem.evaluator
        current = Interpretation((), sem.ground.base)
        stage = 0
        while True:
            stage += 1
            nxt = sem.transform.step(current)
            new_literals = nxt.literals - current.literals
            if not new_literals:
                break
            for literal in new_literals:
                for r in ev.rules_with_head(literal):
                    if (
                        ev.applicable(r, current)
                        and not ev.overruled(r, current)
                        and not ev.defeated(r, current)
                    ):
                        self._support[literal] = (r, stage)
                        break
            current = nxt

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def _coerce(self, literal: Union[Literal, str]) -> Literal:
        if isinstance(literal, str):
            return parse_literal(literal)
        return literal

    def why(self, literal: Union[Literal, str]) -> Derivation:
        """The derivation tree of a literal of the least model.

        Raises:
            ValueError: if the literal is not in the least model (use
                :meth:`why_not`).
        """
        literal = self._coerce(literal)
        if literal not in self._support:
            raise ValueError(
                f"{literal} is not in the least model; use why_not()"
            )
        return self._build(literal)

    def _build(self, literal: Literal) -> Derivation:
        rule, stage = self._support[literal]
        premises = tuple(
            self._build(body_literal) for body_literal in sorted(rule.body)
        )
        return Derivation(literal, rule, stage, premises)

    def why_not(self, literal: Union[Literal, str]) -> NonDerivation:
        """Per-rule failure analysis for a literal outside the least
        model."""
        literal = self._coerce(literal)
        sem = self._sem
        model = sem.least_model
        value = model.value(literal)
        if value is TruthValue.TRUE:
            raise ValueError(f"{literal} holds; use why()")
        complement = None
        if value is TruthValue.FALSE:
            complement = self.why(literal.complement())
        failures = []
        ev = sem.evaluator
        for r in ev.rules_with_head(literal):
            failures.append(self._diagnose(r, model))
        return NonDerivation(literal, value, tuple(failures), complement)

    def _diagnose(self, r: GroundRule, model: Interpretation) -> RuleFailure:
        ev = self._sem.evaluator
        for body_literal in sorted(r.body):
            if body_literal.complement() in model:
                return RuleFailure(r, "blocked", body_literal.complement())
        for other in ev.contradictors(r):
            if ev.order.strictly_below(
                other.component, r.component
            ) and not ev.blocked(other, model):
                return RuleFailure(r, "overruled", other)
        for other in ev.contradictors(r):
            if ev.order.incomparable_or_equal(
                other.component, r.component
            ) and not ev.blocked(other, model):
                return RuleFailure(r, "defeated", other)
        for body_literal in sorted(r.body):
            if body_literal not in model:
                return RuleFailure(r, "unmet-body", body_literal)
        return RuleFailure(r, "not fired (no failing condition found)", None)

    def explain(self, literal: Union[Literal, str]) -> str:
        """A human-readable explanation, whichever way it goes."""
        literal = self._coerce(literal)
        if self._sem.least_model.value(literal) is TruthValue.TRUE:
            return self.why(literal).render()
        return self.why_not(literal).render()
