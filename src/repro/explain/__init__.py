"""Explanations: derivation trees for the least model and per-rule
failure analysis for everything it leaves out."""

from .trace import Derivation, Explainer, NonDerivation, RuleFailure

__all__ = ["Explainer", "Derivation", "NonDerivation", "RuleFailure"]
