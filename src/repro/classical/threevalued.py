"""3-valued models of seminegative programs (Section 3, following [P3]).

Let ``C`` be a seminegative ground program and ``I`` an interpretation.
``I`` is a **3-valued model** for ``C`` when every rule ``r`` satisfies
``value(H(r)) >= value(B(r))`` where the value of a body is the minimum
of its literal values (``T`` for the empty body) and ``F < U < T``.

Total 3-valued models make every rule true in the classical sense, and
every exhaustive 3-valued model of a seminegative program is total
(Section 3).
"""

from __future__ import annotations

from typing import AbstractSet, Iterable, Iterator, Optional

from ..core.interpretation import Interpretation, TruthValue
from ..grounding.grounder import GroundRule
from ..lang.errors import SearchBudgetExceeded
from ..lang.literals import Atom, Literal
from .common import base_of, require_seminegative

__all__ = [
    "is_three_valued_model",
    "three_valued_models",
    "minimal_three_valued_models",
]

#: Refuse brute-force enumeration beyond this base size (3^n candidates).
_ENUM_LIMIT_ATOMS = 14


def is_three_valued_model(
    rules: Iterable[GroundRule], interp: Interpretation
) -> bool:
    """``value(H(r)) >= value(B(r))`` for every ground rule."""
    for r in rules:
        head_value = interp.value(r.head)
        if head_value is TruthValue.TRUE:
            continue
        if head_value < interp.conjunction_value(r.body):
            return False
    return True


def _interpretations(
    base: frozenset[Atom],
) -> Iterator[Interpretation]:
    atoms = sorted(base, key=str)
    if len(atoms) > _ENUM_LIMIT_ATOMS:
        raise SearchBudgetExceeded(
            f"3-valued enumeration over {len(atoms)} atoms "
            f"(limit {_ENUM_LIMIT_ATOMS}) would be 3^n",
            estimate=3 ** len(atoms),
            budget=3 ** _ENUM_LIMIT_ATOMS,
        )

    def expand(index: int, chosen: list[Literal]) -> Iterator[Interpretation]:
        if index == len(atoms):
            yield Interpretation(chosen, base)
            return
        atom = atoms[index]
        yield from expand(index + 1, chosen)
        chosen.append(Literal(atom, True))
        yield from expand(index + 1, chosen)
        chosen[-1] = Literal(atom, False)
        yield from expand(index + 1, chosen)
        chosen.pop()

    yield from expand(0, [])


def three_valued_models(
    rules: Iterable[GroundRule],
    base: Optional[AbstractSet[Atom]] = None,
) -> list[Interpretation]:
    """All 3-valued models over the base (brute force; small programs)."""
    rules = tuple(rules)
    require_seminegative(rules)
    full_base = frozenset(base) if base is not None else base_of(rules)
    return [
        interp
        for interp in _interpretations(full_base)
        if is_three_valued_model(rules, interp)
    ]


def minimal_three_valued_models(
    rules: Iterable[GroundRule],
    base: Optional[AbstractSet[Atom]] = None,
) -> list[Interpretation]:
    """The 3-valued models minimal under literal-set inclusion."""
    models = three_valued_models(rules, base)
    literal_sets = [m.literals for m in models]
    return [
        m
        for m in models
        if not any(other < m.literals for other in literal_sets)
    ]
