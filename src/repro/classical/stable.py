"""Founded and stable models of seminegative programs (Section 3,
following [SZ] and [GL1]).

Given a seminegative ground program ``C`` and a 3-valued model ``M``:

* the **positive version** ``C_M`` is obtained from ``ground(C)`` by
  deleting every rule that is not *applied* in ``M`` (body true and head
  in ``M``) and stripping the negative literals from the remaining
  rules;
* ``M`` is **founded** when ``T_{C_M}↑ω(∅) = M+``;
* ``M`` is **stable** when it is a maximal founded model.  Total stable
  models coincide with the stable models of Gelfond & Lifschitz, checked
  independently here via the classical reduct.
"""

from __future__ import annotations

from typing import AbstractSet, Iterable, Optional

from ..core.interpretation import Interpretation, TruthValue
from ..grounding.grounder import GroundRule
from ..lang.literals import Atom
from .common import base_of, require_seminegative, total_interpretation
from .positive import minimal_model
from .threevalued import is_three_valued_model, three_valued_models

__all__ = [
    "positive_version",
    "is_founded",
    "is_founded_as_printed",
    "founded_models",
    "stable_models",
    "gl_reduct",
    "is_gl_stable",
    "gl_stable_models",
]


def positive_version(
    rules: Iterable[GroundRule], interp: Interpretation
) -> tuple[GroundRule, ...]:
    """``C_M``: applied rules with their negative literals deleted."""
    result = []
    for r in rules:
        if r.head not in interp:
            continue
        if not all(l in interp for l in r.body):
            continue
        positive_body = frozenset(l for l in r.body if l.positive)
        result.append(GroundRule(r.head, positive_body, r.component, r.origin))
    return tuple(result)


def is_founded(
    rules: Iterable[GroundRule],
    interp: Interpretation,
    base: Optional[AbstractSet[Atom]] = None,
) -> bool:
    """``M`` is founded — the classical-side class that makes
    Proposition 4 true (founded ⟺ assumption-free model of ``OV(C)``).

    Three conditions:

    1. ``M`` is a 3-valued model of ``C``;
    2. ``M+ = T↑ω(∅)`` over the positive version (the applied rules
       with negative literals stripped) — the paper's printed test:
       every true atom has non-circular support;
    3. every *undefined* atom has at least one non-blocked deriving
       rule (no body literal false).

    Condition 3 is absent from the printed definition but forced by the
    ``OV`` side: an undefined atom's CWA fact ``¬A`` is applicable and
    can only be excused by being *overruled*, which requires a
    non-blocked rule with head ``A`` (witness: ``{p0 <- ¬p1}``, where
    ``∅`` passes the printed test but ``¬p1``'s unopposed CWA fact
    forbids ``p1`` staying undefined).  Note this is *not* Przymusinski
    3-valued stability either: a positive loop ``{a <- b. b <- a.}``
    may stay undefined here (the loop rules are non-blocked witnesses)
    while the reduct's least model would force it false — under the
    ordered reading, falsity of a loop is only reached in the *stable*
    (maximal) models.  The printed variant is kept as
    :func:`is_founded_as_printed`.
    """
    rules = tuple(rules)
    full_base = frozenset(base) if base is not None else interp.base
    if not is_three_valued_model(rules, interp):
        return False
    derived = minimal_model(positive_version(rules, interp))
    if derived != interp.true_atoms():
        return False
    undefined = {atom for atom in full_base
                 if interp.value_of_atom(atom) is TruthValue.UNDEFINED}
    if not undefined:
        return True
    witnessed: set[Atom] = set()
    for r in rules:
        if r.head.atom in undefined and interp.conjunction_value(
            r.body
        ) > TruthValue.FALSE:
            witnessed.add(r.head.atom)
    return undefined <= witnessed


def is_founded_as_printed(
    rules: Iterable[GroundRule], interp: Interpretation
) -> bool:
    """The paper's printed foundedness test: a 3-valued model with
    ``T_{C_M}↑ω(∅) = M+`` over the applied-rules positive version.
    Weaker than :func:`is_founded`; see that docstring."""
    rules = tuple(rules)
    if not is_three_valued_model(rules, interp):
        return False
    derived = minimal_model(positive_version(rules, interp))
    return derived == interp.true_atoms()


def founded_models(
    rules: Iterable[GroundRule],
    base: Optional[AbstractSet[Atom]] = None,
) -> list[Interpretation]:
    """All founded models (brute force over 3-valued models)."""
    rules = tuple(rules)
    full_base = frozenset(base) if base is not None else base_of(rules)
    return [
        m
        for m in three_valued_models(rules, full_base)
        if is_founded(rules, m, full_base)
    ]


def stable_models(
    rules: Iterable[GroundRule],
    base: Optional[AbstractSet[Atom]] = None,
) -> list[Interpretation]:
    """Maximal founded models ([SZ]'s 3-valued stable models)."""
    founded = founded_models(rules, base)
    literal_sets = [m.literals for m in founded]
    return [
        m
        for m in founded
        if not any(m.literals < other for other in literal_sets)
    ]


# ----------------------------------------------------------------------
# Gelfond–Lifschitz stable models (total; the [GL1] original)
# ----------------------------------------------------------------------

def gl_reduct(
    rules: Iterable[GroundRule], true_atoms: AbstractSet[Atom]
) -> tuple[GroundRule, ...]:
    """The Gelfond–Lifschitz reduct ``C^M`` w.r.t. a set of true atoms:
    delete each rule with a negative body literal ``¬A`` where ``A`` is
    true; strip negative literals from the rest."""
    result = []
    for r in rules:
        if any((not l.positive) and l.atom in true_atoms for l in r.body):
            continue
        positive_body = frozenset(l for l in r.body if l.positive)
        result.append(GroundRule(r.head, positive_body, r.component, r.origin))
    return tuple(result)


def is_gl_stable(
    rules: Iterable[GroundRule],
    true_atoms: AbstractSet[Atom],
) -> bool:
    """``M`` (total, given by its true atoms) is GL-stable iff the
    minimal model of the reduct equals ``M``."""
    rules = tuple(rules)
    require_seminegative(rules)
    return minimal_model(gl_reduct(rules, true_atoms)) == frozenset(true_atoms)


def gl_stable_models(
    rules: Iterable[GroundRule],
    base: Optional[AbstractSet[Atom]] = None,
) -> list[Interpretation]:
    """All total GL-stable models, by checking every subset of the base
    (exponential; small programs)."""
    rules = tuple(rules)
    require_seminegative(rules)
    full_base = frozenset(base) if base is not None else base_of(rules)
    atoms = sorted(full_base, key=str)
    found: list[Interpretation] = []
    for mask in range(1 << len(atoms)):
        true_atoms = frozenset(
            atom for bit, atom in enumerate(atoms) if mask & (1 << bit)
        )
        if is_gl_stable(rules, true_atoms):
            found.append(total_interpretation(true_atoms, full_base))
    return found
