"""Shared helpers for the classical-semantics package.

The classical package works on *ground* programs represented as
:class:`~repro.grounding.grounder.GroundRule` sequences (the component
tag is irrelevant here).  Helpers validate rule classes and convert
between total interpretations and true-atom sets.
"""

from __future__ import annotations

from typing import AbstractSet, Iterable

from ..core.interpretation import Interpretation
from ..grounding.grounder import GroundRule
from ..lang.literals import Atom, Literal

__all__ = [
    "require_positive",
    "require_seminegative",
    "base_of",
    "total_interpretation",
    "atoms_of_total",
]


def require_positive(rules: Iterable[GroundRule]) -> None:
    """Raise ValueError unless every rule is a Horn clause."""
    for r in rules:
        if not r.head.positive or any(not l.positive for l in r.body):
            raise ValueError(f"not a positive rule: {r}")


def require_seminegative(rules: Iterable[GroundRule]) -> None:
    """Raise ValueError unless every rule has a positive head."""
    for r in rules:
        if not r.head.positive:
            raise ValueError(f"not a seminegative rule (negative head): {r}")


def base_of(rules: Iterable[GroundRule]) -> frozenset[Atom]:
    """The atoms mentioned by the rules (a sub-base sufficient for the
    fixpoint semantics; pass an explicit base for full-base work)."""
    atoms: set[Atom] = set()
    for r in rules:
        atoms |= r.atoms()
    return frozenset(atoms)


def total_interpretation(
    true_atoms: AbstractSet[Atom], base: AbstractSet[Atom]
) -> Interpretation:
    """The total interpretation with exactly ``true_atoms`` true."""
    literals = [Literal(a, True) for a in true_atoms]
    literals += [Literal(a, False) for a in base if a not in true_atoms]
    return Interpretation(literals, frozenset(base))


def atoms_of_total(interp: Interpretation) -> frozenset[Atom]:
    """The true atoms of a total interpretation."""
    if not interp.is_total:
        raise ValueError("expected a total interpretation")
    return interp.true_atoms()
