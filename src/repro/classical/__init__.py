"""Classical logic-programming semantics (the paper's Section 3
comparison targets): positive, 3-valued, founded/stable, well-founded
and stratified semantics over ground seminegative programs."""

from .common import (
    atoms_of_total,
    base_of,
    require_positive,
    require_seminegative,
    total_interpretation,
)
from .positive import immediate_consequence, minimal_model
from .stable import (
    founded_models,
    gl_reduct,
    gl_stable_models,
    is_founded,
    is_founded_as_printed,
    is_gl_stable,
    positive_version,
    stable_models,
)
from .stratified import (
    DependencyGraph,
    dependency_graph,
    is_stratified,
    perfect_model,
    stratification,
)
from .threevalued import (
    is_three_valued_model,
    minimal_three_valued_models,
    three_valued_models,
)
from .topdown import DepthBoundReached, TabledEngine, sld_answers
from .wellfounded import WellFoundedResult, well_founded

__all__ = [
    "require_positive",
    "require_seminegative",
    "base_of",
    "total_interpretation",
    "atoms_of_total",
    "immediate_consequence",
    "minimal_model",
    "is_three_valued_model",
    "three_valued_models",
    "minimal_three_valued_models",
    "positive_version",
    "is_founded",
    "is_founded_as_printed",
    "founded_models",
    "stable_models",
    "gl_reduct",
    "is_gl_stable",
    "gl_stable_models",
    "DependencyGraph",
    "dependency_graph",
    "is_stratified",
    "stratification",
    "perfect_model",
    "WellFoundedResult",
    "well_founded",
    "DepthBoundReached",
    "TabledEngine",
    "sld_answers",
]
