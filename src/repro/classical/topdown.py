"""Top-down (SLD) query evaluation for positive programs.

The paper's conclusion points to a proof procedure for ordered logic
([LV]); for the Horn substrate the classical procedure is SLD
resolution [L].  Two engines are provided:

* :func:`sld_answers` — plain SLD with fresh-variable renaming and a
  depth bound (left recursion is reported as exhaustion of the bound,
  never an infinite loop);
* :class:`TabledEngine` — memoized ("tabled") evaluation that
  terminates on all Datalog programs including left recursion, by
  computing per-predicate answer tables to a fixpoint.

Both agree with the bottom-up minimal model on ground queries; the
property tests check this against :func:`repro.classical.positive.minimal_model`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Union

from ..grounding.substitution import Substitution, match_atom, unify_atoms
from ..lang.errors import QueryError
from ..lang.literals import Atom, Literal
from ..lang.parser import parse_literal
from ..lang.rules import Rule

__all__ = ["DepthBoundReached", "sld_answers", "TabledEngine"]


class DepthBoundReached(QueryError):
    """Raised when SLD search exhausts the depth bound — the query may
    still have answers (e.g. under left recursion); use
    :class:`TabledEngine` for guaranteed termination on Datalog."""


def _require_positive(rules: Sequence[Rule]) -> None:
    for r in rules:
        if not r.is_positive:
            raise QueryError(f"SLD handles positive rules only, got: {r}")
        if r.guards():
            raise QueryError(f"SLD does not evaluate guards, got: {r}")


def _coerce_goal(goal: Union[Literal, str]) -> Literal:
    if isinstance(goal, str):
        goal = parse_literal(goal)
    if not goal.positive:
        raise QueryError("SLD goals must be positive literals")
    return goal


def sld_answers(
    rules: Sequence[Rule],
    goal: Union[Literal, str],
    max_depth: int = 200,
    limit: Optional[int] = None,
) -> list[Substitution]:
    """All SLD answers to a goal, as substitutions over its variables.

    Args:
        rules: a positive (Horn) program.
        goal: the query literal, e.g. ``"anc(adam, X)"``.
        max_depth: resolution-depth bound; exceeding it raises
            :class:`DepthBoundReached` (a diverging branch would
            otherwise loop forever).
        limit: stop after this many answers.
    """
    rules = tuple(rules)
    _require_positive(rules)
    goal = _coerce_goal(goal)
    by_predicate: dict[tuple[str, int], list[Rule]] = {}
    for r in rules:
        by_predicate.setdefault(r.head.signature, []).append(r)
    counter = itertools.count()
    query_variables = goal.variables()
    answers: list[Substitution] = []
    seen: set[Atom] = set()

    def solve(goals: tuple[Atom, ...], theta: Substitution, depth: int) -> Iterator[Substitution]:
        if not goals:
            yield theta
            return
        if depth >= max_depth:
            raise DepthBoundReached(
                f"SLD depth bound {max_depth} reached while solving {goals[0]}"
            )
        current, rest = goals[0], goals[1:]
        current = theta.apply_atom(current)
        for r in by_predicate.get(current.signature, ()):
            fresh = r.rename(f"_{next(counter)}")
            mgu = unify_atoms(current, fresh.head.atom)
            if mgu is None:
                continue
            combined = theta.compose(mgu)
            subgoals = tuple(
                mgu.apply_atom(l.atom) for l in fresh.body_literals()
            ) + rest
            yield from solve(subgoals, combined, depth + 1)

    for theta in solve((goal.atom,), Substitution(), 0):
        answer_atom = theta.apply_atom(goal.atom)
        if not answer_atom.is_ground:
            # Non-ground answers can repeat syntactically; keep them all.
            answers.append(theta.restrict(query_variables))
        elif answer_atom not in seen:
            seen.add(answer_atom)
            answers.append(theta.restrict(query_variables))
        if limit is not None and len(answers) >= limit:
            break
    return answers


@dataclass
class _Table:
    answers: set[Atom]
    complete: bool = False


class TabledEngine:
    """Memoized top-down evaluation (terminating on Datalog).

    The engine computes, per predicate, the full set of derivable ground
    atoms by a semi-naive fixpoint restricted to the predicates
    reachable from the query — a simple magic-sets-flavoured relevance
    cut — then answers queries by matching against the tables.
    """

    def __init__(self, rules: Sequence[Rule]) -> None:
        rules = tuple(rules)
        _require_positive(rules)
        self._rules = rules
        self._by_predicate: dict[tuple[str, int], list[Rule]] = {}
        for r in rules:
            self._by_predicate.setdefault(r.head.signature, []).append(r)
        self._tables: dict[tuple[str, int], _Table] = {}

    def _reachable(self, signature: tuple[str, int]) -> set[tuple[str, int]]:
        found: set[tuple[str, int]] = set()
        frontier = [signature]
        while frontier:
            current = frontier.pop()
            if current in found:
                continue
            found.add(current)
            for r in self._by_predicate.get(current, ()):
                for l in r.body_literals():
                    frontier.append(l.signature)
        return found

    def _materialise(self, signature: tuple[str, int]) -> None:
        relevant = self._reachable(signature)
        if all(
            self._tables.get(sig, _Table(set())).complete for sig in relevant
        ):
            return
        relevant_rules = [
            r for sig in relevant for r in self._by_predicate.get(sig, ())
        ]
        facts: set[Atom] = set()
        for sig in relevant:
            table = self._tables.setdefault(sig, _Table(set()))
            facts |= table.answers
        changed = True
        while changed:
            changed = False
            for r in relevant_rules:
                new_heads = [
                    theta.apply_atom(r.head.atom)
                    for theta in self._satisfy(
                        r.body_literals(), Substitution(), facts
                    )
                ]
                for head in new_heads:
                    if head.is_ground and head not in facts:
                        facts.add(head)
                        changed = True
        for sig in relevant:
            self._tables[sig] = _Table(
                {a for a in facts if a.signature == sig}, complete=True
            )

    def _satisfy(
        self,
        body: tuple[Literal, ...],
        theta: Substitution,
        facts: set[Atom],
    ) -> Iterator[Substitution]:
        if not body:
            yield theta
            return
        first, rest = body[0], body[1:]
        pattern = theta.apply_atom(first.atom)
        for fact in facts:
            if fact.signature != pattern.signature:
                continue
            extended = match_atom(pattern, fact, theta)
            if extended is not None:
                yield from self._satisfy(rest, extended, facts)

    def query(self, goal: Union[Literal, str]) -> list[Substitution]:
        """All answers to a goal, as substitutions over its variables."""
        goal = _coerce_goal(goal)
        self._materialise(goal.signature)
        table = self._tables.get(goal.signature, _Table(set(), True))
        answers = []
        for fact in sorted(table.answers, key=str):
            theta = match_atom(goal.atom, fact)
            if theta is not None:
                answers.append(theta.restrict(goal.variables()))
        return answers

    def holds(self, goal: Union[Literal, str]) -> bool:
        """Is a ground goal derivable?"""
        return bool(self.query(goal))
