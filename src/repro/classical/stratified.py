"""Stratified programs and the perfect model ([ABW], [N], [VG], [P1]).

A seminegative program is **stratified** when its predicate dependency
graph has no cycle through a negative edge.  Stratified programs have a
unique perfect model, computed by the iterated fixpoint: evaluate the
strata bottom-up, applying the closed-world assumption to each stratum
once it is complete.

The dependency graph and strata work at the *predicate* level on the
non-ground program (the classical definition); evaluation then runs on
the ground rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    AbstractSet,
    Hashable,
    Iterable,
    Mapping,
    Optional,
    Sequence,
    TypeVar,
)

from ..grounding.grounder import GroundRule
from ..lang.literals import Atom
from ..lang.rules import Rule

__all__ = [
    "DependencyGraph",
    "dependency_graph",
    "strongly_connected_components",
    "is_stratified",
    "stratification",
    "perfect_model",
    "stratified_least_model",
]

T = TypeVar("T", bound=Hashable)


@dataclass(frozen=True)
class DependencyGraph:
    """Predicate dependency graph.

    Attributes:
        predicates: all predicate symbols.
        positive_edges: ``(body_pred, head_pred)`` pairs from positive
            body literals.
        negative_edges: the same from negative body literals.
    """

    predicates: frozenset[str]
    positive_edges: frozenset[tuple[str, str]]
    negative_edges: frozenset[tuple[str, str]]

    def edges(self) -> frozenset[tuple[str, str]]:
        return self.positive_edges | self.negative_edges


def dependency_graph(rules: Iterable[Rule]) -> DependencyGraph:
    """Build the predicate dependency graph of a (non-ground) program."""
    predicates: set[str] = set()
    positive: set[tuple[str, str]] = set()
    negative: set[tuple[str, str]] = set()
    for r in rules:
        head = r.head.predicate
        predicates.add(head)
        for l in r.body_literals():
            predicates.add(l.predicate)
            edge = (l.predicate, head)
            if l.positive:
                positive.add(edge)
            else:
                negative.add(edge)
    return DependencyGraph(
        frozenset(predicates), frozenset(positive), frozenset(negative)
    )


def strongly_connected_components(
    nodes: Iterable[T], edges: Iterable[tuple[T, T]]
) -> list[frozenset[T]]:
    """Tarjan's algorithm, iterative to avoid recursion limits.  Returns
    SCCs in reverse topological order (callees before callers).  Nodes
    must be mutually sortable for the deterministic visit order."""
    successors: dict[T, list[T]] = {n: [] for n in nodes}
    for src, dst in edges:
        successors[src].append(dst)
    index_counter = 0
    indices: dict[T, int] = {}
    lowlinks: dict[T, int] = {}
    on_stack: set[T] = set()
    stack: list[T] = []
    result: list[frozenset[T]] = []

    for root in sorted(successors):  # type: ignore[type-var]
        if root in indices:
            continue
        work: list[tuple[T, int]] = [(root, 0)]
        while work:
            node, child_index = work[-1]
            if child_index == 0:
                indices[node] = index_counter
                lowlinks[node] = index_counter
                index_counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            children = successors[node]
            while child_index < len(children):
                child = children[child_index]
                child_index += 1
                if child not in indices:
                    work[-1] = (node, child_index)
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    lowlinks[node] = min(lowlinks[node], indices[child])
            if advanced:
                continue
            work.pop()
            if lowlinks[node] == indices[node]:
                component: set[str] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                result.append(frozenset(component))
            if work:
                parent = work[-1][0]
                lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
    return result


# Backwards-compatible private alias (pre-PR3 name).
_strongly_connected_components = strongly_connected_components


def is_stratified(rules: Iterable[Rule]) -> bool:
    """True when no dependency cycle passes through a negative edge."""
    graph = dependency_graph(rules)
    components = _strongly_connected_components(graph.predicates, graph.edges())
    membership = {
        pred: i for i, comp in enumerate(components) for pred in comp
    }
    return all(
        membership[src] != membership[dst] for src, dst in graph.negative_edges
    )


def stratification(rules: Iterable[Rule]) -> Optional[Mapping[str, int]]:
    """A stratum number per predicate, or None when not stratified.

    Strata satisfy: positive dependencies stay within or below the
    head's stratum; negative dependencies come from strictly below.
    """
    rules = tuple(rules)
    graph = dependency_graph(rules)
    components = _strongly_connected_components(graph.predicates, graph.edges())
    membership = {pred: i for i, comp in enumerate(components) for pred in comp}
    for src, dst in graph.negative_edges:
        if membership[src] == membership[dst]:
            return None
    # Longest-path layering over the condensation; negative edges force a
    # strict increase.  Components arrive callees-first, so one pass works.
    strata: dict[int, int] = {i: 0 for i in range(len(components))}
    changed = True
    while changed:
        changed = False
        for src, dst in graph.positive_edges:
            s, d = membership[src], membership[dst]
            if strata[d] < strata[s]:
                strata[d] = strata[s]
                changed = True
        for src, dst in graph.negative_edges:
            s, d = membership[src], membership[dst]
            if strata[d] < strata[s] + 1:
                strata[d] = strata[s] + 1
                changed = True
    return {pred: strata[membership[pred]] for pred in graph.predicates}


def perfect_model(
    non_ground_rules: Sequence[Rule],
    ground_rules: Iterable[GroundRule],
    base: Optional[AbstractSet[Atom]] = None,
) -> frozenset[Atom]:
    """The perfect model of a stratified program: iterated fixpoint over
    the strata, reading negative body literals against the completed
    lower strata (closed-world within each stratum).

    Args:
        non_ground_rules: the program, for stratification.
        ground_rules: its grounding (e.g. from
            :meth:`repro.grounding.Grounder.ground_rules`).
        base: unused except for validation; kept for symmetry.

    Raises:
        ValueError: when the program is not stratified.
    """
    strata = stratification(non_ground_rules)
    if strata is None:
        raise ValueError("program is not stratified")
    ground_rules = tuple(ground_rules)
    max_stratum = max(strata.values(), default=0)
    true_atoms: set[Atom] = set()
    for level in range(max_stratum + 1):
        level_rules = [
            r for r in ground_rules if strata.get(r.head.predicate, 0) == level
        ]
        changed = True
        while changed:
            changed = False
            for r in level_rules:
                if r.head.atom in true_atoms:
                    continue
                ok = True
                for l in r.body:
                    if l.positive:
                        if l.atom not in true_atoms:
                            ok = False
                            break
                    elif l.atom in true_atoms:
                        ok = False
                        break
                if ok:
                    true_atoms.add(r.head.atom)
                    changed = True
    return frozenset(true_atoms)


def stratified_least_model(
    non_ground_rules: Sequence[Rule],
    ground_rules: Iterable[GroundRule],
) -> frozenset[Atom]:
    """Least *ordered* model of a stratified seminegative program, under
    the paper's membership reading of classical negation.

    Unlike :func:`perfect_model` (negation as failure), a negative body
    literal here is true only when it is a member of the interpretation —
    and a seminegative program has no negative heads, so no negative
    literal is ever derivable.  Rules carrying a negative body literal
    therefore never fire, and the least model is the Horn least fixpoint
    of the remaining positive rules, evaluated stratum by stratum with
    each stratum seeded by the ones below.  This is what makes routing
    from `OrderedSemantics` sound: for a single-component seminegative
    view there are no contradictions, hence no overruling or defeating,
    and ``V_{P,C}`` degenerates to the Horn consequence operator.

    Raises:
        ValueError: when the non-ground program is not stratified.
    """
    strata = stratification(non_ground_rules)
    if strata is None:
        raise ValueError("program is not stratified")
    horn = [r for r in ground_rules if all(l.positive for l in r.body)]
    by_level: dict[int, list[GroundRule]] = {}
    for r in horn:
        by_level.setdefault(strata.get(r.head.predicate, 0), []).append(r)
    atoms: set[Atom] = set()
    for level in sorted(by_level):
        _horn_closure(by_level[level], atoms)
    return frozenset(atoms)


def _horn_closure(rules: Sequence[GroundRule], atoms: set[Atom]) -> None:
    """Extend ``atoms`` in place with the Horn closure of ``rules``.

    Semi-naive: each not-yet-satisfied rule waits on its missing body
    atoms; deriving an atom re-examines only the rules watching it.
    """
    waiting: dict[Atom, list[GroundRule]] = {}
    frontier: list[Atom] = []

    def derive(atom: Atom) -> None:
        if atom not in atoms:
            atoms.add(atom)
            frontier.append(atom)

    for r in rules:
        missing = {l.atom for l in r.body if l.atom not in atoms}
        if missing:
            for atom in missing:
                waiting.setdefault(atom, []).append(r)
        else:
            derive(r.head.atom)
    while frontier:
        atom = frontier.pop()
        for r in waiting.get(atom, ()):
            if r.head.atom not in atoms and all(
                l.atom in atoms for l in r.body
            ):
                derive(r.head.atom)
