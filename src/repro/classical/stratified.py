"""Stratified programs and the perfect model ([ABW], [N], [VG], [P1]).

A seminegative program is **stratified** when its predicate dependency
graph has no cycle through a negative edge.  Stratified programs have a
unique perfect model, computed by the iterated fixpoint: evaluate the
strata bottom-up, applying the closed-world assumption to each stratum
once it is complete.

The dependency graph and strata work at the *predicate* level on the
non-ground program (the classical definition); evaluation then runs on
the ground rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Iterable, Mapping, Optional, Sequence

from ..grounding.grounder import GroundRule
from ..lang.literals import Atom
from ..lang.rules import Rule

__all__ = [
    "DependencyGraph",
    "dependency_graph",
    "is_stratified",
    "stratification",
    "perfect_model",
]


@dataclass(frozen=True)
class DependencyGraph:
    """Predicate dependency graph.

    Attributes:
        predicates: all predicate symbols.
        positive_edges: ``(body_pred, head_pred)`` pairs from positive
            body literals.
        negative_edges: the same from negative body literals.
    """

    predicates: frozenset[str]
    positive_edges: frozenset[tuple[str, str]]
    negative_edges: frozenset[tuple[str, str]]

    def edges(self) -> frozenset[tuple[str, str]]:
        return self.positive_edges | self.negative_edges


def dependency_graph(rules: Iterable[Rule]) -> DependencyGraph:
    """Build the predicate dependency graph of a (non-ground) program."""
    predicates: set[str] = set()
    positive: set[tuple[str, str]] = set()
    negative: set[tuple[str, str]] = set()
    for r in rules:
        head = r.head.predicate
        predicates.add(head)
        for l in r.body_literals():
            predicates.add(l.predicate)
            edge = (l.predicate, head)
            if l.positive:
                positive.add(edge)
            else:
                negative.add(edge)
    return DependencyGraph(
        frozenset(predicates), frozenset(positive), frozenset(negative)
    )


def _strongly_connected_components(
    nodes: frozenset[str], edges: frozenset[tuple[str, str]]
) -> list[frozenset[str]]:
    """Tarjan's algorithm, iterative to avoid recursion limits.  Returns
    SCCs in reverse topological order (callees before callers)."""
    successors: dict[str, list[str]] = {n: [] for n in nodes}
    for src, dst in edges:
        successors[src].append(dst)
    index_counter = 0
    indices: dict[str, int] = {}
    lowlinks: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    result: list[frozenset[str]] = []

    for root in sorted(nodes):
        if root in indices:
            continue
        work: list[tuple[str, int]] = [(root, 0)]
        while work:
            node, child_index = work[-1]
            if child_index == 0:
                indices[node] = index_counter
                lowlinks[node] = index_counter
                index_counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            children = successors[node]
            while child_index < len(children):
                child = children[child_index]
                child_index += 1
                if child not in indices:
                    work[-1] = (node, child_index)
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    lowlinks[node] = min(lowlinks[node], indices[child])
            if advanced:
                continue
            work.pop()
            if lowlinks[node] == indices[node]:
                component: set[str] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                result.append(frozenset(component))
            if work:
                parent = work[-1][0]
                lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
    return result


def is_stratified(rules: Iterable[Rule]) -> bool:
    """True when no dependency cycle passes through a negative edge."""
    graph = dependency_graph(rules)
    components = _strongly_connected_components(graph.predicates, graph.edges())
    membership = {
        pred: i for i, comp in enumerate(components) for pred in comp
    }
    return all(
        membership[src] != membership[dst] for src, dst in graph.negative_edges
    )


def stratification(rules: Iterable[Rule]) -> Optional[Mapping[str, int]]:
    """A stratum number per predicate, or None when not stratified.

    Strata satisfy: positive dependencies stay within or below the
    head's stratum; negative dependencies come from strictly below.
    """
    rules = tuple(rules)
    graph = dependency_graph(rules)
    components = _strongly_connected_components(graph.predicates, graph.edges())
    membership = {pred: i for i, comp in enumerate(components) for pred in comp}
    for src, dst in graph.negative_edges:
        if membership[src] == membership[dst]:
            return None
    # Longest-path layering over the condensation; negative edges force a
    # strict increase.  Components arrive callees-first, so one pass works.
    strata: dict[int, int] = {i: 0 for i in range(len(components))}
    changed = True
    while changed:
        changed = False
        for src, dst in graph.positive_edges:
            s, d = membership[src], membership[dst]
            if strata[d] < strata[s]:
                strata[d] = strata[s]
                changed = True
        for src, dst in graph.negative_edges:
            s, d = membership[src], membership[dst]
            if strata[d] < strata[s] + 1:
                strata[d] = strata[s] + 1
                changed = True
    return {pred: strata[membership[pred]] for pred in graph.predicates}


def perfect_model(
    non_ground_rules: Sequence[Rule],
    ground_rules: Iterable[GroundRule],
    base: Optional[AbstractSet[Atom]] = None,
) -> frozenset[Atom]:
    """The perfect model of a stratified program: iterated fixpoint over
    the strata, reading negative body literals against the completed
    lower strata (closed-world within each stratum).

    Args:
        non_ground_rules: the program, for stratification.
        ground_rules: its grounding (e.g. from
            :meth:`repro.grounding.Grounder.ground_rules`).
        base: unused except for validation; kept for symmetry.

    Raises:
        ValueError: when the program is not stratified.
    """
    strata = stratification(non_ground_rules)
    if strata is None:
        raise ValueError("program is not stratified")
    ground_rules = tuple(ground_rules)
    max_stratum = max(strata.values(), default=0)
    true_atoms: set[Atom] = set()
    for level in range(max_stratum + 1):
        level_rules = [
            r for r in ground_rules if strata.get(r.head.predicate, 0) == level
        ]
        changed = True
        while changed:
            changed = False
            for r in level_rules:
                if r.head.atom in true_atoms:
                    continue
                ok = True
                for l in r.body:
                    if l.positive:
                        if l.atom not in true_atoms:
                            ok = False
                            break
                    elif l.atom in true_atoms:
                        ok = False
                        break
                if ok:
                    true_atoms.add(r.head.atom)
                    changed = True
    return frozenset(true_atoms)
