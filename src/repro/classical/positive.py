"""Positive (Horn) programs: the classical ``T_P`` operator.

The minimal total model of a positive program is unique and is the least
fixpoint of the immediate-consequence transformation (Section 2 of the
paper, citing [L, U]).  Evaluation is semi-naive: a rule is re-examined
only when one of its body atoms is newly derived.
"""

from __future__ import annotations

from typing import AbstractSet, Iterable

from ..grounding.grounder import GroundRule
from ..lang.literals import Atom
from .common import require_positive

__all__ = ["immediate_consequence", "minimal_model"]


def immediate_consequence(
    rules: Iterable[GroundRule], atoms: AbstractSet[Atom]
) -> frozenset[Atom]:
    """One application of ``T_P``: heads of rules whose bodies hold."""
    derived: set[Atom] = set()
    for r in rules:
        if all(l.atom in atoms for l in r.body):
            derived.add(r.head.atom)
    return frozenset(derived)


def minimal_model(rules: Iterable[GroundRule]) -> frozenset[Atom]:
    """``T_P↑ω(∅)`` — the minimal total model of a positive program,
    returned as its set of true atoms (everything else is false).

    Raises:
        ValueError: if some rule is not a Horn clause.
    """
    rules = tuple(rules)
    require_positive(rules)
    derived: set[Atom] = set()
    # Index rules by body atom for semi-naive evaluation.
    waiting: dict[Atom, list[GroundRule]] = {}
    frontier: list[Atom] = []
    for r in rules:
        if r.body:
            for l in r.body:
                waiting.setdefault(l.atom, []).append(r)
        elif r.head.atom not in derived:
            derived.add(r.head.atom)
            frontier.append(r.head.atom)
    while frontier:
        atom = frontier.pop()
        for r in waiting.get(atom, ()):
            head = r.head.atom
            if head in derived:
                continue
            if all(l.atom in derived for l in r.body):
                derived.add(head)
                frontier.append(head)
    return frozenset(derived)
