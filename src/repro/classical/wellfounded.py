"""Well-founded semantics for seminegative programs ([VRS], [VG]).

Computed by Van Gelder's alternating fixpoint.  Writing ``F(S)`` for the
minimal model of the Gelfond–Lifschitz reduct w.r.t. ``S``:

* ``K`` (true atoms) is the least fixpoint of ``F∘F`` from below;
* ``U`` (possible atoms) is ``F(K)``; atoms outside ``U`` are false.

``F`` is antitone, so ``F∘F`` is monotone and the iteration
``K0 = ∅; U0 = F(K0); K_{i+1} = F(U_i); U_{i+1} = F(K_{i+1})``
converges with ``K ⊆ U``.  The result is the (unique) well-founded
partial model: true atoms ``K``, false atoms ``base − U``, the rest
undefined.  The paper cites this as the semantics that "does not
guarantee the existence of a total well-founded model" — the
``undefined`` region of the result is exactly that gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Iterable, Optional

from ..core.interpretation import Interpretation
from ..grounding.grounder import GroundRule
from ..lang.literals import Atom, Literal
from .common import base_of, require_seminegative
from .positive import minimal_model
from .stable import gl_reduct

__all__ = ["WellFoundedResult", "well_founded"]


@dataclass(frozen=True)
class WellFoundedResult:
    """The well-founded partial model split into its three regions."""

    true_atoms: frozenset[Atom]
    false_atoms: frozenset[Atom]
    undefined_atoms: frozenset[Atom]
    iterations: int

    def as_interpretation(self, base: AbstractSet[Atom]) -> Interpretation:
        literals = [Literal(a, True) for a in self.true_atoms]
        literals += [Literal(a, False) for a in self.false_atoms]
        return Interpretation(literals, frozenset(base))

    @property
    def is_total(self) -> bool:
        return not self.undefined_atoms


def well_founded(
    rules: Iterable[GroundRule],
    base: Optional[AbstractSet[Atom]] = None,
) -> WellFoundedResult:
    """The well-founded model of a ground seminegative program."""
    rules = tuple(rules)
    require_seminegative(rules)
    full_base = frozenset(base) if base is not None else base_of(rules)

    def stability_operator(assumed_true: frozenset[Atom]) -> frozenset[Atom]:
        return minimal_model(gl_reduct(rules, assumed_true))

    true_atoms: frozenset[Atom] = frozenset()
    possible: frozenset[Atom] = stability_operator(true_atoms)
    iterations = 1
    while True:
        next_true = stability_operator(possible)
        next_possible = stability_operator(next_true)
        iterations += 2
        if next_true == true_atoms and next_possible == possible:
            break
        true_atoms, possible = next_true, next_possible
    false_atoms = full_base - possible
    undefined = full_base - true_atoms - false_atoms
    return WellFoundedResult(
        true_atoms=frozenset(true_atoms),
        false_atoms=frozenset(false_atoms),
        undefined_atoms=frozenset(undefined),
        iterations=iterations,
    )
