"""An interactive shell for ordered logic programs.

Launched by ``olp repl [FILE]``.  The session holds a mutable program
(component rules + order pairs) and a current *focus* component; every
mutation invalidates the cached semantics.

Commands::

    load FILE                 load an .olp file (replaces the program)
    focus COMPONENT           set the component whose meaning is queried
    assert [COMPONENT] RULE   add a rule (defaults to the focus)
    retract [COMPONENT] FACT  remove a told ground fact
    order A < B               add an order pair
    model                     print the least model of the focus
    stable                    print the stable models
    value LITERAL             truth value in the least model
    query PATTERN [MODE]      bindings (cautious/skeptical/credulous)
    why LITERAL               derivation tree or failure analysis
    statuses                  Definition-2 statuses under the least model
    hierarchy                 ASCII Hasse diagram
    lint                      closure-gap findings
    show                      print the current program
    save FILE                 write the program back to disk
    help / quit

The class is UI-free (reads commands, returns output strings) so the
tests can drive it directly.
"""

from __future__ import annotations

from typing import Callable, Optional

from .analysis.hasse import render_hasse
from .analysis.lint import lint_program
from .core.semantics import OrderedSemantics
from .explain.trace import Explainer
from .kb.query import evaluate_query
from .lang.errors import ReproError
from .lang.parser import parse_program, parse_rule
from .lang.printer import render_program
from .lang.program import Component, OrderedProgram
from .lang.rules import Rule

__all__ = ["ReplSession"]


class ReplSession:
    """The REPL's state machine: one command string in, output out."""

    def __init__(self, program: Optional[OrderedProgram] = None) -> None:
        self._rules: dict[str, list[Rule]] = {"main": []}
        self._pairs: set[tuple[str, str]] = set()
        self._focus = "main"
        self._semantics: Optional[OrderedSemantics] = None
        if program is not None:
            self._adopt(program)
        self._commands: dict[str, Callable[[str], str]] = {
            "load": self._cmd_load,
            "focus": self._cmd_focus,
            "assert": self._cmd_assert,
            "retract": self._cmd_retract,
            "order": self._cmd_order,
            "model": self._cmd_model,
            "stable": self._cmd_stable,
            "value": self._cmd_value,
            "query": self._cmd_query,
            "why": self._cmd_why,
            "statuses": self._cmd_statuses,
            "hierarchy": self._cmd_hierarchy,
            "lint": self._cmd_lint,
            "show": self._cmd_show,
            "save": self._cmd_save,
            "help": self._cmd_help,
        }

    # ------------------------------------------------------------------
    # Program state
    # ------------------------------------------------------------------
    def _adopt(self, program: OrderedProgram) -> None:
        self._rules = {
            comp.name: list(comp.rules) for comp in program.components()
        }
        self._pairs = set(program.order.covering_pairs())
        minimal = sorted(program.order.minimal_elements())
        self._focus = minimal[0] if minimal else next(iter(self._rules))
        self._semantics = None

    def program(self) -> OrderedProgram:
        return OrderedProgram(
            [Component(name, rules) for name, rules in self._rules.items()],
            self._pairs,
        )

    @property
    def focus(self) -> str:
        return self._focus

    def semantics(self) -> OrderedSemantics:
        if self._semantics is None:
            self._semantics = OrderedSemantics(self.program(), self._focus)
        return self._semantics

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def execute(self, line: str) -> str:
        """Run one command line; returns the printable result."""
        line = line.strip()
        if not line or line.startswith("%"):
            return ""
        if line in ("quit", "exit"):
            raise EOFError
        word, _, rest = line.partition(" ")
        handler = self._commands.get(word)
        try:
            if handler is not None:
                return handler(rest.strip())
            # Bare rule syntax: "fly(X) :- bird(X)." asserts into focus.
            if line.endswith("."):
                return self._cmd_assert(line)
            return f"unknown command {word!r}; try 'help'"
        except ReproError as error:
            return f"error: {error}"
        except ValueError as error:
            return f"error: {error}"

    # ------------------------------------------------------------------
    # Commands
    # ------------------------------------------------------------------
    def _invalidate(self) -> None:
        self._semantics = None

    def _cmd_load(self, arg: str) -> str:
        with open(arg) as handle:
            self._adopt(parse_program(handle.read()))
        return (
            f"loaded {len(self._rules)} component(s); focus = {self._focus}"
        )

    def _cmd_focus(self, arg: str) -> str:
        if arg not in self._rules:
            self._rules.setdefault(arg, [])
            self._invalidate()
        self._focus = arg
        self._invalidate()
        return f"focus = {arg}"

    def _split_target(self, arg: str) -> tuple[str, str]:
        target = self._focus
        word, _, rest = arg.partition(" ")
        if word in self._rules and rest.strip().endswith("."):
            target, arg = word, rest.strip()
        return target, arg

    def _cmd_assert(self, arg: str) -> str:
        target, arg = self._split_target(arg)
        r = parse_rule(arg)
        self._rules.setdefault(target, []).append(r)
        # Ground facts repair the cached model through the delta engine
        # instead of recomputing the view from scratch.
        if (
            self._semantics is not None
            and r.is_fact
            and r.is_ground
            and target in self._semantics.program
        ):
            self._semantics.apply_ops([("assert", target, r.head)])
        else:
            self._invalidate()
        return f"[{target}] {r}"

    def _cmd_retract(self, arg: str) -> str:
        target, arg = self._split_target(arg)
        if not arg:
            return "usage: retract [COMPONENT] FACT."
        r = parse_rule(arg)
        if not (r.is_fact and r.is_ground):
            return f"error: only ground facts can be retracted, not {r}"
        bucket = self._rules.get(target, [])
        try:
            bucket.remove(r)
        except ValueError:
            return (
                f"error: cannot retract {r} from component {target!r}: "
                "fact was never told"
            )
        if (
            self._semantics is not None
            and target in self._semantics.program
        ):
            self._semantics.apply_ops([("retract", target, r.head)])
        else:
            self._invalidate()
        return f"[{target}] retracted {r}"

    def _cmd_order(self, arg: str) -> str:
        parts = [p.strip() for p in arg.split("<")]
        if len(parts) < 2 or not all(parts):
            return "usage: order A < B [< C ...]"
        for name in parts:
            self._rules.setdefault(name, [])
        for low, high in zip(parts, parts[1:], strict=False):
            self._pairs.add((low, high))
        self.program()  # validates acyclicity
        self._invalidate()
        return " < ".join(parts)

    def _cmd_model(self, arg: str) -> str:
        sem = self.semantics()
        model = sem.least_model
        lines = [f"least model of {sem.component}: {model}"]
        undefined = sorted(map(str, model.undefined_atoms()))
        if undefined:
            lines.append(f"undefined: {', '.join(undefined)}")
        return "\n".join(lines)

    def _cmd_stable(self, arg: str) -> str:
        models = self.semantics().stable_models()
        lines = [f"{len(models)} stable model(s):"]
        lines += [f"  [{i}] {m}" for i, m in enumerate(models)]
        return "\n".join(lines)

    def _cmd_value(self, arg: str) -> str:
        return str(self.semantics().value(arg))

    def _cmd_query(self, arg: str) -> str:
        parts = arg.split()
        mode = "cautious"
        if parts and parts[-1] in ("cautious", "skeptical", "credulous"):
            mode = parts[-1]
            arg = " ".join(parts[:-1])
        answers = evaluate_query(self.semantics(), arg, mode)
        if not answers:
            return "no"
        return "\n".join(str(a.literal) for a in answers)

    def _cmd_why(self, arg: str) -> str:
        return Explainer(self.semantics()).explain(arg)

    def _cmd_statuses(self, arg: str) -> str:
        return "\n".join(str(r) for r in self.semantics().statuses())

    def _cmd_hierarchy(self, arg: str) -> str:
        return render_hasse(self.program())

    def _cmd_lint(self, arg: str) -> str:
        findings = lint_program(self.program())
        if not findings:
            return "no findings"
        return "\n\n".join(str(f) for f in findings)

    def _cmd_show(self, arg: str) -> str:
        return render_program(self.program())

    def _cmd_save(self, arg: str) -> str:
        if not arg:
            return "usage: save FILE"
        with open(arg, "w") as handle:
            handle.write(render_program(self.program()))
        return f"saved to {arg}"

    def _cmd_help(self, arg: str) -> str:
        return (
            "commands: load focus assert retract order model stable value "
            "query why statuses hierarchy lint show save help quit\n"
            "bare rules ending in '.' are asserted into the focus component"
        )


def run(path: Optional[str] = None) -> int:  # pragma: no cover - interactive
    """The interactive loop used by ``olp repl``."""
    session = ReplSession()
    if path:
        print(session.execute(f"load {path}"))
    print("ordered logic repl — 'help' for commands, 'quit' to leave")
    while True:
        try:
            line = input(f"olp:{session.focus}> ")
        except (EOFError, KeyboardInterrupt):
            print()
            return 0
        try:
            output = session.execute(line)
        except EOFError:
            return 0
        if output:
            print(output)
