"""Ordered logic programming — a reproduction of Laenens, Saccà &
Vermeir, *Extending Logic Programming* (ACM SIGMOD 1990).

The package implements the paper's full system: the ordered-logic
language with classical negation in rule heads, its declarative
3-valued semantics (models, assumption-free models, stable models, the
``V_{P,C}`` fixpoint), the classical logic-programming substrates the
paper builds on (minimal, 3-valued, stratified, well-founded, founded
and stable semantics), and the reductions connecting them (``OV``,
``EV``, ``3V``).

Quickstart (Figure 1 of the paper)::

    from repro import parse_program, OrderedSemantics

    p1 = parse_program('''
        component c2 {
            bird(penguin).  bird(pigeon).
            fly(X) :- bird(X).
            -ground_animal(X) :- bird(X).
        }
        component c1 {
            ground_animal(penguin).
            -fly(X) :- ground_animal(X).
        }
        order c1 < c2.
    ''')
    sem = OrderedSemantics(p1, "c1")
    assert sem.holds("fly(pigeon)")
    assert sem.holds("-fly(penguin)")
"""

from .core.interpretation import Interpretation, TruthValue
from .core.semantics import OrderedSemantics
from .core.solver import SearchBudget
from .explain.trace import Explainer
from .kb.knowledge_base import KnowledgeBase
from .grounding.grounder import Grounder, GroundingOptions, GroundProgram, GroundRule
from .lang.builtins import BinaryOp, Comparison
from .lang.errors import (
    GroundingError,
    InconsistencyError,
    OrderError,
    ParseError,
    QueryError,
    ReproError,
    SearchBudgetExceeded,
    SemanticsError,
)
from .lang.literals import Atom, Literal, lit, neg, pos
from .lang.parser import parse_literal, parse_program, parse_rule, parse_rules, parse_term
from .lang.printer import render_program
from .lang.program import Component, OrderedProgram
from .lang.rules import Rule, fact, rule
from .lang.terms import Compound, Constant, Term, Variable, compound, const, var
from .obs import Instrumentation, get_instrumentation, instrumented

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # language
    "Term",
    "Variable",
    "Constant",
    "Compound",
    "var",
    "const",
    "compound",
    "Atom",
    "Literal",
    "pos",
    "neg",
    "lit",
    "Rule",
    "rule",
    "fact",
    "BinaryOp",
    "Comparison",
    "Component",
    "OrderedProgram",
    # parsing / printing
    "parse_program",
    "parse_rules",
    "parse_rule",
    "parse_literal",
    "parse_term",
    "render_program",
    # grounding
    "Grounder",
    "GroundingOptions",
    "GroundProgram",
    "GroundRule",
    # semantics
    "Interpretation",
    "TruthValue",
    "OrderedSemantics",
    "SearchBudget",
    "Explainer",
    "KnowledgeBase",
    # observability
    "Instrumentation",
    "get_instrumentation",
    "instrumented",
    # errors
    "ReproError",
    "ParseError",
    "OrderError",
    "GroundingError",
    "SemanticsError",
    "InconsistencyError",
    "SearchBudgetExceeded",
    "QueryError",
]
