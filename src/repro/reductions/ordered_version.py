"""The ordered version ``OV(C)`` of a classical program (Section 3).

``OV(C) = <{¬B_C, C}, {C < ¬B_C}>``: the program ``C`` placed below a
component holding the *explicit* closed-world assumption — "every
element of the Herbrand base is false unless its truth is proved".
Instead of one fact per base element, the CWA component holds one
non-ground rule ``¬p(X1, ..., Xn)`` per predicate symbol, so the size of
``OV(C)`` is polynomially bounded in the size of ``C`` (the paper's
remark after the definition).

Propositions 3–4 and Corollary 1 relate the models of ``OV(C)`` in ``C``
to the 3-valued / founded / stable models of ``C``; the property tests
verify all of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..core.semantics import OrderedSemantics
from ..core.solver import SearchBudget
from ..core.transform import AUTO_STRATEGY
from ..grounding.grounder import GroundingOptions
from ..lang.literals import Atom, Literal
from ..lang.program import Component, OrderedProgram
from ..lang.rules import Rule
from ..lang.terms import Variable
from ..obs import Level, get_instrumentation

__all__ = ["ReducedProgram", "cwa_rules", "cwa_component", "ordered_version"]


def record_reduction(name: str, source_rules: int, program: OrderedProgram) -> None:
    """Count one reduction call: source size and rules emitted."""
    obs = get_instrumentation()
    if not obs.enabled:
        return
    emitted = sum(len(c.rules) for c in program.components())
    obs.count(f"reduction.{name}.calls")
    obs.count(f"reduction.{name}.source_rules", source_rules)
    obs.count(f"reduction.{name}.rules_emitted", emitted)
    obs.event(
        "reduction.applied",
        Level.DEBUG,
        reduction=name,
        source_rules=source_rules,
        rules_emitted=emitted,
    )

#: Default component names used by the reductions.
PROGRAM_COMPONENT = "c"
CWA_COMPONENT = "cwa"


@dataclass(frozen=True)
class ReducedProgram:
    """An ordered program produced by a reduction, together with the
    component whose meaning defines the semantics of the source."""

    program: OrderedProgram
    component: str

    def semantics(
        self,
        grounding: GroundingOptions = GroundingOptions(),
        budget: SearchBudget = SearchBudget(),
        strategy: str = AUTO_STRATEGY,
    ) -> OrderedSemantics:
        """An :class:`OrderedSemantics` view at the designated component.

        The ``strategy`` is forwarded to the semantics, so the OV/EV/3V
        reductions inherit stratification routing plus semi-naive
        evaluation (and its shared rule index) by default.
        """
        return OrderedSemantics(
            self.program,
            self.component,
            grounding=grounding,
            budget=budget,
            strategy=strategy,
        )


def _signatures(rules: Iterable[Rule]) -> frozenset[tuple[str, int]]:
    return Component("_sig", rules).predicate_signatures()


def cwa_rules(signatures: Iterable[tuple[str, int]]) -> list[Rule]:
    """One ``¬p(X1, ..., Xn).`` rule per predicate signature — the
    reduced (non-ground) form of ``¬B_C``."""
    rules = []
    for predicate, arity in sorted(signatures):
        variables = tuple(Variable(f"X{i + 1}") for i in range(arity))
        rules.append(Rule(Literal(Atom(predicate, variables), False), ()))
    return rules


def cwa_component(
    rules: Iterable[Rule], name: str = CWA_COMPONENT
) -> Component:
    """The CWA component ``¬B_C`` for a program's signatures."""
    return Component(name, cwa_rules(_signatures(rules)))


def ordered_version(
    rules: Sequence[Rule],
    component: str = PROGRAM_COMPONENT,
    cwa_name: str = CWA_COMPONENT,
) -> ReducedProgram:
    """``OV(C)``: the program below its explicit CWA component.

    Args:
        rules: the classical program ``C`` (typically seminegative; the
            construction itself accepts any negative program).
        component: name to give ``C``'s component.
        cwa_name: name to give the CWA component.
    """
    program = OrderedProgram(
        [
            Component(component, rules),
            cwa_component(rules, cwa_name),
        ],
        [(component, cwa_name)],
    )
    record_reduction("ov", len(rules), program)
    return ReducedProgram(program, component)
