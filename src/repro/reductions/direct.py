"""The direct semantics of negative programs — Definition 11,
reconstructed so that Theorem 2 actually holds.

Definition 11 re-states the 3-level semantics of Definition 10 without
any reference to ordered programs.  The version printed in the paper
(kept here as :func:`is_direct_model_as_printed`) reads:

    (a) ``I`` is a model if every rule has ``value(H) >= value(B)`` or
        an *exception*: ``¬H(r) ∈ I`` and some negative rule ``r̂`` has
        ``H(r̂) = ¬H(r)`` and ``value(B(r̂)) = T``;
    (b) assumption sets are non-empty ``X ⊆ I+`` such that every rule
        with head in ``X`` has ``value(B) <= U`` or ``B ∩ X ≠ ∅``.

Theorem 2 (stated without proof) claims this is equivalent to the
``3V`` semantics.  As printed it is **not**: mechanical checking finds
``C = {p0.  -p0 <- -p0.}`` whose empty interpretation is a Definition-10
model (the non-blocked self-referential exception overrules the fact in
``3V``) but not a printed-Definition-11 model; similarly the printed
assumption sets cannot see *negative* self-supporting exceptions
(``{a.  -a <- -a.}`` at ``{-a}``).  The OCR of the exception clause is
garbled at exactly this point, so we reconstruct the definition that is
equivalent to Definition 10 — the property tests verify the equivalence
on random negative programs — and ship it as the default:

**Models.**  For each rule ``r`` with ``value(H(r)) < value(B(r))``, one
of:

* *strong exception* — ``value(H(r)) = F`` and some negative rule
  ``r̂`` with ``H(r̂) = ¬H(r)`` has ``value(B(r̂)) = T``
  (mirrors Definition 3(a): the contradicted general rule must be
  overruled by an *applied* exception);
* *weak exception* — ``value(H(r)) = U`` and some negative rule ``r̂``
  with ``H(r̂) = ¬H(r)`` is non-blocked, ``value(B(r̂)) >= U``
  (mirrors Definition 3(b): a merely non-blocked exception suffices to
  suspend a derivable conclusion).

**Assumption sets** extend to all of ``I``: a positive ``A ∈ X`` is
groundable only by an applicable rule with head ``A`` that is not
overruled (no non-blocked negative rule with head ``¬A``) and draws no
body support from ``X``; a negative ``¬A ∈ X`` is groundable either by
the closed world (every rule with head ``A`` blocked) or by an
applicable negative rule with head ``¬A`` drawing no body support from
``X``.
"""

from __future__ import annotations

from typing import AbstractSet, Iterable, Iterator, Optional

from ..core.interpretation import Interpretation, TruthValue
from ..grounding.grounder import GroundRule
from ..lang.errors import SearchBudgetExceeded
from ..lang.literals import Atom, Literal

__all__ = [
    "has_exception",
    "is_direct_model",
    "is_direct_model_as_printed",
    "direct_greatest_assumption_set",
    "is_direct_assumption_free",
    "direct_models",
    "direct_assumption_free_models",
    "direct_stable_models",
]

#: Brute-force enumeration guard (3^n interpretations).
_ENUM_LIMIT_ATOMS = 12


def _negative_rules_by_head(
    rules: Iterable[GroundRule],
) -> dict[Literal, list[GroundRule]]:
    index: dict[Literal, list[GroundRule]] = {}
    for r in rules:
        if not r.head.positive:
            index.setdefault(r.head, []).append(r)
    return index


def has_exception(
    rules: Iterable[GroundRule],
    r: GroundRule,
    interp: Interpretation,
) -> bool:
    """Is the violated rule ``r`` excused by an exception (strong when
    its head is false, weak when its head is undefined)?"""
    head_value = interp.value(r.head)
    wanted = r.head.complement()
    if wanted.positive:
        return False  # exceptions are negative rules
    if head_value is TruthValue.FALSE:
        threshold = TruthValue.TRUE
    elif head_value is TruthValue.UNDEFINED:
        threshold = TruthValue.UNDEFINED
    else:
        return False
    return any(
        other.head == wanted
        and interp.conjunction_value(other.body) >= threshold
        for other in rules
    )


def is_direct_model(
    rules: Iterable[GroundRule], interp: Interpretation
) -> bool:
    """The reconstructed Definition 11(a) (equivalent to Definition 10)."""
    rules = tuple(rules)
    for r in rules:
        if interp.value(r.head) >= interp.conjunction_value(r.body):
            continue
        if has_exception(rules, r, interp):
            continue
        return False
    return True


def is_direct_model_as_printed(
    rules: Iterable[GroundRule], interp: Interpretation
) -> bool:
    """Definition 11(a) exactly as printed: only the strong exception.

    Kept for documentation: it diverges from Definition 10 on
    self-referential exceptions (see the module docstring and
    EXPERIMENTS.md)."""
    rules = tuple(rules)
    for r in rules:
        if interp.value(r.head) >= interp.conjunction_value(r.body):
            continue
        if interp.value(r.head) is TruthValue.FALSE:
            wanted = r.head.complement()
            if not wanted.positive and any(
                other.head == wanted
                and interp.conjunction_value(other.body) is TruthValue.TRUE
                for other in rules
            ):
                continue
        return False
    return True


def direct_greatest_assumption_set(
    rules: Iterable[GroundRule], interp: Interpretation
) -> frozenset[Literal]:
    """The union of all (reconstructed) Definition-11 assumption sets."""
    rules = tuple(rules)
    by_head: dict[Literal, list[GroundRule]] = {}
    for r in rules:
        by_head.setdefault(r.head, []).append(r)

    def non_blocked(r: GroundRule) -> bool:
        return interp.conjunction_value(r.body) > TruthValue.FALSE

    def applicable(r: GroundRule) -> bool:
        return interp.conjunction_value(r.body) is TruthValue.TRUE

    current: set[Literal] = set(interp.literals)
    changed = True
    while changed:
        changed = False
        for literal in list(current):
            if literal.positive:
                # Overruled heads can always be assumed: a non-blocked
                # negative rule with the complementary head shields
                # every rule deriving the literal.
                complement = literal.complement()
                if any(non_blocked(o) for o in by_head.get(complement, ())):
                    continue
                grounded = any(
                    applicable(r) and not (r.body & current)
                    for r in by_head.get(literal, ())
                )
            else:
                positive = literal.complement()
                cwa_grounds = not any(
                    non_blocked(r) for r in by_head.get(positive, ())
                )
                grounded = cwa_grounds or any(
                    applicable(r) and not (r.body & current)
                    for r in by_head.get(literal, ())
                )
            if grounded:
                current.discard(literal)
                changed = True
    return frozenset(current)


def is_direct_assumption_free(
    rules: Iterable[GroundRule], interp: Interpretation
) -> bool:
    """Reconstructed Definition 11(b)."""
    return not direct_greatest_assumption_set(rules, interp)


def _interpretations(base: frozenset[Atom]) -> Iterator[Interpretation]:
    atoms = sorted(base, key=str)
    if len(atoms) > _ENUM_LIMIT_ATOMS:
        raise SearchBudgetExceeded(
            f"direct-semantics enumeration over {len(atoms)} atoms "
            f"(limit {_ENUM_LIMIT_ATOMS})",
            estimate=3 ** len(atoms),
            budget=3 ** _ENUM_LIMIT_ATOMS,
        )

    def expand(index: int, chosen: list[Literal]) -> Iterator[Interpretation]:
        if index == len(atoms):
            yield Interpretation(chosen, base)
            return
        atom = atoms[index]
        yield from expand(index + 1, chosen)
        chosen.append(Literal(atom, True))
        yield from expand(index + 1, chosen)
        chosen[-1] = Literal(atom, False)
        yield from expand(index + 1, chosen)
        chosen.pop()

    yield from expand(0, [])


def direct_models(
    rules: Iterable[GroundRule], base: Optional[AbstractSet[Atom]] = None
) -> list[Interpretation]:
    """All (reconstructed) Definition-11 models over the base."""
    rules = tuple(rules)
    full_base = frozenset(base) if base is not None else _mentioned(rules)
    return [
        interp
        for interp in _interpretations(full_base)
        if is_direct_model(rules, interp)
    ]


def direct_assumption_free_models(
    rules: Iterable[GroundRule], base: Optional[AbstractSet[Atom]] = None
) -> list[Interpretation]:
    """All (reconstructed) Definition-11 assumption-free models."""
    rules = tuple(rules)
    full_base = frozenset(base) if base is not None else _mentioned(rules)
    return [
        interp
        for interp in _interpretations(full_base)
        if is_direct_model(rules, interp)
        and is_direct_assumption_free(rules, interp)
    ]


def direct_stable_models(
    rules: Iterable[GroundRule], base: Optional[AbstractSet[Atom]] = None
) -> list[Interpretation]:
    """Definition 11(c): maximal assumption-free models."""
    af_models = direct_assumption_free_models(rules, base)
    literal_sets = [m.literals for m in af_models]
    return [
        m
        for m in af_models
        if not any(m.literals < other for other in literal_sets)
    ]


def _mentioned(rules: Iterable[GroundRule]) -> frozenset[Atom]:
    atoms: set[Atom] = set()
    for r in rules:
        atoms |= r.atoms()
    return frozenset(atoms)
