"""The 3-level version ``3V(C)`` of a negative program (Section 4).

``3V(C) = <{¬B_C, C+, C−}, {C− < C+, C+ < ¬B_C, C− < ¬B_C}>`` where

* ``C+`` holds the seminegative rules of ``C`` **and** the reflexive
  rules (one ``p(X..) <- p(X..)`` per predicate);
* ``C−`` holds the negative(-head) rules of ``C`` — the *exceptions* to
  the general rules of ``C+``;
* ``¬B_C`` is the explicit closed-world component on top.

The meaning of the negative program ``C`` is the meaning of ``3V(C)``
in ``C−`` (Definition 10); Example 9's "pick one non-ugly colour"
program shows the exception reading in action.  Theorem 2 states this is
equivalent to the direct Definition 11 implemented in
:mod:`repro.reductions.direct` — the property tests verify the
equivalence on random negative programs.
"""

from __future__ import annotations

from typing import Sequence

from ..lang.program import Component, OrderedProgram
from ..lang.rules import Rule
from .extended_version import reflexive_rules
from .ordered_version import ReducedProgram, cwa_component, record_reduction

__all__ = ["three_level_version"]

POSITIVE_COMPONENT = "cpos"
NEGATIVE_COMPONENT = "cneg"
CWA_COMPONENT_3V = "cwa"


def three_level_version(
    rules: Sequence[Rule],
    positive_name: str = POSITIVE_COMPONENT,
    negative_name: str = NEGATIVE_COMPONENT,
    cwa_name: str = CWA_COMPONENT_3V,
) -> ReducedProgram:
    """``3V(C)`` for a negative program ``C``.

    The designated component is ``C−`` (the most specific level), whose
    models define the semantics of ``C``.
    """
    seminegative = [r for r in rules if r.is_seminegative]
    negative = [r for r in rules if not r.is_seminegative]
    signatures = Component("_sig", rules).predicate_signatures()
    program = OrderedProgram(
        [
            Component(
                positive_name, tuple(seminegative) + tuple(reflexive_rules(signatures))
            ),
            Component(negative_name, negative),
            cwa_component(rules, cwa_name),
        ],
        [
            (negative_name, positive_name),
            (positive_name, cwa_name),
            (negative_name, cwa_name),
        ],
    )
    record_reduction("3v", len(rules), program)
    return ReducedProgram(program, negative_name)
