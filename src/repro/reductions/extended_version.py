"""The extended version ``EV(C)`` (Section 3, after Example 7).

``EV(C)`` is ``OV(C)`` with a *reflexive rule* ``A <- A`` added to the
component ``C`` for every base element ``A`` — written in the reduced
non-ground form ``p(X1, ..., Xn) <- p(X1, ..., Xn)`` per predicate.

The reflexive rules let a positive literal "confirm itself" against the
CWA default, so that *every* 3-valued model of ``C`` becomes a model of
``EV(C)`` in ``C`` (Proposition 5a) — Example 7's ``{p}`` being the
witness that ``OV`` alone is too strict.  Assumption-free and stable
models are unaffected (Proposition 5b–d): a reflexive rule can never
ground anything, it only shields.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..lang.literals import Atom, Literal
from ..lang.program import Component, OrderedProgram
from ..lang.rules import Rule
from ..lang.terms import Variable
from .ordered_version import (
    CWA_COMPONENT,
    PROGRAM_COMPONENT,
    ReducedProgram,
    cwa_component,
    record_reduction,
)

__all__ = ["reflexive_rules", "extended_version"]


def reflexive_rules(signatures: Iterable[tuple[str, int]]) -> list[Rule]:
    """One ``p(X..) <- p(X..)`` rule per predicate signature."""
    rules = []
    for predicate, arity in sorted(signatures):
        variables = tuple(Variable(f"X{i + 1}") for i in range(arity))
        atom = Atom(predicate, variables)
        rules.append(Rule(Literal(atom, True), (Literal(atom, True),)))
    return rules


def extended_version(
    rules: Sequence[Rule],
    component: str = PROGRAM_COMPONENT,
    cwa_name: str = CWA_COMPONENT,
) -> ReducedProgram:
    """``EV(C)``: ``OV(C)`` plus the reflexive rules in ``C``."""
    signatures = Component("_sig", rules).predicate_signatures()
    extended = tuple(rules) + tuple(reflexive_rules(signatures))
    program = OrderedProgram(
        [
            Component(component, extended),
            cwa_component(rules, cwa_name),
        ],
        [(component, cwa_name)],
    )
    record_reduction("ev", len(rules), program)
    return ReducedProgram(program, component)
