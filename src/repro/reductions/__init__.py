"""Reductions between classical programs and ordered programs:
``OV`` (Section 3), ``EV`` (Section 3), ``3V`` (Section 4) and the
direct Definition-11 semantics of negative programs."""

from .direct import (
    direct_assumption_free_models,
    direct_greatest_assumption_set,
    direct_models,
    direct_stable_models,
    has_exception,
    is_direct_assumption_free,
    is_direct_model,
    is_direct_model_as_printed,
)
from .extended_version import extended_version, reflexive_rules
from .ordered_version import ReducedProgram, cwa_component, cwa_rules, ordered_version
from .three_level import three_level_version

__all__ = [
    "ReducedProgram",
    "cwa_rules",
    "cwa_component",
    "ordered_version",
    "reflexive_rules",
    "extended_version",
    "three_level_version",
    "has_exception",
    "is_direct_model",
    "is_direct_model_as_printed",
    "direct_greatest_assumption_set",
    "is_direct_assumption_free",
    "direct_models",
    "direct_assumption_free_models",
    "direct_stable_models",
]
