"""Grounding: from rules with variables to ground rule instances.

``ground(C*)`` (Section 2) is the set of all ground instances of all
rules a component sees.  Each instance remembers the component its rule
came from — the paper's ``C(r)`` function ("if a rule occurs in more than
one component then we assume that it has distinct ground instances so
that C is actually a function from ground instances to components").

**When relevance-based pruning is sound.**  In ordered programs a rule
can *defeat* or *overrule* another while being merely *non-blocked* — it
need not be applicable (Definition 2).  A ground instance whose body
atoms are underivable can therefore still change the meaning of a
program, so by default the grounder emits the full instantiation over
the Herbrand universe; the always-safe reductions applied are
(a) evaluating comparison guards as soon as their variables are bound,
dropping instances with false guards, and (b) deduplicating identical
instances within a component.

With :attr:`GroundingOptions.domain_pruning` enabled, the grounder
additionally consults the abstract interpretation
(:mod:`repro.analysis.abstract`) and drops instances whose body is
provably unsatisfiable — but **only** for *prune-safe* rules: rules
whose head's complement is headed by no rule in the view, so no
instance can ever act as the overruler or defeater of another rule
(statuses consult only complementary heads).  For those rules the
instance is inert unless applicable, and an instance with an
underivable body literal is never applicable in the least model, so
dropping it preserves ``V_{P,C}``'s least fixpoint.  Pruning is **not**
sound for Definition-3 model *enumeration* (a never-applicable rule
still constrains which total interpretations are models), which is why
:class:`repro.core.semantics.OrderedSemantics` keeps an unpruned
grounding for the enumeration-side consumers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..analysis.abstract import RuleRestriction

from ..lang.builtins import Comparison
from ..lang.errors import GroundingError
from ..lang.literals import Atom, Literal
from ..lang.program import Component, OrderedProgram
from ..lang.rules import Rule
from ..lang.terms import Term, Variable
from ..obs import Level, get_instrumentation
from .herbrand import HerbrandUniverse, herbrand_base, universe_of
from .substitution import Substitution

__all__ = [
    "AtomTable",
    "GroundRule",
    "GroundProgram",
    "GroundingOptions",
    "Grounder",
]


class AtomTable:
    """Interns ground atoms to dense integer ids.

    The dense evaluation path (``repro.core.compiled``) speaks in
    integers: every ground atom seen at grounding time receives a small
    id, and a literal is addressed as ``atom_id * 2`` (positive) or
    ``atom_id * 2 + 1`` (negative), so complementation is ``id ^ 1``.

    Ids are **stable**: the table is append-only, so an atom keeps its
    id across fact deltas for the lifetime of the table (maintenance
    reuses the grounding-time table rather than re-interning).  After
    retract-heavy traces the table can be :meth:`compact`-ed into a
    fresh table over the surviving atoms; compaction deliberately
    returns a *new* table plus a remap instead of mutating ids in
    place.
    """

    __slots__ = ("_ids", "_atoms", "_literals")

    def __init__(self, atoms: Iterable[Atom] = ()) -> None:
        self._ids: dict[Atom, int] = {}
        self._atoms: list[Atom] = []
        self._literals: list[Literal] = []
        for atom in atoms:
            self.intern(atom)

    def intern(self, atom: Atom) -> int:
        """The atom's id, allocating the next dense id on first sight."""
        i = self._ids.get(atom)
        if i is None:
            i = len(self._atoms)
            self._ids[atom] = i
            self._atoms.append(atom)
            self._literals.append(Literal(atom, True))
            self._literals.append(Literal(atom, False))
        return i

    def id_of(self, atom: Atom) -> Optional[int]:
        """The atom's id, or None when it was never interned."""
        return self._ids.get(atom)

    def atom(self, atom_id: int) -> Atom:
        return self._atoms[atom_id]

    def literal_id(self, literal: Literal) -> int:
        """Intern the literal's atom and return the literal's dense id."""
        return self.intern(literal.atom) * 2 + (0 if literal.positive else 1)

    def literal(self, literal_id: int) -> Literal:
        """Decode a literal id back to the (cached) literal object."""
        return self._literals[literal_id]

    def __len__(self) -> int:
        return len(self._atoms)

    def __contains__(self, atom: object) -> bool:
        return atom in self._ids

    def atoms(self) -> tuple[Atom, ...]:
        """All interned atoms, in id order."""
        return tuple(self._atoms)

    def compact(self, live: Iterable[Atom]) -> tuple["AtomTable", dict[int, int]]:
        """A fresh table over the live atoms plus an old-id → new-id map.

        Relative id order of surviving atoms is preserved.  Atoms in
        ``live`` that were never interned here are interned into the new
        table (at the end, in iteration order) but do not appear in the
        remap.
        """
        live_set = set(live)
        table = AtomTable()
        remap: dict[int, int] = {}
        for old_id, atom in enumerate(self._atoms):
            if atom in live_set:
                remap[old_id] = table.intern(atom)
                live_set.discard(atom)
        for atom in sorted(live_set, key=str):
            table.intern(atom)
        return table, remap

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return f"AtomTable({len(self._atoms)} atoms)"


class GroundRule:
    """A ground rule instance tagged with its source component.

    Attributes:
        head: ``H(r)`` — a ground literal.
        body: ``B(r)`` — the ground body literals, as a frozenset (the
            order is irrelevant to every definition in the paper; guards
            have been evaluated away).
        component: the paper's ``C(r)``: the name of the component whose
            rule this instance came from.
        origin: the non-ground rule this instance was produced from.
    """

    __slots__ = ("head", "body", "component", "origin", "_hash")

    def __init__(
        self,
        head: Literal,
        body: frozenset[Literal],
        component: str,
        origin: Optional[Rule] = None,
    ) -> None:
        if not head.is_ground:
            raise ValueError(f"ground rule head must be ground: {head}")
        body = frozenset(body)
        for item in body:
            if not item.is_ground:
                raise ValueError(f"ground rule body must be ground: {item}")
        object.__setattr__(self, "head", head)
        object.__setattr__(self, "body", body)
        object.__setattr__(self, "component", component)
        object.__setattr__(self, "origin", origin)
        object.__setattr__(self, "_hash", hash(("gr", head, body, component)))

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("GroundRule is immutable")

    @property
    def is_fact(self) -> bool:
        return not self.body

    @property
    def is_seminegative(self) -> bool:
        return self.head.positive

    def atoms(self) -> frozenset[Atom]:
        """All atoms mentioned by the rule (head and body)."""
        return frozenset({self.head.atom, *(l.atom for l in self.body)})

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, GroundRule)
            and other._hash == self._hash
            and other.head == self.head
            and other.body == self.body
            and other.component == self.component
        )

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other: "GroundRule") -> bool:
        if not isinstance(other, GroundRule):
            return NotImplemented
        return str(self) < str(other)

    def __str__(self) -> str:
        if not self.body:
            return f"[{self.component}] {self.head}."
        body = ", ".join(str(l) for l in sorted(self.body))
        return f"[{self.component}] {self.head} :- {body}."

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return f"GroundRule({self})"


@dataclass(frozen=True)
class GroundProgram:
    """The result of grounding: rules plus the Herbrand base they live in.

    ``base`` is the set of ground *atoms* (the paper's ``B_P``);
    interpretations are consistent subsets of ``base ∪ ¬base``.

    ``atom_table`` interns every atom mentioned by a rule (⊆ base) to a
    dense integer id; the compiled evaluation path addresses atoms and
    literals through it.  It may be None for hand-built programs — the
    dense index then interns on demand.
    """

    rules: tuple[GroundRule, ...]
    base: frozenset[Atom]
    universe: HerbrandUniverse
    atom_table: Optional[AtomTable] = None
    #: Source rules skipped entirely by domain pruning (statically dead
    #: under the abstract interpretation); 0 when pruning was off.
    pruned_rules: int = 0

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self) -> Iterator[GroundRule]:
        return iter(self.rules)

    def atoms_in_rules(self) -> frozenset[Atom]:
        """Atoms actually mentioned by some rule (⊆ base)."""
        found: set[Atom] = set()
        for r in self.rules:
            found |= r.atoms()
        return frozenset(found)

    def restricted_base(self) -> frozenset[Atom]:
        """The base restricted to atoms mentioned by rules — a sound
        optimisation for enumeration: atoms never mentioned can only be
        undefined in any assumption-free model."""
        return self.atoms_in_rules()


@dataclass(frozen=True)
class GroundingOptions:
    """Knobs for the grounder.

    Attributes:
        max_depth: Herbrand-universe depth bound (needed iff the program
            has function symbols).
        instance_cap: abort with :class:`GroundingError` after this many
            instances — an explicit failure beats an apparent hang.
        full_base: when True (default) the ground program's ``base`` is
            the full Herbrand base; when False it is restricted to atoms
            mentioned by ground rules (sufficient for least/AF/stable
            model computation, smaller for enumeration).
        domain_pruning: when True, run the abstract interpretation over
            the rule set first and, for prune-safe rules (see the module
            docstring), restrict variable enumeration to the inferred
            argument domains and skip statically dead rules outright.
            Sound for least-model computation only — keep it off for
            model enumeration.
    """

    max_depth: Optional[int] = None
    instance_cap: int = 5_000_000
    full_base: bool = True
    domain_pruning: bool = False


class Grounder:
    """Grounds components and ordered programs.

    The grounder enumerates, per rule, all assignments of the rule's
    variables to Herbrand-universe terms, evaluating comparison guards as
    soon as their variables are bound (so ``X > Y + 2`` prunes the
    enumeration early instead of filtering at the end).
    """

    def __init__(self, options: GroundingOptions = GroundingOptions()) -> None:
        self.options = options
        # Per-ground-call tallies; plain unconditional int bumps are an
        # order of magnitude cheaper than the work done per binding, and
        # flushing to the registry happens once per grounding call.
        self._subs_tried = 0
        self._guard_pruned = 0
        self._deduped = 0
        self._pruned_rules = 0

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def ground_component_star(
        self, program: OrderedProgram, component: str
    ) -> GroundProgram:
        """Ground ``C*`` — the rules the component sees (Definition 1b).

        The Herbrand universe and base are those of the negative program
        ``C*`` itself, exactly as the paper defines interpretations "for
        P in C" as interpretations of ``C*``.
        """
        obs = get_instrumentation()
        with obs.span("ground", component=component):
            visible = program.visible_rules(component)
            star = Component("_star", tuple(r for _, r in visible))
            universe = universe_of(star, max_depth=self.options.max_depth)
            table = AtomTable()
            restrictions = self._restrictions(star.rules, universe)
            rules = self._ground_tagged(visible, universe, table, restrictions)
            base = self._base_for(star, universe, rules)
        if obs.enabled:
            self._flush_stats(obs, len(visible), rules, base)
        return GroundProgram(rules, base, universe, table, self._pruned_rules)

    def ground_rules(
        self,
        rules: Iterable[Rule],
        component: str = "main",
        universe: Optional[HerbrandUniverse] = None,
    ) -> GroundProgram:
        """Ground a plain rule set (a classical program) as one component."""
        obs = get_instrumentation()
        with obs.span("ground", component=component):
            comp = Component(component, rules)
            if universe is None:
                universe = universe_of(comp, max_depth=self.options.max_depth)
            tagged = tuple((component, r) for r in comp.rules)
            table = AtomTable()
            restrictions = self._restrictions(comp.rules, universe)
            ground = self._ground_tagged(tagged, universe, table, restrictions)
            base = self._base_for(comp, universe, ground)
        if obs.enabled:
            self._flush_stats(obs, len(tagged), ground, base)
        return GroundProgram(ground, base, universe, table, self._pruned_rules)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _base_for(
        self,
        source: Component,
        universe: HerbrandUniverse,
        rules: tuple[GroundRule, ...],
    ) -> frozenset[Atom]:
        if self.options.full_base:
            return herbrand_base(source, universe=universe)
        found: set[Atom] = set()
        for r in rules:
            found |= r.atoms()
        return frozenset(found)

    def _restrictions(
        self, rules: Sequence[Rule], universe: HerbrandUniverse
    ) -> Optional[dict[Rule, "RuleRestriction"]]:
        """Per-rule pruning decisions from the abstract interpretation,
        or None when ``domain_pruning`` is off.  A rule mapping to None
        inside the dict is not prune-safe and grounds in full."""
        if not self.options.domain_pruning:
            return None
        # Imported lazily: repro.analysis.abstract consumes grounding
        # types (HerbrandUniverse), not the other way around.
        from ..analysis.abstract import analyze_rules

        analysis = analyze_rules(rules, universe=universe)
        return {r: analysis.restriction(r) for r in set(rules)}

    def _ground_tagged(
        self,
        tagged_rules: Sequence[tuple[str, Rule]],
        universe: HerbrandUniverse,
        table: Optional[AtomTable] = None,
        restrictions: Optional[dict[Rule, "RuleRestriction"]] = None,
    ) -> tuple[GroundRule, ...]:
        self._subs_tried = 0
        self._guard_pruned = 0
        self._deduped = 0
        self._pruned_rules = 0
        produced: list[GroundRule] = []
        seen: set[GroundRule] = set()
        count = 0
        for component, r in tagged_rules:
            restriction = restrictions.get(r) if restrictions else None
            if restriction is not None and restriction.dead:
                self._pruned_rules += 1
                continue
            domains = restriction.domains if restriction is not None else None
            for instance in self._instances(r, component, universe, domains):
                if instance in seen:
                    self._deduped += 1
                    continue
                seen.add(instance)
                produced.append(instance)
                if table is not None:
                    table.intern(instance.head.atom)
                    for lit in instance.body:
                        table.intern(lit.atom)
                count += 1
                if count > self.options.instance_cap:
                    raise GroundingError(
                        f"grounding exceeded instance cap {self.options.instance_cap}"
                    )
        return tuple(produced)

    def _flush_stats(
        self, obs, source_rules: int, ground: Sequence[GroundRule], base
    ) -> None:
        obs.count("ground.source_rules", source_rules)
        obs.count("ground.substitutions_tried", self._subs_tried)
        obs.count("ground.guard_pruned", self._guard_pruned)
        obs.count("ground.instances_kept", len(ground))
        obs.count("ground.instances_deduped", self._deduped)
        obs.count("grounding.pruned_rules", self._pruned_rules)
        obs.gauge("ground.base_atoms", len(base))
        obs.event(
            "ground.done",
            Level.INFO,
            source_rules=source_rules,
            instances=len(ground),
            base_atoms=len(base),
            substitutions=self._subs_tried,
        )

    @staticmethod
    def _guard_holds(guard: Comparison, bindings: dict[Variable, Term]) -> bool:
        """Evaluate a guard; guards that cannot be evaluated (symbolic
        operand, division by zero) are treated as false, so the instance
        is dropped rather than the grounder crashing on e.g.
        ``penguin > 11``."""
        try:
            return guard.holds(bindings)
        except GroundingError:
            return False

    def _instances(
        self,
        r: Rule,
        component: str,
        universe: HerbrandUniverse,
        domains: Optional[Mapping[Variable, tuple[Term, ...]]] = None,
    ) -> Iterator[GroundRule]:
        variables = sorted(r.variables(), key=str)
        if not variables:
            self._subs_tried += 1
            if all(self._guard_holds(guard, {}) for guard in r.guards()):
                yield self._make_ground(r, Substitution(), component)
            else:
                self._guard_pruned += 1
            return
        if not universe.terms:
            # No ground terms exist: a rule with variables has no ground
            # instances (the paper's HU is built from symbols in P).
            return
        # Evaluate each guard as soon as the last of its variables binds.
        guard_trigger: dict[int, list[Comparison]] = {}
        var_index = {v: i for i, v in enumerate(variables)}
        for guard in r.guards():
            last = max(var_index[v] for v in guard.variables()) if guard.variables() else -1
            guard_trigger.setdefault(last, []).append(guard)
        bindings: dict[Variable, Term] = {}
        yield from self._assign(
            r, component, universe, variables, 0, bindings, guard_trigger, domains or {}
        )

    def _assign(
        self,
        r: Rule,
        component: str,
        universe: HerbrandUniverse,
        variables: list[Variable],
        index: int,
        bindings: dict[Variable, Term],
        guard_trigger: dict[int, list[Comparison]],
        domains: Mapping[Variable, tuple[Term, ...]],
    ) -> Iterator[GroundRule]:
        if index == len(variables):
            for guard in guard_trigger.get(-1, ()):
                if not self._guard_holds(guard, bindings):
                    self._guard_pruned += 1
                    return
            yield self._make_ground(r, Substitution(bindings), component)
            return
        v = variables[index]
        for term in domains.get(v, universe.terms):
            self._subs_tried += 1
            bindings[v] = term
            ok = True
            for guard in guard_trigger.get(index, ()):
                if not self._guard_holds(guard, bindings):
                    ok = False
                    self._guard_pruned += 1
                    break
            if ok:
                yield from self._assign(
                    r, component, universe, variables, index + 1,
                    bindings, guard_trigger, domains,
                )
        del bindings[v]

    @staticmethod
    def _make_ground(r: Rule, theta: Substitution, component: str) -> GroundRule:
        head = theta.apply_literal(r.head)
        body = frozenset(theta.apply_literal(l) for l in r.body_literals())
        return GroundRule(head, body, component, origin=r)
