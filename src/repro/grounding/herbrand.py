"""Herbrand universe and Herbrand base (Section 2 of the paper).

``HU(P)`` is the set of ground terms built from the constants and
function symbols of ``P``; ``HB(P)`` is the set of ground atoms over the
predicates of ``P`` with arguments from ``HU(P)``.

With function symbols the universe is infinite; we bound construction by
*term depth* (``max_depth``), raising :class:`GroundingError` when the
program has function symbols and no bound is supplied.  This is the
standard finite approximation used by every bottom-up grounder.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Union

from ..lang.errors import GroundingError
from ..lang.literals import Atom
from ..lang.program import Component, OrderedProgram
from ..lang.terms import Compound, Constant, Term

__all__ = ["HerbrandUniverse", "herbrand_base", "universe_of"]

#: A hard sanity cap on generated terms, to fail fast instead of looping.
_DEFAULT_TERM_CAP = 2_000_000


@dataclass(frozen=True)
class HerbrandUniverse:
    """A (finite slice of a) Herbrand universe.

    Attributes:
        terms: the ground terms, sorted deterministically.
        max_depth: the depth bound that produced the slice (0 = constants
            only, which is exact when the program has no function
            symbols).
    """

    terms: tuple[Term, ...]
    max_depth: int

    def __len__(self) -> int:
        return len(self.terms)

    def __iter__(self) -> Iterator[Term]:
        return iter(self.terms)

    def __contains__(self, term: object) -> bool:
        return term in set(self.terms)


def universe_of(
    program: Union[OrderedProgram, Component, Iterable],
    max_depth: Optional[int] = None,
    term_cap: int = _DEFAULT_TERM_CAP,
) -> HerbrandUniverse:
    """Compute the Herbrand universe of a program.

    Args:
        program: an ordered program, a component, or an iterable of rules.
        max_depth: depth bound for function-symbol nesting.  Required when
            the program has function symbols; ignored otherwise.
        term_cap: safety cap on the number of generated terms.

    Raises:
        GroundingError: for an unbounded universe or when the cap is hit.
    """
    constants, functions = _symbols_of(program)
    if not constants and not functions:
        # The paper's HU is built from symbols *occurring in P*; a purely
        # propositional program has an empty universe.
        return HerbrandUniverse((), 0)
    if functions and max_depth is None:
        raise GroundingError(
            "program has function symbols "
            f"{sorted(functions)}; pass max_depth to bound the Herbrand universe"
        )
    if not constants and functions:
        raise GroundingError(
            "program has function symbols but no constants: "
            "the Herbrand universe is empty and no ground term exists"
        )
    depth = max_depth if functions else 0
    frontier: list[Term] = sorted(constants, key=str)
    universe: list[Term] = list(frontier)
    seen: set[Term] = set(frontier)
    for _ in range(depth or 0):
        new_terms: list[Term] = []
        for functor, arity in sorted(functions):
            for combo in itertools.product(universe, repeat=arity):
                candidate = Compound(functor, combo)
                if candidate not in seen:
                    seen.add(candidate)
                    new_terms.append(candidate)
                    if len(seen) > term_cap:
                        raise GroundingError(
                            f"Herbrand universe exceeds cap of {term_cap} terms; "
                            "lower max_depth"
                        )
        if not new_terms:
            break
        universe.extend(new_terms)
    return HerbrandUniverse(tuple(sorted(universe, key=str)), depth or 0)


def herbrand_base(
    program: Union[OrderedProgram, Component, Iterable],
    universe: Optional[HerbrandUniverse] = None,
    max_depth: Optional[int] = None,
) -> frozenset[Atom]:
    """The Herbrand base: every ground atom over the program's predicates
    with arguments drawn from the universe.

    Propositional atoms (arity 0) are included regardless of the
    universe.
    """
    if universe is None:
        universe = universe_of(program, max_depth=max_depth)
    signatures = _signatures_of(program)
    atoms: set[Atom] = set()
    for predicate, arity in signatures:
        if arity == 0:
            atoms.add(Atom(predicate))
            continue
        for combo in itertools.product(universe.terms, repeat=arity):
            atoms.add(Atom(predicate, combo))
    return frozenset(atoms)


def _symbols_of(
    program: Union[OrderedProgram, Component, Iterable],
) -> tuple[frozenset[Constant], frozenset[tuple[str, int]]]:
    if isinstance(program, (OrderedProgram, Component)):
        return program.constants(), program.function_symbols()
    comp = Component("_tmp", program)
    return comp.constants(), comp.function_symbols()


def _signatures_of(
    program: Union[OrderedProgram, Component, Iterable],
) -> frozenset[tuple[str, int]]:
    if isinstance(program, (OrderedProgram, Component)):
        return program.predicate_signatures()
    return Component("_tmp", program).predicate_signatures()
