"""Substitutions, matching and unification.

A ground instance of a rule is obtained "by replacing every variable X by
θ(X), where θ is a mapping from the variables to the Herbrand universe"
(Section 2).  :class:`Substitution` implements θ for terms, atoms,
literals, guards and rules; :func:`match` and :func:`unify` provide the
one- and two-sided equation solving used by the optimised grounder and
the query engine.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Optional

from ..lang.builtins import ArithExpr, BinaryOp, Comparison
from ..lang.literals import Atom, Literal
from ..lang.rules import BodyItem, Rule
from ..lang.terms import Compound, Constant, Term, Variable

__all__ = ["Substitution", "match", "match_atom", "unify", "unify_atoms"]


class Substitution:
    """An immutable mapping from variables to terms.

    Application is *simultaneous* (not iterated): applying
    ``{X -> Y, Y -> a}`` to ``X`` yields ``Y``, not ``a``.  Use
    :meth:`compose` to chain substitutions.
    """

    __slots__ = ("_mapping",)

    def __init__(self, mapping: Optional[Mapping[Variable, Term]] = None) -> None:
        items: dict[Variable, Term] = {}
        if mapping:
            for key, value in mapping.items():
                if not isinstance(key, Variable):
                    raise TypeError(f"substitution keys must be variables: {key!r}")
                if not isinstance(value, Term):
                    raise TypeError(f"substitution values must be terms: {value!r}")
                if key != value:
                    items[key] = value
        object.__setattr__(self, "_mapping", items)

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("Substitution is immutable")

    # ------------------------------------------------------------------
    # Mapping interface
    # ------------------------------------------------------------------
    def __getitem__(self, v: Variable) -> Term:
        return self._mapping[v]

    def get(self, v: Variable, default: Optional[Term] = None) -> Optional[Term]:
        return self._mapping.get(v, default)

    def __contains__(self, v: object) -> bool:
        return v in self._mapping

    def __len__(self) -> int:
        return len(self._mapping)

    def __iter__(self) -> Iterator[Variable]:
        return iter(self._mapping)

    def items(self) -> Iterator[tuple[Variable, Term]]:
        return iter(self._mapping.items())

    def as_dict(self) -> dict[Variable, Term]:
        return dict(self._mapping)

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------
    def apply_term(self, term: Term) -> Term:
        if isinstance(term, Variable):
            return self._mapping.get(term, term)
        if isinstance(term, Constant):
            return term
        if isinstance(term, Compound):
            if term.is_ground:
                return term
            return Compound(term.functor, tuple(self.apply_term(a) for a in term.args))
        raise TypeError(f"not a term: {term!r}")

    def apply_expr(self, expr: ArithExpr) -> ArithExpr:
        if isinstance(expr, BinaryOp):
            return BinaryOp(expr.op, self.apply_expr(expr.left), self.apply_expr(expr.right))
        return self.apply_term(expr)

    def apply_atom(self, atom: Atom) -> Atom:
        if atom.is_ground or not self._mapping:
            return atom
        return Atom(atom.predicate, tuple(self.apply_term(a) for a in atom.args))

    def apply_literal(self, literal: Literal) -> Literal:
        if literal.is_ground or not self._mapping:
            return literal
        return Literal(self.apply_atom(literal.atom), literal.positive)

    def apply_body_item(self, item: BodyItem) -> BodyItem:
        if isinstance(item, Literal):
            return self.apply_literal(item)
        if isinstance(item, Comparison):
            return Comparison(item.op, self.apply_expr(item.left), self.apply_expr(item.right))
        raise TypeError(f"not a body item: {item!r}")

    def apply_rule(self, r: Rule) -> Rule:
        if not self._mapping:
            return r
        return Rule(
            self.apply_literal(r.head),
            tuple(self.apply_body_item(item) for item in r.body),
        )

    # ------------------------------------------------------------------
    # Combination
    # ------------------------------------------------------------------
    def bind(self, v: Variable, term: Term) -> "Substitution":
        """A new substitution with one extra binding (must be fresh or
        identical)."""
        existing = self._mapping.get(v)
        if existing is not None and existing != term:
            raise ValueError(f"variable {v} already bound to {existing}, not {term}")
        updated = dict(self._mapping)
        updated[v] = term
        return Substitution(updated)

    def compose(self, other: "Substitution") -> "Substitution":
        """``(self ∘ other)``: apply ``self`` first, then ``other`` to the
        results; bindings of ``other`` for fresh variables are kept."""
        combined: dict[Variable, Term] = {
            v: other.apply_term(t) for v, t in self._mapping.items()
        }
        for v, t in other.items():
            combined.setdefault(v, t)
        return Substitution(combined)

    def restrict(self, variables: frozenset[Variable]) -> "Substitution":
        """The substitution restricted to the given variables."""
        return Substitution({v: t for v, t in self._mapping.items() if v in variables})

    def is_ground_for(self, variables: frozenset[Variable]) -> bool:
        """True when every listed variable is bound to a ground term."""
        return all(
            v in self._mapping and self._mapping[v].is_ground for v in variables
        )

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Substitution) and other._mapping == self._mapping

    def __hash__(self) -> int:
        return hash(frozenset(self._mapping.items()))

    def __str__(self) -> str:
        inner = ", ".join(f"{v} -> {t}" for v, t in sorted(
            self._mapping.items(), key=lambda kv: str(kv[0])
        ))
        return "{" + inner + "}"

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return f"Substitution({self})"


# ----------------------------------------------------------------------
# Matching (one-sided unification: pattern against ground term)
# ----------------------------------------------------------------------

def _match_term(
    pattern: Term, target: Term, bindings: dict[Variable, Term]
) -> bool:
    if isinstance(pattern, Variable):
        bound = bindings.get(pattern)
        if bound is None:
            bindings[pattern] = target
            return True
        return bound == target
    if isinstance(pattern, Constant):
        return pattern == target
    if isinstance(pattern, Compound):
        if not isinstance(target, Compound):
            return False
        if pattern.functor != target.functor or pattern.arity != target.arity:
            return False
        return all(
            _match_term(p, t, bindings) for p, t in zip(pattern.args, target.args, strict=True)
        )
    raise TypeError(f"not a term: {pattern!r}")


def match(
    pattern: Term, target: Term, seed: Optional[Substitution] = None
) -> Optional[Substitution]:
    """Match a pattern term against a (usually ground) target.

    Returns the extending substitution, or None if they do not match.
    Variables in the *target* are treated as constants — use
    :func:`unify` for two-sided solving.
    """
    bindings = seed.as_dict() if seed else {}
    if _match_term(pattern, target, bindings):
        return Substitution(bindings)
    return None


def match_atom(
    pattern: Atom, target: Atom, seed: Optional[Substitution] = None
) -> Optional[Substitution]:
    """Match a pattern atom against a target atom argument-wise."""
    if pattern.signature != target.signature:
        return None
    bindings = seed.as_dict() if seed else {}
    for p, t in zip(pattern.args, target.args, strict=True):
        if not _match_term(p, t, bindings):
            return None
    return Substitution(bindings)


# ----------------------------------------------------------------------
# Unification (two-sided, with occurs check)
# ----------------------------------------------------------------------

def _walk(term: Term, bindings: dict[Variable, Term]) -> Term:
    while isinstance(term, Variable) and term in bindings:
        term = bindings[term]
    return term


def _occurs(v: Variable, term: Term, bindings: dict[Variable, Term]) -> bool:
    term = _walk(term, bindings)
    if term == v:
        return True
    if isinstance(term, Compound):
        return any(_occurs(v, a, bindings) for a in term.args)
    return False


def _unify_terms(a: Term, b: Term, bindings: dict[Variable, Term]) -> bool:
    a = _walk(a, bindings)
    b = _walk(b, bindings)
    if a == b:
        return True
    if isinstance(a, Variable):
        if _occurs(a, b, bindings):
            return False
        bindings[a] = b
        return True
    if isinstance(b, Variable):
        if _occurs(b, a, bindings):
            return False
        bindings[b] = a
        return True
    if isinstance(a, Compound) and isinstance(b, Compound):
        if a.functor != b.functor or a.arity != b.arity:
            return False
        return all(_unify_terms(x, y, bindings) for x, y in zip(a.args, b.args, strict=True))
    return False


def _resolve(term: Term, bindings: dict[Variable, Term]) -> Term:
    term = _walk(term, bindings)
    if isinstance(term, Compound):
        return Compound(term.functor, tuple(_resolve(a, bindings) for a in term.args))
    return term


def unify(a: Term, b: Term) -> Optional[Substitution]:
    """Most general unifier of two terms (with occurs check), or None."""
    bindings: dict[Variable, Term] = {}
    if not _unify_terms(a, b, bindings):
        return None
    return Substitution({v: _resolve(t, bindings) for v, t in bindings.items()})


def unify_atoms(a: Atom, b: Atom) -> Optional[Substitution]:
    """Most general unifier of two atoms, or None."""
    if a.signature != b.signature:
        return None
    bindings: dict[Variable, Term] = {}
    for x, y in zip(a.args, b.args, strict=True):
        if not _unify_terms(x, y, bindings):
            return None
    return Substitution({v: _resolve(t, bindings) for v, t in bindings.items()})
