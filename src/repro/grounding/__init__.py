"""Grounding: substitutions, Herbrand universe/base, rule instantiation."""

from .grounder import AtomTable, Grounder, GroundingOptions, GroundProgram, GroundRule
from .herbrand import HerbrandUniverse, herbrand_base, universe_of
from .substitution import Substitution, match, match_atom, unify, unify_atoms

__all__ = [
    "Substitution",
    "match",
    "match_atom",
    "unify",
    "unify_atoms",
    "HerbrandUniverse",
    "herbrand_base",
    "universe_of",
    "AtomTable",
    "Grounder",
    "GroundingOptions",
    "GroundProgram",
    "GroundRule",
]
