"""Experiment F3 — Figure 3: the loan program's decision surface.

Regenerates the four scenarios from the paper's introduction and then
sweeps a 2-D grid of (inflation, loan_rate) values — the reproduction's
analogue of a parameter-sweep table.  The shape asserted per cell is
the formal Definition-2 semantics documented in EXPERIMENTS.md:
``take_loan`` is TRUE when Expert3 fires or when Expert2 fires
unopposed (no universe constant above 14); it is never FALSE."""

import pytest

from repro.core.interpretation import TruthValue
from repro.core.semantics import OrderedSemantics
from repro.workloads.paper import figure3

from .conftest import record

PAPER_SCENARIOS = [
    ((), TruthValue.UNDEFINED),
    (("inflation(12).",), TruthValue.TRUE),
    (("inflation(12).", "loan_rate(16)."), TruthValue.UNDEFINED),
    (("inflation(19).", "loan_rate(16)."), TruthValue.TRUE),
]


def test_figure3_paper_scenarios(benchmark):
    def run():
        return [
            OrderedSemantics(figure3(facts), "c1").value("take_loan")
            for facts, _ in PAPER_SCENARIOS
        ]

    values = benchmark(run)
    for (facts, expected), value in zip(PAPER_SCENARIOS, values, strict=True):
        assert value is expected, (facts, value)
    record(
        benchmark,
        experiment="F3",
        scenario_values=[str(v) for v in values],
    )


@pytest.mark.parametrize("grid", [3, 5, 7])
def test_figure3_decision_surface(benchmark, grid):
    inflations = [10 + 2 * i for i in range(grid)]
    rates = [10 + 2 * i for i in range(grid)]

    def run():
        surface = {}
        for i in inflations:
            for r in rates:
                sem = OrderedSemantics(
                    figure3((f"inflation({i}).", f"loan_rate({r}).")), "c1"
                )
                surface[(i, r)] = sem.value("take_loan")
        return surface

    surface = benchmark(run)
    for (i, r), value in surface.items():
        expert3 = i > r + 2
        expert2_unopposed = i > 11 and i <= 14 and r <= 14
        expected = (
            TruthValue.TRUE if (expert3 or expert2_unopposed) else TruthValue.UNDEFINED
        )
        assert value is expected, ((i, r), value)
    take = sum(1 for v in surface.values() if v is TruthValue.TRUE)
    record(
        benchmark,
        experiment="F3-surface",
        grid=grid,
        cells=len(surface),
        take_loan_cells=take,
    )
