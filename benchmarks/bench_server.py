"""Serving-layer benchmarks: write coalescing and read isolation.

Two experiments (docs/server.md), both over the membership-registry
hierarchy that the maintenance benchmarks use:

* ``server-write`` — the same stream of concurrent ``tell`` requests
  through the single-writer pipeline with ``max_batch=1`` (strategy
  ``per-op``: every request pays its own publish, one ``apply_ops``
  per op) vs the default coalescing pipeline (strategy ``batched``:
  queued requests collapse into one delta flush and one publish per
  batch).  The CI gate requires batched to be ≥2x faster at the
  largest size (``scripts/check_seminaive_speedup.py --experiment
  server-write``).
* ``server-read`` — p50/p95 of individual cautious reads against a
  published snapshot while the writer is idle vs while a background
  client streams writes.  Snapshot isolation means reads never wait on
  the writer, so the busy p50 must stay within a small factor of the
  idle p50 (``scripts/check_server_read_latency.py``).
* ``server-trace`` — p50/p95 of a representative bindings query with
  request-scoped tracing off vs on (``"trace": true`` on every
  request, so each reply carries a span tree and cost digest).
  Tracing is built from ``perf_counter`` deltas on a contextvar and
  costs a small per-request constant, so the gate requires the traced
  p50 to stay within 1.3x of the untraced p50
  (``scripts/check_server_read_latency.py --experiment server-trace
  --baseline untraced --contender traced --max-ratio 1.3``).
"""

import asyncio

import pytest

from repro.server import ServerConfig, ServerEngine, parse_request
from repro.workloads.clients import build_server_kb

from .conftest import capture_metrics, record

DEPTH = 4
ENTITIES = 8

#: (size label, concurrent tell requests per round).
WRITE_SIZES = [("small", 32), ("large", 256)]

#: Reads timed per round in the read-latency experiment.
N_READS = 200


def _tell(i: int):
    level = i % DEPTH
    return parse_request(
        {
            "id": i,
            "op": "tell",
            "view": f"level{level}",
            "rules": f"enrolled_{level}(e{i % ENTITIES}).",
        }
    )


def _read(i: int):
    # ``known(e0)`` is a root fact: it holds from level0's point of view
    # no matter what the write stream tells, so every read asserts true.
    return parse_request(
        {"id": f"r{i}", "op": "ask", "view": "level0", "pattern": "known(e0)"}
    )


@pytest.mark.parametrize("mode", ["per-op", "batched"])
@pytest.mark.parametrize(
    "size,n_ops", WRITE_SIZES, ids=[s[0] for s in WRITE_SIZES]
)
def test_write_throughput(benchmark, size, n_ops, mode):
    # Queue sized above n_ops: this experiment measures pipeline cost,
    # not admission control, so nothing may be shed.
    config = ServerConfig(
        max_queue=n_ops + 8, max_batch=1 if mode == "per-op" else 64
    )

    async def scenario():
        async with ServerEngine(build_server_kb(DEPTH, ENTITIES), config) as engine:
            # Materialize every view once so each publish maintains hot
            # views through the delta engine (the serving steady state).
            for level in range(DEPTH):
                await engine.handle(_read(-level))
            replies = await asyncio.gather(
                *(engine.handle(_tell(i)) for i in range(n_ops))
            )
            assert all(reply["ok"] for reply in replies)
            return engine.version

    def run():
        return asyncio.run(scenario())

    versions = benchmark(run)
    if mode == "per-op":
        assert versions == n_ops  # one publish per request
    else:
        assert versions < n_ops  # coalesced
    record(
        benchmark,
        experiment="server-write",
        size={"small": 1, "large": 2}[size],
        ops=n_ops,
        strategy=mode,
    )
    capture_metrics(benchmark, run)


@pytest.mark.parametrize("mode", ["idle", "busy"])
def test_read_latency_under_writer(benchmark, mode):
    import time

    async def scenario():
        async with ServerEngine(build_server_kb(DEPTH, ENTITIES)) as engine:
            await engine.handle(_read(0))  # warm the hot view
            writing = mode == "busy"
            writer_done = asyncio.Event()

            async def background_writer():
                i = 0
                while writing:
                    await engine.handle(_tell(i))
                    i += 1
                writer_done.set()

            writer = (
                asyncio.ensure_future(background_writer()) if writing else None
            )
            latencies = []
            for i in range(N_READS):
                await asyncio.sleep(0)  # let the writer interleave
                t0 = time.perf_counter()
                reply = await engine.handle(_read(i))
                latencies.append(time.perf_counter() - t0)
                assert reply["ok"] and reply["result"]["holds"]
            if writer is not None:
                writing = False
                await writer_done.wait()
                await writer
            return latencies

    collected = []

    def run():
        latencies = asyncio.run(scenario())
        # Pool every round's per-request samples: the recorded p50/p95
        # must not hinge on whichever round happened to run last.
        collected.extend(latencies)
        return latencies

    benchmark(run)
    latencies = sorted(collected)
    p50 = latencies[len(latencies) // 2]
    p95 = latencies[int(len(latencies) * 0.95)]
    record(
        benchmark,
        experiment="server-read",
        reads=N_READS,
        strategy=mode,
        p50_s=p50,
        p95_s=p95,
    )


@pytest.mark.parametrize("mode", ["untraced", "traced"])
def test_read_tracing_overhead(benchmark, mode):
    import time

    traced = mode == "traced"

    def _traced_read(i: int):
        # A bindings query (every entity at the root level), not a
        # single cached boolean: tracing costs a per-request constant,
        # and the gate should weigh it against a read that does
        # representative answer-building work.
        body = {"id": f"t{i}", "op": "query", "view": "level0", "pattern": "known(X)"}
        if traced:
            body["trace"] = True
        return parse_request(body)

    async def scenario():
        # Slow log off in both modes: ``slow_ms`` implies implicit
        # tracing, which would contaminate the untraced baseline.
        async with ServerEngine(build_server_kb(DEPTH, ENTITIES)) as engine:
            await engine.handle(_traced_read(-1))  # warm the hot view
            latencies = []
            for i in range(N_READS):
                t0 = time.perf_counter()
                reply = await engine.handle(_traced_read(i))
                latencies.append(time.perf_counter() - t0)
                assert reply["ok"] and reply["result"]["count"] == ENTITIES
                assert ("trace" in reply["result"]) == traced
            return latencies

    collected = []

    def run():
        latencies = asyncio.run(scenario())
        collected.extend(latencies)
        return latencies

    benchmark(run)
    latencies = sorted(collected)
    p50 = latencies[len(latencies) // 2]
    p95 = latencies[int(len(latencies) * 0.95)]
    record(
        benchmark,
        experiment="server-trace",
        reads=N_READS,
        strategy=mode,
        p50_s=p50,
        p95_s=p95,
    )
