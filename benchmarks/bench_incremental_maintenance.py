"""Incremental maintenance vs rebuild-from-scratch on the
``interactive_session`` workload (docs/maintenance.md).

Each round drives a fresh :class:`~repro.kb.knowledge_base.KnowledgeBase`
through the same deterministic tell/ask/retract stream twice over:

* ``strategy="delta"`` — the delta engine maintains every dirty view
  (assertions feed the watched-literal counters, retractions
  delete-rederive through the rule index);
* ``strategy="rebuild"`` — maintenance disabled, so every mutation
  invalidates the cached views and every ask regrounds and recomputes
  the least model from ∅ (the pre-maintenance behaviour).

Both modes must return identical answers — asserted per round via the
session checksum.  The benchmark CI job gates on the result:
``scripts/check_seminaive_speedup.py --experiment maintenance-session``
requires the delta mode to be ≥5x faster at the largest size, and
``scripts/check_bench_regression.py`` compares both against the
committed baseline.
"""

import pytest

from repro.workloads.sessions import build_session_kb, run_session, session_ops

from .conftest import capture_metrics, record

#: (size label, hierarchy depth, entity count, ops in the stream).
SIZES = [
    ("small", 4, 8, 40),
    ("medium", 8, 16, 80),
    ("large", 12, 32, 120),
]

#: Positive-answer checksums per size, delta vs rebuild (filled lazily).
_CHECKSUMS: dict[str, dict[str, int]] = {}


@pytest.mark.parametrize("mode", ["delta", "rebuild"])
@pytest.mark.parametrize(
    "size,depth,n_entities,n_ops", SIZES, ids=[s[0] for s in SIZES]
)
def test_interactive_session(benchmark, size, depth, n_entities, n_ops, mode):
    ops = session_ops(depth, n_entities, n_ops)

    def run():
        kb = build_session_kb(depth, n_entities, maintenance=(mode == "delta"))
        kb.ask("level0", "member(e0)")  # prime the bottom view
        return run_session(kb, ops)

    counts = benchmark(run)
    assert counts["tell"] + counts["retract"] + counts["ask"] == n_ops
    # Delta and rebuild modes must answer identically.
    _CHECKSUMS.setdefault(size, {})[mode] = counts["yes"]
    seen = _CHECKSUMS[size]
    if len(seen) == 2:
        assert seen["delta"] == seen["rebuild"], seen
    record(
        benchmark,
        experiment="maintenance-session",
        size={"small": 1, "medium": 2, "large": 3}[size],
        depth=depth,
        entities=n_entities,
        ops=n_ops,
        strategy=mode,
    )
    snapshot = capture_metrics(benchmark, run)
    counters = snapshot["counters"]
    if mode == "delta":
        assert counters.get("maintain.delta_facts", 0) > 0, counters
