"""Benchmark suite: one module per experiment of DESIGN.md's index.

Run with ``pytest benchmarks/ --benchmark-only``.  Every benchmark also
asserts the paper's qualitative shape, so the suite doubles as an
end-to-end reproduction run.
"""
