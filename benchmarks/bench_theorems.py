"""Experiments T1/T2 — the paper's theorems as executable checks.

Times the mechanical verification of Theorem 1 (least fixpoint = AF
model = intersection of all models) and Theorem 2 (3-level ≡ direct
semantics) over batches of seeded random programs.  The shape asserted
is simply that every check passes — the same checks hypothesis runs in
the test-suite, here at a fixed, reproducible batch size."""

import random

import pytest

from repro.core.semantics import OrderedSemantics
from repro.grounding.grounder import Grounder
from repro.reductions.direct import direct_stable_models
from repro.reductions.three_level import three_level_version
from repro.workloads.random_programs import (
    random_negative_rules,
    random_ordered_program,
)

from .conftest import record


@pytest.mark.parametrize("batch", [10, 20])
def test_theorem1_verification(benchmark, batch):
    rng = random.Random(20260706)
    programs = [
        random_ordered_program(rng, n_atoms=3, n_components=2, n_rules=5)
        for _ in range(batch)
    ]

    def run():
        checked = 0
        for program in programs:
            for name in program.component_names:
                sem = OrderedSemantics(program, name)
                least = sem.least_model
                assert sem.is_model(least)
                assert sem.assumptions.is_assumption_free(least)
                models = sem.models()
                intersection = frozenset.intersection(
                    *(m.literals for m in models)
                )
                assert intersection == least.literals
                checked += 1
        return checked

    checked = benchmark(run)
    record(benchmark, experiment="T1", programs=batch, components_checked=checked)


@pytest.mark.parametrize("batch", [10, 20])
def test_theorem2_verification(benchmark, batch):
    rng = random.Random(42)
    programs = [random_negative_rules(rng, 3, 4) for _ in range(batch)]

    def run():
        checked = 0
        for rules in programs:
            ground = Grounder().ground_rules(rules)
            sem = three_level_version(rules).semantics()
            via_3v = {m.literals for m in sem.stable_models()}
            via_direct = {
                m.literals
                for m in direct_stable_models(ground.rules, ground.base)
            }
            assert via_3v == via_direct
            checked += 1
        return checked

    checked = benchmark(run)
    record(benchmark, experiment="T2", programs_checked=checked)
