"""Substrate benchmark: the ``V_{P,C}`` fixpoint at depth and width,
naive vs. semi-naive.

The release chain forces one overruler release every two stages (the
blocking literal for level i only appears once level i-1 is derived),
so naive iteration pays a full rule rescan per stage — ``O(depth²)``
work — while the semi-naive engine touches each watch list O(1) times.
The override chain measures a wide single stage of pure fact
overruling, and the taxonomy family grows width (many atoms per stage).

Grounding happens once outside the timed region (the evaluator and its
semi-naive index are shared across rounds, as they are in the solver),
so the timings isolate the fixpoint engine itself.  The benchmark CI
job gates on these results: ``scripts/check_seminaive_speedup.py``
requires the semi-naive strategy to be ≥2x faster than naive at the
largest release-chain depth, and ``scripts/check_bench_regression.py``
compares every timing against the committed baseline.
"""

import pytest

from repro.core.semantics import OrderedSemantics
from repro.workloads.hierarchies import override_chain, release_chain, taxonomy

from .conftest import capture_metrics, record

STRATEGIES = ("naive", "seminaive")


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("depth", [4, 16, 64])
def test_release_chain_depth(benchmark, depth, strategy):
    program = release_chain(depth)
    sem = OrderedSemantics(program, "threats", strategy=strategy)
    transform = sem.transform  # grounds once, outside the timed region
    transform.least_fixpoint()  # warm the shared rule index

    def run():
        return transform.least_fixpoint()

    model = benchmark(run)
    literals = {str(l) for l in model}
    assert f"p({depth})" in literals
    assert len(model) == 2 * depth + 1
    record(
        benchmark, experiment="fixpoint-depth", depth=depth, strategy=strategy
    )
    snapshot = capture_metrics(benchmark, run)
    assert snapshot["counters"]["fixpoint.stages"] == 2 * depth + 1
    if strategy == "naive":
        assert snapshot["counters"]["fixpoint.rules_scanned"] > 0
    else:
        touched = snapshot["counters"]["fixpoint.rules_touched"]
        assert 0 < touched <= 6 * depth + 2
        # Naive rescans all rules at every stage; semi-naive must do
        # asymptotically less than that.
        assert touched < (3 * depth + 1) * (2 * depth + 1)


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("depth", [16, 64])
def test_override_chain_depth(benchmark, depth, strategy):
    program = override_chain(depth)
    sem = OrderedSemantics(program, "c0", strategy=strategy)
    transform = sem.transform
    transform.least_fixpoint()

    def run():
        return transform.least_fixpoint()

    model = benchmark(run)
    expected = "p(a)" if depth % 2 == 0 else "-p(a)"
    assert expected in {str(l) for l in model}
    record(
        benchmark, experiment="fixpoint-override", depth=depth, strategy=strategy
    )
    snapshot = capture_metrics(benchmark, run)
    assert snapshot["counters"]["fixpoint.stages"] >= 1


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("n_species", [10, 40, 80])
def test_taxonomy_width(benchmark, n_species, strategy):
    program = taxonomy(n_species, n_species // 4)
    sem = OrderedSemantics(program, "specific", strategy=strategy)
    transform = sem.transform
    transform.least_fixpoint()

    def run():
        return transform.least_fixpoint()

    model = benchmark(run)
    assert model.is_total
    swimmers = sum(1 for l in model if l.positive and l.predicate == "swims")
    assert swimmers == n_species // 4
    record(
        benchmark,
        experiment="fixpoint-width",
        species=n_species,
        literals=len(model),
        strategy=strategy,
    )
    capture_metrics(benchmark, run)
