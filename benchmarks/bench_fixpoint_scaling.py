"""Substrate benchmark: the ``V_{P,C}`` fixpoint at depth and width.

The override chain forces one new fixpoint stage per level (the
blocking literal for level i only appears at stage i), so iteration
count grows linearly with depth — the worst case for naive iteration.
The taxonomy family grows width (many atoms per stage) instead."""

import pytest

from repro.core.semantics import OrderedSemantics
from repro.workloads.hierarchies import override_chain, taxonomy

from .conftest import capture_metrics, record


@pytest.mark.parametrize("depth", [4, 8, 16])
def test_override_chain_depth(benchmark, depth):
    program = override_chain(depth)

    def run():
        return OrderedSemantics(program, "c0").least_model

    model = benchmark(run)
    expected = "p(a)" if depth % 2 == 0 else "-p(a)"
    assert expected in {str(l) for l in model}
    record(benchmark, experiment="fixpoint-depth", depth=depth)
    snapshot = capture_metrics(benchmark, run)
    assert snapshot["counters"]["fixpoint.stages"] >= 1
    assert snapshot["counters"]["fixpoint.rules_scanned"] > 0


@pytest.mark.parametrize("n_species", [10, 40, 80])
def test_taxonomy_width(benchmark, n_species):
    program = taxonomy(n_species, n_species // 4)

    def run():
        return OrderedSemantics(program, "specific").least_model

    model = benchmark(run)
    assert model.is_total
    swimmers = sum(1 for l in model if l.positive and l.predicate == "swims")
    assert swimmers == n_species // 4
    record(
        benchmark,
        experiment="fixpoint-width",
        species=n_species,
        literals=len(model),
    )
    capture_metrics(benchmark, run)
