"""Ablation: what the Theorem-1(b) seeding buys the solver.

The AF/stable search fixes the least model's literals up-front and
branches only over the atoms it leaves undefined.  The ablated baseline
filters the raw 3^n interpretation space instead.  Both must return the
same models; the benchmark quantifies the gap (orders of magnitude as
soon as the least model decides most of the base, e.g. under OV)."""

import pytest

from repro.core.semantics import OrderedSemantics
from repro.reductions.ordered_version import ordered_version
from repro.workloads.classic import win_move
from repro.workloads.paper import example5

from .conftest import record


def brute_force_af(sem):
    return [
        interp
        for interp in sem.enumerator.interpretations()
        if sem.is_model(interp)
        and sem.assumptions.is_assumption_free(interp)
    ]


def test_af_seeded_on_example5(benchmark):
    sem = OrderedSemantics(example5(), "c1")

    def run():
        return sem.assumption_free_models()

    models = benchmark(run)
    assert len(models) == 3
    record(benchmark, experiment="ablation-seeded", base=len(sem.ground.base))


def test_af_brute_force_on_example5(benchmark):
    sem = OrderedSemantics(example5(), "c1")

    def run():
        return brute_force_af(sem)

    models = benchmark(run)
    assert {m.literals for m in models} == {
        m.literals for m in sem.assumption_free_models()
    }
    record(benchmark, experiment="ablation-brute", base=len(sem.ground.base))


@pytest.mark.parametrize("cycle", [2, 3])
def test_af_seeded_on_ov_cycle(benchmark, cycle):
    # Under OV the least model decides all move atoms and the chain
    # win atoms: the seeded search branches over the cycle only.
    sem = ordered_version(win_move(2, cycle=cycle)).semantics()

    def run():
        return sem.assumption_free_models()

    models = benchmark(run)
    assert models
    undecided = len(sem.least_model.undefined_atoms())
    record(
        benchmark,
        experiment="ablation-ov",
        cycle=cycle,
        base=len(sem.ground.base),
        branched_atoms=undecided,
    )
