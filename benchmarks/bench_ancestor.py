"""Experiment E6 — Example 6's ancestor program under OV(C).

Measures grounding + least-model evaluation of the transitive closure
with the explicit CWA component, against chain length.  Shape: the
positive part equals the classical minimal model (quadratic pair
count), and every non-derived atom is explicitly false."""

import pytest

from repro.classical.positive import minimal_model
from repro.grounding.grounder import Grounder
from repro.reductions.ordered_version import ordered_version
from repro.workloads.classic import ancestor_chain

from .conftest import record


@pytest.mark.parametrize("length", [4, 8, 12])
def test_ancestor_ov_least_model(benchmark, length):
    rules = ancestor_chain(length)

    def run():
        return ordered_version(rules).semantics().least_model

    model = benchmark(run)
    anc_true = sum(
        1 for l in model if l.positive and l.predicate == "anc"
    )
    assert anc_true == length * (length + 1) // 2
    assert model.is_total  # CWA decides everything
    classical = minimal_model(Grounder().ground_rules(rules).rules)
    assert model.true_atoms() == classical
    record(
        benchmark,
        experiment="E6",
        chain=length,
        ancestor_pairs=anc_true,
        base_atoms=len(model.base),
    )


@pytest.mark.parametrize("length", [8, 12, 16])
@pytest.mark.parametrize("strategy", ["naive", "seminaive"])
def test_ancestor_eval_strategies(benchmark, strategy, length):
    """Experiment CI-1 — evaluation only, dense vs object path.

    Grounding (and, for the semi-naive engine, watch-list compilation)
    happens *outside* the timed region: the timed work is exactly one
    ``V↑ω(∅)`` fixpoint plus model materialization.  The bench-compare
    CI job reads this experiment's two strategy series and enforces the
    ``≥10×`` dense-vs-object gate (``scripts/check_seminaive_speedup.py``).
    """
    sem = ordered_version(ancestor_chain(length)).semantics(strategy=strategy)
    _ = sem.transform  # prime the ground/evaluator/transform caches
    if strategy == "seminaive":
        _ = sem.evaluator.index.compiled  # compile outside the timed region

    def run():
        model = sem.transform.least_fixpoint()
        return len(model)  # force materialization inside the timing

    size = benchmark(run)
    expected_true = length * (length + 1) // 2
    anc_true = sum(
        1
        for l in sem.transform.least_fixpoint()
        if l.positive and l.predicate == "anc"
    )
    assert anc_true == expected_true
    record(
        benchmark,
        experiment="CI-1",
        strategy=strategy,
        chain=length,
        model_size=size,
        ground_rules=len(sem.ground.rules),
    )


@pytest.mark.parametrize("length", [4, 8, 12])
def test_ancestor_classical_baseline(benchmark, length):
    """Baseline: the classical semi-naive T_P on the same program —
    the ordered machinery's overhead is the price of the explicit CWA
    (a full-base grounding of the ``-anc(X, Y)`` schema)."""
    rules = ancestor_chain(length)

    def run():
        ground = Grounder().ground_rules(rules)
        return minimal_model(ground.rules)

    model = benchmark(run)
    assert sum(1 for a in model if a.predicate == "anc") == length * (length + 1) // 2
    record(benchmark, experiment="E6-baseline", chain=length)
