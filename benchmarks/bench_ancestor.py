"""Experiment E6 — Example 6's ancestor program under OV(C).

Measures grounding + least-model evaluation of the transitive closure
with the explicit CWA component, against chain length.  Shape: the
positive part equals the classical minimal model (quadratic pair
count), and every non-derived atom is explicitly false."""

import pytest

from repro.classical.positive import minimal_model
from repro.grounding.grounder import Grounder
from repro.reductions.ordered_version import ordered_version
from repro.workloads.classic import ancestor_chain

from .conftest import record


@pytest.mark.parametrize("length", [4, 8, 12])
def test_ancestor_ov_least_model(benchmark, length):
    rules = ancestor_chain(length)

    def run():
        return ordered_version(rules).semantics().least_model

    model = benchmark(run)
    anc_true = sum(
        1 for l in model if l.positive and l.predicate == "anc"
    )
    assert anc_true == length * (length + 1) // 2
    assert model.is_total  # CWA decides everything
    classical = minimal_model(Grounder().ground_rules(rules).rules)
    assert model.true_atoms() == classical
    record(
        benchmark,
        experiment="E6",
        chain=length,
        ancestor_pairs=anc_true,
        base_atoms=len(model.base),
    )


@pytest.mark.parametrize("length", [4, 8, 12])
def test_ancestor_classical_baseline(benchmark, length):
    """Baseline: the classical semi-naive T_P on the same program —
    the ordered machinery's overhead is the price of the explicit CWA
    (a full-base grounding of the ``-anc(X, Y)`` schema)."""
    rules = ancestor_chain(length)

    def run():
        ground = Grounder().ground_rules(rules)
        return minimal_model(ground.rules)

    model = benchmark(run)
    assert sum(1 for a in model if a.predicate == "anc") == length * (length + 1) // 2
    record(benchmark, experiment="E6-baseline", chain=length)
