"""Experiment E5 — Example 5's two stable models, plus stable-model
enumeration scaling on the 2^n choice family (via OV).

The two_stable(n) program has 2^n total stable models; enumeration time
should track the model count, which the benchmark records."""

import pytest

from repro.core.semantics import OrderedSemantics
from repro.core.solver import SearchBudget
from repro.reductions.ordered_version import ordered_version
from repro.workloads.classic import two_stable
from repro.workloads.paper import example5

from .conftest import record


def test_example5_stable_models(benchmark):
    program = example5()

    def run():
        return OrderedSemantics(program, "c1").stable_models()

    stable = benchmark(run)
    found = {frozenset(map(str, m.literals)) for m in stable}
    assert found == {
        frozenset({"a", "-b", "c"}),
        frozenset({"-a", "b", "c"}),
    }
    record(benchmark, experiment="E5", stable_models=len(stable))


def test_example5_af_models(benchmark):
    program = example5()

    def run():
        return OrderedSemantics(program, "c1").assumption_free_models()

    af = benchmark(run)
    assert len(af) == 3  # the two stable models plus {c}
    record(benchmark, experiment="E5-af", af_models=len(af))


@pytest.mark.parametrize("n_pairs", [2, 4, 6])
def test_choice_family_stable_enumeration(benchmark, n_pairs):
    reduced = ordered_version(two_stable(n_pairs))

    def run():
        sem = reduced.semantics(budget=SearchBudget(max_leaves=10**9))
        return sem.stable_models()

    stable = benchmark(run)
    assert len(stable) == 2**n_pairs
    assert all(m.is_total for m in stable)
    record(
        benchmark,
        experiment="E5-choice",
        pairs=n_pairs,
        stable_models=len(stable),
    )
