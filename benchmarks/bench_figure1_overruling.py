"""Experiment F1 — Figure 1: overruling at increasing scale.

Regenerates the figure's outcome (the penguin does not fly; every
other bird does) and measures the least-model computation as the bird
population grows.  The expected shape: time grows polynomially with the
number of ground rules, and the meaning stays exact at every size.
"""

import pytest

from repro.core.semantics import OrderedSemantics
from repro.workloads.paper import figure1, scaled_figure1

from .conftest import record


def test_figure1_verbatim(benchmark):
    program = figure1()

    def run():
        sem = OrderedSemantics(program, "c1")
        return sem.least_model

    model = benchmark(run)
    rendered = {str(l) for l in model}
    assert "-fly(penguin)" in rendered
    assert "fly(pigeon)" in rendered
    record(
        benchmark,
        experiment="F1",
        penguin_flies=False,
        pigeon_flies=True,
        model_size=len(model),
    )


@pytest.mark.parametrize("n_birds,n_penguins", [(5, 2), (10, 4), (20, 8), (40, 16)])
def test_figure1_scaled(benchmark, n_birds, n_penguins):
    program = scaled_figure1(n_birds, n_penguins)

    def run():
        sem = OrderedSemantics(program, "c1")
        return sem.least_model

    model = benchmark(run)
    rendered = {str(l) for l in model}
    flying = sum(1 for i in range(n_birds) if f"fly(b{i})" in rendered)
    grounded = sum(1 for i in range(n_birds) if f"-fly(b{i})" in rendered)
    assert flying == n_birds - n_penguins
    assert grounded == n_penguins
    assert model.is_total
    record(
        benchmark,
        experiment="F1-scaled",
        birds=n_birds,
        penguins=n_penguins,
        flying=flying,
    )
